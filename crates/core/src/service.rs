//! The serving façade — paper Fig 1 as a sharded, multi-threaded API.
//!
//! A [`WorkloadManager`] owns the versioned [`ModelRegistry`], registers
//! applications by name, and shards each app's query stream across
//! [`WorkloadManagerConfig::shards_per_app`] single-consumer [`Qworker`]
//! threads. Producers call [`WorkloadManager::submit`] /
//! [`WorkloadManager::submit_batch`]; each query is hash-routed to one
//! shard by its tenant key (see [`routing_key`]), so all of a tenant's
//! queries land on the same FIFO queue and their relative order is
//! preserved end to end. Shard queues are **bounded**
//! ([`WorkloadManagerConfig::queue_depth`]) — a producer outrunning the
//! workers blocks on `submit`, which is the backpressure story: memory
//! stays flat under overload instead of queues growing without limit.
//!
//! Workers drain their shard in chunks and label through
//! [`querc_embed::Embedder::embed_batch`], so the hot path stays batched
//! end to end, and record each query's submit→labeled latency into a
//! per-app [`LatencyHistogram`]. [`WorkloadManager::throughput`] exposes
//! live counters plus p50/p95/p99 snapshots; [`WorkloadManager::drain`]
//! closes every shard, joins all workers, and hands back every labeled
//! query (plus the training mirror) with final per-app stats.
//!
//! ```
//! use querc::apps::{ResourcesApp, TrainCorpus};
//! use querc::service::{WorkloadManager, WorkloadManagerConfig};
//! use querc::LabeledQuery;
//! use querc_workloads::{SnowCloud, SnowCloudConfig};
//! use std::sync::Arc;
//!
//! let wl = SnowCloud::generate(&SnowCloudConfig::pretrain(2, 30, 7));
//! let corpus = TrainCorpus::from_records(wl.records.clone(), 7);
//! let embedder: Arc<dyn querc_embed::Embedder> =
//!     Arc::new(querc_embed::BagOfTokens::new(64, true));
//!
//! let cfg = WorkloadManagerConfig {
//!     shards_per_app: 4,
//!     ..Default::default()
//! };
//! let mut mgr = WorkloadManager::new(cfg);
//! mgr.register(ResourcesApp::new(embedder), &corpus).unwrap();
//! mgr.submit("resources", LabeledQuery::new("select 1")).unwrap();
//! let drained = mgr.drain();
//! assert_eq!(drained.outputs["resources"].len(), 1);
//! let stats = &drained.throughput[0];
//! assert_eq!((stats.submitted, stats.processed), (1, 1));
//! assert_eq!(stats.latency.count, 1);
//! ```

use crate::apps::{AppReport, DynWorkloadApp, TrainCorpus, WorkloadApp};
use crate::embed_plane::{EmbedCacheStats, EmbedPlane, EmbedPlaneConfig};
use crate::enriched::EnrichedQuery;
use crate::error::{QuercError, Result};
use crate::histogram::{LatencyHistogram, LatencySnapshot};
use crate::labeled::LabeledQuery;
use crate::qos::{QosConfig, QosDrain, QosState, RejectReason, TenantPolicy};
use crate::qworker::{Qworker, QworkerMode, TimedQuery};
use crate::registry::ModelRegistry;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use querc_embed::Embedder;
use std::any::Any;
use std::collections::{BTreeMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The shard-routing key of a query: the `account` label when present
/// (the paper's tenant), else the `user` label, else the SQL text
/// itself. Queries sharing a key always land on the same shard, which
/// is what preserves per-tenant ordering under multi-threaded serving.
pub fn routing_key(lq: &LabeledQuery) -> &str {
    lq.get("account")
        .or_else(|| lq.get("user"))
        .unwrap_or(&lq.sql)
}

/// How the manager picks a shard for an incoming query.
///
/// Shard choice is the manager's locality lever: everything that hashes
/// to one key drains through one Qworker in FIFO order, sharing that
/// worker's warm state (embed cache lines, app model pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Hash the tenant key ([`routing_key`]): account, else user, else
    /// SQL text. Preserves per-tenant ordering — the default, and the
    /// paper's serving layout.
    #[default]
    Tenant,
    /// Hash the query's *table lineage* ([`lineage_routing_key`]):
    /// queries touching the same base tables co-locate on one shard
    /// regardless of tenant, so per-table working sets (index pages,
    /// cached embeddings of that table's templates) stay hot on one
    /// worker. Queries whose lineage is empty (`SHOW`, `SET`, garbage)
    /// fall back to the tenant key. QoS admission is **unaffected** —
    /// token buckets and backlog caps stay per-tenant.
    Lineage,
}

/// The lineage-routing key of a query: the canonical
/// [`querc_sql::ast::Lineage::key`] of its parsed table dependency set
/// (read set joined `,`, or `w:<target>` for pure writes), in the
/// dialect named by the query's `dialect` label (`Generic` when
/// unlabeled). Falls back to [`routing_key`] when the statement touches
/// no tables at all, so every query still routes deterministically.
pub fn lineage_routing_key(lq: &LabeledQuery) -> String {
    let dialect = lq
        .get("dialect")
        .map(querc_sql::Dialect::from_name)
        .unwrap_or(querc_sql::Dialect::Generic);
    let key = querc_sql::parse_query(&lq.sql, dialect).lineage().key();
    if key.is_empty() {
        routing_key(lq).to_string()
    } else {
        key
    }
}

/// Deterministic shard assignment: FNV-1a hash of `key`, reduced modulo
/// `shards`. Pure function of its arguments — stable across processes,
/// runs, and manager instances with the same shard count.
pub fn shard_for(key: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// A type-erased application plus the model it was fitted to — the unit
/// replicated Qworkers share behind an `Arc`.
pub struct FittedApp {
    app: Box<dyn DynWorkloadApp>,
    model: Box<dyn Any + Send + Sync>,
}

impl FittedApp {
    /// Fit `app` against `corpus` and package the result for serving.
    pub fn fit<A: WorkloadApp + 'static>(app: A, corpus: &TrainCorpus) -> Result<FittedApp> {
        let model = app.fit_dyn(corpus)?;
        Ok(FittedApp {
            app: Box::new(app),
            model,
        })
    }

    /// Registration name of the underlying app.
    pub fn name(&self) -> &'static str {
        self.app.name()
    }

    /// The app's serving embedder, if it declared one (see
    /// [`WorkloadApp::embedder`]) — what the manager embeds through at
    /// ingress.
    pub fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        self.app.embedder_dyn()
    }

    /// Label a batch through the app.
    pub fn label_batch(&self, batch: &[EnrichedQuery]) -> Result<Vec<crate::apps::AppOutput>> {
        self.app.label_batch_dyn(self.model.as_ref(), batch)
    }

    /// Live counters of the fitted model's vector index, if the app
    /// serves nearest-neighbor lookups through the
    /// `querc_index::VectorIndex` plane (see
    /// [`WorkloadApp::index_stats`]).
    pub fn index_stats(&self) -> Option<querc_index::IndexStats> {
        self.app.index_stats_dyn(self.model.as_ref())
    }

    /// The fitted model's self-description.
    pub fn report(&self) -> Result<AppReport> {
        self.app.report_dyn(self.model.as_ref())
    }

    /// Reassemble a fitted app from restored parts — the
    /// [`WorkloadManager::restore`] path, where the model comes out of a
    /// snapshot instead of a fit.
    pub fn from_parts(
        app: Box<dyn DynWorkloadApp>,
        model: Box<dyn Any + Send + Sync>,
    ) -> FittedApp {
        FittedApp { app, model }
    }

    /// Serialize the fitted model for a snapshot, if the app supports
    /// persistence (see [`WorkloadApp::save_model`]). `None` means the
    /// app is skipped at checkpoint time and refits after a restore.
    pub fn save_model(&self) -> Option<String> {
        self.app.save_model_dyn(self.model.as_ref())
    }
}

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct WorkloadManagerConfig {
    /// Shards (single-consumer Qworker threads) per registered app.
    /// Queries are hash-routed to shards by the configured [`routing`]
    /// policy key; more shards means more serving parallelism while
    /// per-key order still holds, because one key always maps to one
    /// shard.
    ///
    /// [`routing`]: WorkloadManagerConfig::routing
    pub shards_per_app: usize,
    /// Shard-selection policy: per-tenant (default) or per-table-lineage
    /// (see [`RoutingPolicy`]). Lineage routing changes *only* which
    /// shard a query lands on; QoS admission control remains keyed by
    /// tenant either way.
    pub routing: RoutingPolicy,
    /// Maximum queries a worker drains per chunk (embed_batch size).
    pub batch: usize,
    /// Capacity of each shard's bounded input queue. A full queue makes
    /// `submit`/`submit_batch` block until the shard catches up —
    /// backpressure instead of unbounded memory growth.
    pub queue_depth: usize,
    /// Inline (forward to database sink) or Forked (training mirror
    /// only); the manager's output collection uses the database sink, so
    /// Inline is the default.
    pub mode: QworkerMode,
    /// Registry classifier names every Qworker additionally attaches
    /// (as `predicted_<label>`). Validated against the registry at
    /// registration time, then re-resolved **once per chunk** while
    /// serving, so a later [`ModelRegistry::deploy`] hot-swaps the model
    /// at the next chunk boundary — never mid-chunk.
    pub attach_labels: Vec<String>,
    /// Capacity (in vectors) of the shared ingress embed cache — the
    /// template-fingerprint → vector LRU every registered app reads
    /// from. `0` disables ingress embedding entirely: queries reach the
    /// shards bare and each app embeds for itself (the pre-embed-plane
    /// behavior, useful as a benchmark baseline).
    ///
    /// **Sizing:** one entry costs ~`dim × 4` bytes; size to the
    /// workload's *template* cardinality (distinct statement shapes
    /// after literal stripping — see
    /// `querc_workloads::ReplaySchedule::distinct_templates`), times the
    /// number of distinct embedder namespaces your apps use (apps
    /// sharing one embedder `Arc` share one namespace). Templated cloud
    /// traces typically have 10²–10⁴ templates, so the 64 Ki default is
    /// generous; an undersized cache still serves correctly, it just
    /// evicts (watch [`EmbedCacheStats::evictions`]).
    pub embed_cache_capacity: usize,
    /// Lock shards of the embed cache (contention knob; ≥ 1 enforced).
    pub embed_cache_shards: usize,
    /// Multi-tenant QoS knobs (see [`crate::qos`]). Disabled by default;
    /// when enabled, submissions pass per-tenant token-bucket admission
    /// control, shard workers dequeue by deficit round robin across
    /// per-tenant subqueues, and overload sheds with
    /// [`QuercError::Rejected`] instead of blocking the producer.
    pub qos: QosConfig,
    /// Distance-kernel arm policy for the vector search plane. Applied
    /// **process-wide** at [`WorkloadManager::new`] (the `querc_index`
    /// kernel dispatch is a process global); safe even with other
    /// managers alive because the arms are bit-identical — the knob
    /// changes throughput, never results.
    pub kernel: KernelPolicy,
    /// Worker threads for the training/fit compute pool
    /// (`querc_linalg::ComputePool`). `None` keeps the ambient
    /// resolution — a `QUERC_THREADS` env override if set, otherwise the
    /// detected core count; `Some(n)` pins `n` **process-wide** at
    /// [`WorkloadManager::new`], like [`KernelPolicy`]. Every fit path
    /// folds parallel work in a fixed order, so this knob changes
    /// wall-clock, never model bits.
    pub training_threads: Option<usize>,
}

/// Which [`querc_index`] distance-kernel arm a manager's process runs.
///
/// `Auto` is right for serving; `ForceScalar` exists for benchmarking
/// the SIMD speedup and for ruling the AVX2 arm out when debugging
/// (results are bit-identical either way, by the index plane's parity
/// contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// CPU detection, honoring a `QUERC_SIMD` env override: AVX2 when
    /// the CPU has it, the scalar reference otherwise.
    #[default]
    Auto,
    /// Pin the scalar reference loops, ignoring CPU and env.
    ForceScalar,
    /// Request the AVX2 arm regardless of `QUERC_SIMD`; still falls
    /// back to scalar on a CPU without AVX2.
    ForceAvx2,
    /// Request the AVX-512 row-pair arm regardless of `QUERC_SIMD`;
    /// still degrades to AVX2 / scalar on a CPU without it.
    ForceAvx512,
}

impl KernelPolicy {
    /// Apply this policy to the process-wide kernel dispatch and return
    /// the name of the now-active arm (`"avx2"` / `"scalar"`).
    pub fn apply(self) -> &'static str {
        use querc_index::simd;
        let kernel = match self {
            KernelPolicy::Auto => None,
            KernelPolicy::ForceScalar => Some(querc_index::Kernel::Scalar),
            KernelPolicy::ForceAvx2 => Some(querc_index::Kernel::Avx2),
            KernelPolicy::ForceAvx512 => Some(querc_index::Kernel::Avx512),
        };
        simd::set_kernel_override(kernel).name()
    }
}

impl Default for WorkloadManagerConfig {
    fn default() -> Self {
        let plane = EmbedPlaneConfig::default();
        WorkloadManagerConfig {
            shards_per_app: 2,
            routing: RoutingPolicy::default(),
            batch: 32,
            queue_depth: 1024,
            mode: QworkerMode::Inline,
            attach_labels: Vec::new(),
            embed_cache_capacity: plane.capacity,
            embed_cache_shards: plane.shards,
            qos: QosConfig::default(),
            kernel: KernelPolicy::default(),
            training_threads: None,
        }
    }
}

/// Per-app throughput counters (live — readable while serving).
#[derive(Debug, Default)]
pub struct AppCounters {
    /// Queries offered to this app. Without QoS this counts queries
    /// accepted onto a shard queue; with QoS enabled it counts every
    /// offered query — admitted **and** rejected — so that after a
    /// drain `submitted == processed + rejected`.
    pub submitted: AtomicU64,
    /// Queries fully labeled by a shard worker.
    pub processed: AtomicU64,
    /// Queries shed by QoS admission control (always 0 without QoS).
    pub rejected: AtomicU64,
    /// Ingress embed-cache hits attributed to this app's submissions.
    pub cache_hits: AtomicU64,
    /// Ingress embed-cache misses attributed to this app's submissions.
    pub cache_misses: AtomicU64,
}

/// Snapshot of one app's serving stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppThroughput {
    /// Application name.
    pub app: String,
    /// Queries offered to this app so far. Without QoS: accepted onto
    /// the shard queues. With QoS enabled: admitted **and** rejected, so
    /// a fully-drained app satisfies `submitted == processed + rejected`
    /// (see [`AppCounters::submitted`]).
    pub submitted: u64,
    /// Queries fully labeled so far.
    pub processed: u64,
    /// Queries shed by QoS admission control — an explicit per-tenant
    /// outcome ([`QuercError::Rejected`]), never a silent drop. Always 0
    /// when QoS is disabled; per-tenant breakdowns live in
    /// [`ServiceDrain::qos`] / [`WorkloadManager::qos_stats`].
    pub rejected: u64,
    /// Ingress embed-cache hits for this app's submissions (a hit means
    /// the query's vector was served from the shared template cache and
    /// no embedding ran anywhere on its serving path).
    ///
    /// Hits and misses count **ingress lookups** — the embedding work
    /// done or avoided — not accepted submissions: a `submit_batch`
    /// that fails mid-way on a closed shard has already looked up (and
    /// embedded) its whole batch, so `cache_hits + cache_misses` can
    /// exceed `submitted` in that failure case.
    pub cache_hits: u64,
    /// Ingress embed-cache misses (the template's first sighting — it
    /// was embedded once and cached for everyone). See
    /// [`AppThroughput::cache_hits`] for the lookup-vs-submission
    /// accounting.
    pub cache_misses: u64,
    /// Submit→labeled latency quantiles (microseconds). Measured from
    /// the `submit`/`submit_batch` call, so ingress embedding and
    /// backpressure wait on a full shard queue are included — this is
    /// client-perceived latency.
    pub latency: LatencySnapshot,
    /// Vector-index search counters of the app's fitted model —
    /// searches served, partitions probed, candidates scanned, and
    /// whether the index is exact or ANN — when the app serves
    /// nearest-neighbor lookups through the `querc_index` plane
    /// (`None` for apps without one). Counters are cumulative over the
    /// **current model generation**; a re-registration starts a fresh
    /// index.
    pub index: Option<querc_index::IndexStats>,
}

impl AppThroughput {
    /// Cache hits over lookups for this app; `0.0` before any lookup
    /// (including when the cache is disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

struct AppEntry {
    fitted: Arc<FittedApp>,
    /// The app's serving embedder — what ingress enrichment embeds
    /// through. `None` opts the app out of ingress embedding.
    embedder: Option<Arc<dyn Embedder>>,
    /// One bounded sender per shard, indexed by [`shard_for`] of the
    /// entry's routing-policy key.
    shards: Vec<Sender<TimedQuery>>,
    /// Shard-selection policy, frozen from the manager config at
    /// registration time.
    routing: RoutingPolicy,
    output_rx: Receiver<LabeledQuery>,
    trainer_rx: Receiver<LabeledQuery>,
    workers: Vec<JoinHandle<usize>>,
    counters: Arc<AppCounters>,
    latency: Arc<LatencyHistogram>,
}

/// Everything [`WorkloadManager::drain`] returns.
#[derive(Debug)]
pub struct ServiceDrain {
    /// Fully-labeled queries per app, in completion order.
    pub outputs: BTreeMap<String, Vec<LabeledQuery>>,
    /// The training mirror: every labeled query, ready for
    /// [`crate::training::TrainingModule::ingest`].
    pub training_log: Vec<LabeledQuery>,
    /// Final per-app counters.
    pub throughput: Vec<AppThroughput>,
    /// Final plane-wide embed-cache counters (all zeros when the cache
    /// was disabled via `embed_cache_capacity: 0`).
    pub embed_cache: EmbedCacheStats,
    /// Final per-tenant QoS accounting (empty when QoS was disabled):
    /// per-tenant submitted/processed/rejected counts and latency
    /// quantiles — what the tenant-isolation tests gate on.
    pub qos: QosDrain,
}

/// Labeled queries and counters recovered from a replaced app's
/// generation, merged back in at [`WorkloadManager::drain`].
#[derive(Default)]
struct Carryover {
    outputs: Vec<LabeledQuery>,
    training: Vec<LabeledQuery>,
    submitted: u64,
    processed: u64,
    rejected: u64,
    cache_hits: u64,
    cache_misses: u64,
    latency: LatencyHistogram,
}

/// The batched, replicated serving façade over all registered apps.
pub struct WorkloadManager {
    registry: Arc<ModelRegistry>,
    /// The shared ingress embed plane; `None` when disabled by config.
    plane: Option<Arc<EmbedPlane>>,
    /// Per-tenant QoS state shared with every shard worker; `None` when
    /// QoS is disabled by config.
    qos: Option<Arc<QosState>>,
    apps: BTreeMap<String, AppEntry>,
    carryover: BTreeMap<String, Carryover>,
    cfg: WorkloadManagerConfig,
    /// `(namespace, fingerprint)` cache keys already captured by the
    /// last full [`WorkloadManager::checkpoint`] (or appended by a
    /// [`WorkloadManager::checkpoint_delta`]) — what makes deltas
    /// incremental instead of rewriting the warm set every time.
    persisted_keys: Mutex<HashSet<(u64, u64)>>,
}

impl WorkloadManager {
    /// An empty manager (no apps registered) with the given knobs.
    pub fn new(cfg: WorkloadManagerConfig) -> WorkloadManager {
        cfg.kernel.apply();
        if cfg.training_threads.is_some() {
            querc_linalg::pool::set_training_threads(cfg.training_threads);
        }
        let plane = (cfg.embed_cache_capacity > 0).then(|| {
            Arc::new(EmbedPlane::new(&EmbedPlaneConfig {
                capacity: cfg.embed_cache_capacity,
                shards: cfg.embed_cache_shards,
            }))
        });
        let qos = cfg.qos.enabled.then(|| Arc::new(QosState::new(&cfg.qos)));
        WorkloadManager {
            registry: Arc::new(ModelRegistry::new()),
            plane,
            qos,
            apps: BTreeMap::new(),
            carryover: BTreeMap::new(),
            cfg,
            persisted_keys: Mutex::new(HashSet::new()),
        }
    }

    /// The registry this manager deploys generic classifiers through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live plane-wide embed-cache counters (all zeros when the cache is
    /// disabled). Per-app attribution lives in
    /// [`WorkloadManager::throughput`].
    pub fn embed_cache_stats(&self) -> EmbedCacheStats {
        self.plane.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Fit `app` on `corpus`, then spawn its shard workers. Returns the
    /// fitted model's report.
    ///
    /// Registering a name twice replaces the previous app: its shards
    /// are closed, its workers drain and join, and everything they
    /// already labeled (outputs, training mirror, counters, latency)
    /// is carried over into the eventual [`WorkloadManager::drain`] —
    /// queries accepted by `submit` are never silently dropped by a
    /// redeploy.
    pub fn register<A: WorkloadApp + 'static>(
        &mut self,
        app: A,
        corpus: &TrainCorpus,
    ) -> Result<AppReport> {
        self.register_fitted(Arc::new(FittedApp::fit(app, corpus)?))
    }

    /// [`WorkloadManager::register`] for an app that is already fitted —
    /// the redeploy path when the model hasn't changed, and the way to
    /// serve one trained model from several managers without refitting.
    pub fn register_fitted(&mut self, fitted: Arc<FittedApp>) -> Result<AppReport> {
        let name = fitted.name().to_string();
        let report = fitted.report()?;

        // Fail registration fast if an attach label has no deployment;
        // while serving, workers re-resolve per chunk so later deploys
        // hot-swap without re-registering.
        for label in &self.cfg.attach_labels {
            self.registry.resolve(label)?;
        }

        // Retire the previous generation (if any) BEFORE spawning the new
        // one, preserving its in-flight work.
        if let Some(old) = self.apps.remove(&name) {
            let retired = Self::shut_down(old);
            let slot = self.carryover.entry(name.clone()).or_default();
            slot.outputs.extend(retired.outputs);
            slot.training.extend(retired.training);
            slot.submitted += retired.submitted;
            slot.processed += retired.processed;
            slot.rejected += retired.rejected;
            slot.cache_hits += retired.cache_hits;
            slot.cache_misses += retired.cache_misses;
            slot.latency.absorb(&retired.latency);
        }

        let (out_tx, out_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let counters = Arc::new(AppCounters::default());
        let latency = Arc::new(LatencyHistogram::new());
        let embedder = fitted.embedder();
        let mut shards = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..self.cfg.shards_per_app.max(1) {
            // One bounded queue and exactly one consumer thread per
            // shard: FIFO consumption is what makes hash routing an
            // ordering guarantee rather than a load-balancing heuristic.
            let (in_tx, in_rx) = bounded(self.cfg.queue_depth.max(1));
            let mut worker = Qworker::new(name.clone(), Vec::new(), self.cfg.mode)
                .with_registry(Arc::clone(&self.registry), self.cfg.attach_labels.clone())
                .with_app(Arc::clone(&fitted))
                .with_batch(self.cfg.batch)
                .with_counter(Arc::clone(&counters))
                .with_histogram(Arc::clone(&latency));
            if let Some(qos) = &self.qos {
                worker = worker.with_qos(Arc::clone(qos));
            }
            let db = out_tx.clone();
            let tr = tr_tx.clone();
            shards.push(in_tx);
            workers.push(std::thread::spawn(move || worker.run_timed(in_rx, db, tr)));
        }

        self.apps.insert(
            name,
            AppEntry {
                fitted,
                embedder,
                shards,
                routing: self.cfg.routing,
                output_rx: out_rx,
                trainer_rx: tr_rx,
                workers,
                counters,
                latency,
            },
        );
        Ok(report)
    }

    /// Close an entry's shards, join its workers, and collect everything
    /// they produced.
    fn shut_down(entry: AppEntry) -> Carryover {
        drop(entry.shards);
        for w in entry.workers {
            let _ = w.join();
        }
        let latency = LatencyHistogram::new();
        latency.absorb(&entry.latency);
        Carryover {
            outputs: entry.output_rx.iter().collect(),
            training: entry.trainer_rx.iter().collect(),
            submitted: entry.counters.submitted.load(Ordering::Relaxed),
            processed: entry.counters.processed.load(Ordering::Relaxed),
            rejected: entry.counters.rejected.load(Ordering::Relaxed),
            cache_hits: entry.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: entry.counters.cache_misses.load(Ordering::Relaxed),
            latency,
        }
    }

    fn entry(&self, app: &str) -> Result<&AppEntry> {
        self.apps.get(app).ok_or_else(|| QuercError::UnknownApp {
            app: app.to_string(),
        })
    }

    /// Names of all registered apps, sorted.
    pub fn app_names(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }

    /// Enqueue one query for `app` on its tenant's shard. The query is
    /// enriched at ingress — fingerprinted and, on a template-cache hit,
    /// handed its embedding vector for free — before being routed.
    ///
    /// Without QoS, blocks while that shard's bounded queue is full
    /// (backpressure). With QoS enabled
    /// ([`WorkloadManagerConfig::qos`]), the query first passes the
    /// tenant's token bucket and backlog cap, and a full shard queue
    /// **sheds instead of blocking** — all three produce
    /// [`QuercError::Rejected`] naming the tenant and reason, counted in
    /// [`AppThroughput::rejected`] and the tenant's
    /// [`crate::qos::TenantSnapshot`].
    pub fn submit(&self, app: &str, query: LabeledQuery) -> Result<()> {
        let entry = self.entry(app)?;
        let enqueued_at = Instant::now();
        let mut enriched = [EnrichedQuery::new(query)];
        self.enrich(entry, &mut enriched);
        let [q] = enriched;
        match &self.qos {
            Some(qos) => {
                Self::send_admitted(entry, qos, TimedQuery::at(q, enqueued_at), "manager.submit")
            }
            None => Self::send_routed(entry, TimedQuery::at(q, enqueued_at), "manager.submit"),
        }
    }

    /// Enqueue a batch for `app`, each query hash-routed to its tenant's
    /// shard; returns how many were accepted. The whole batch is
    /// enriched through the embed plane first (cache misses are
    /// deduplicated by template and embedded in **one**
    /// `embed_batch` call), then routed. The `submitted` counter is
    /// bumped per successful send, so a mid-batch [`QuercError::ChannelClosed`]
    /// leaves the counter equal to what actually reached the queues —
    /// `processed` can never exceed `submitted`.
    ///
    /// On `Err`, some prefix of the batch was already accepted and will
    /// still be served; the rest of the batch is dropped (the iterator
    /// is consumed up front for batched ingress embedding). The error
    /// itself doesn't carry the prefix length — reconcile against
    /// [`WorkloadManager::throughput`] (`submitted` counts every
    /// accepted query) before retrying, or a retry will double-submit
    /// the accepted prefix.
    /// With QoS enabled, a shed query does **not** abort the batch: it
    /// is counted against its tenant (and in
    /// [`AppThroughput::rejected`]) and the rest of the batch proceeds,
    /// so the returned count is the *admitted* subset and after a drain
    /// `submitted == processed + rejected` still holds. Only
    /// [`QuercError::ChannelClosed`] (a dead shard) aborts.
    pub fn submit_batch(
        &self,
        app: &str,
        queries: impl IntoIterator<Item = LabeledQuery>,
    ) -> Result<usize> {
        let entry = self.entry(app)?;
        let enqueued_at = Instant::now();
        let mut batch: Vec<EnrichedQuery> = queries.into_iter().map(EnrichedQuery::new).collect();
        self.enrich(entry, &mut batch);
        let mut n = 0usize;
        for q in batch {
            match &self.qos {
                Some(qos) => {
                    match Self::send_admitted(
                        entry,
                        qos,
                        TimedQuery::at(q, enqueued_at),
                        "manager.submit_batch",
                    ) {
                        Ok(()) => n += 1,
                        Err(QuercError::Rejected { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    Self::send_routed(
                        entry,
                        TimedQuery::at(q, enqueued_at),
                        "manager.submit_batch",
                    )?;
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Ingress enrichment: embed through the shared plane under the
    /// app's embedder namespace, attributing hits/misses to the app. A
    /// disabled plane or an app without a declared embedder skips this —
    /// the shards then embed for themselves, exactly as before the
    /// embed plane existed.
    fn enrich(&self, entry: &AppEntry, batch: &mut [EnrichedQuery]) {
        if let (Some(plane), Some(embedder)) = (&self.plane, &entry.embedder) {
            let (hits, misses) = plane.enrich_batch(embedder.as_ref(), batch);
            entry.counters.cache_hits.fetch_add(hits, Ordering::Relaxed);
            entry
                .counters
                .cache_misses
                .fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// The shard index for a query under the entry's routing policy.
    fn shard_index(entry: &AppEntry, lq: &LabeledQuery) -> usize {
        match entry.routing {
            RoutingPolicy::Tenant => shard_for(routing_key(lq), entry.shards.len()),
            RoutingPolicy::Lineage => shard_for(&lineage_routing_key(lq), entry.shards.len()),
        }
    }

    /// Route one enriched query to its shard, send (blocking on a full
    /// queue), and count the accepted submission.
    fn send_routed(entry: &AppEntry, timed: TimedQuery, context: &'static str) -> Result<()> {
        let shard = Self::shard_index(entry, timed.query.labeled());
        entry.shards[shard]
            .send(timed)
            .map_err(|_| QuercError::ChannelClosed { context })?;
        entry.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The QoS ingress path: per-tenant admission (token bucket, then
    /// backlog cap), then a **non-blocking** send to the tenant's shard
    /// — a full queue sheds with [`RejectReason::ShardFull`] instead of
    /// blocking the producer. Every offer is counted in `submitted`;
    /// every shed in `rejected` (app-level and per-tenant), so the two
    /// reconcile with `processed` after a drain. A dead shard
    /// ([`QuercError::ChannelClosed`]) rolls the offer back instead:
    /// the query had no outcome.
    fn send_admitted(
        entry: &AppEntry,
        qos: &QosState,
        timed: TimedQuery,
        context: &'static str,
    ) -> Result<()> {
        let tenant = routing_key(timed.query.labeled()).to_string();
        entry.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let state = match qos.admit_at(&tenant, Instant::now()) {
            Ok(state) => state,
            Err(reason) => {
                entry.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(QuercError::Rejected { tenant, reason });
            }
        };
        let shard = Self::shard_index(entry, timed.query.labeled());
        // Reserve the pending slot BEFORE the send: once the query is in
        // the queue a shard worker may complete it immediately, and the
        // completion must observe the reservation (see `committed`).
        QosState::committed(&state);
        match entry.shards[shard].try_send(timed) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                QosState::shed_shard_full(&state);
                entry.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(QuercError::Rejected {
                    tenant,
                    reason: RejectReason::ShardFull,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                QosState::unsubmit(&state);
                entry.counters.submitted.fetch_sub(1, Ordering::Relaxed);
                Err(QuercError::ChannelClosed { context })
            }
        }
    }

    /// Live per-tenant QoS accounting (empty when QoS is disabled).
    pub fn qos_stats(&self) -> QosDrain {
        self.qos
            .as_ref()
            .map(|q| q.drain_snapshot())
            .unwrap_or_default()
    }

    /// Install (or replace) a tenant's QoS policy — DRR weight and rate
    /// limit — live, while serving. No-op when QoS is disabled.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) {
        if let Some(qos) = &self.qos {
            qos.set_policy(tenant, policy);
        }
    }

    /// Live per-app stats — counters plus latency quantiles, including
    /// retired generations after a re-registration — sorted by app name.
    pub fn throughput(&self) -> Vec<AppThroughput> {
        self.apps
            .iter()
            .map(|(name, e)| {
                let prev = self.carryover.get(name);
                let (prev_sub, prev_proc) =
                    prev.map(|c| (c.submitted, c.processed)).unwrap_or((0, 0));
                let (prev_hits, prev_misses) = prev
                    .map(|c| (c.cache_hits, c.cache_misses))
                    .unwrap_or((0, 0));
                let latency = match prev {
                    // Merge the retired generation's histogram into a
                    // scratch copy so live reads stay allocation-light
                    // in the common (no-redeploy) case.
                    Some(c) => {
                        let merged = LatencyHistogram::new();
                        merged.absorb(&c.latency);
                        merged.absorb(&e.latency);
                        merged.snapshot()
                    }
                    None => e.latency.snapshot(),
                };
                AppThroughput {
                    app: name.clone(),
                    submitted: prev_sub + e.counters.submitted.load(Ordering::Relaxed),
                    processed: prev_proc + e.counters.processed.load(Ordering::Relaxed),
                    rejected: prev.map(|c| c.rejected).unwrap_or(0)
                        + e.counters.rejected.load(Ordering::Relaxed),
                    cache_hits: prev_hits + e.counters.cache_hits.load(Ordering::Relaxed),
                    cache_misses: prev_misses + e.counters.cache_misses.load(Ordering::Relaxed),
                    latency,
                    index: e.fitted.index_stats(),
                }
            })
            .collect()
    }

    /// One app's fitted-model report.
    pub fn report(&self, app: &str) -> Result<AppReport> {
        self.entry(app)?.fitted.report()
    }

    /// Reports for every registered app, sorted by app name.
    pub fn reports(&self) -> Result<Vec<AppReport>> {
        self.apps.values().map(|e| e.fitted.report()).collect()
    }

    /// Write a full, versioned snapshot of the serving stack to `path`:
    /// every persistable fitted app (embedder weights + model), the
    /// registry's deployments **with their pinned version numbers** and
    /// full deploy/undeploy history, and the warm entries of the shared
    /// embed cache. The write is atomic (tmp file + rename) and every
    /// section carries its own CRC, so a crash mid-checkpoint leaves the
    /// previous snapshot intact and a torn copy reads back as
    /// [`QuercError::Corrupt`], never as silently-wrong models.
    ///
    /// Apps whose embedder doesn't serialize
    /// ([`querc_embed::Embedder::export_spec`] returns `None`) or whose
    /// model doesn't ([`WorkloadApp::save_model`] returns `None`) are
    /// skipped — they simply refit after a restore. Registry
    /// deployments are skipped on the same terms.
    ///
    /// In-flight queries sitting on shard queues are **not** part of a
    /// snapshot; checkpoint after [`WorkloadManager::drain`] or at a
    /// quiesced moment if the queue contents matter.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<()> {
        use crate::persist::{self, AppState, DeploymentState, ManifestState, RegistryState};
        let encode_failed = || persist::corrupt("snapshot payload failed to serialize");

        let mut deployments = Vec::new();
        for name in self.registry.names() {
            let Some(classifier) = self.registry.get(&name) else {
                continue;
            };
            let Some(version) = self.registry.version(&name) else {
                continue;
            };
            let Some((kind, embedder_json)) = classifier.embedder().export_spec() else {
                continue;
            };
            let Some(labeler) = classifier.labeler().export_state() else {
                continue;
            };
            deployments.push(DeploymentState {
                name,
                version,
                label_name: classifier.label_name.clone(),
                embedder_kind: kind.to_string(),
                embedder_json,
                labeler,
            });
        }
        let registry = RegistryState {
            events: self.registry.history(),
            deployments,
        };

        let mut app_names = Vec::new();
        let mut app_sections = Vec::new();
        for (name, entry) in &self.apps {
            let Some(embedder) = &entry.embedder else {
                continue;
            };
            let Some((kind, embedder_json)) = embedder.export_spec() else {
                continue;
            };
            let Some(model_json) = entry.fitted.save_model() else {
                continue;
            };
            app_names.push(name.clone());
            app_sections.push((
                format!("app:{name}"),
                AppState {
                    app: name.clone(),
                    embedder_kind: kind.to_string(),
                    embedder_json,
                    model_json,
                },
            ));
        }

        let manifest = ManifestState {
            apps: app_names,
            classifiers: registry
                .deployments
                .iter()
                .map(|d| d.name.clone())
                .collect(),
        };
        let cache_entries = self.plane.as_ref().map(|p| p.export()).unwrap_or_default();

        // Tenant policy overrides, written only when QoS is live — an
        // additive section, so pre-QoS readers and snapshots interop
        // without a format version bump.
        let qos_section = self
            .qos
            .as_ref()
            .map(|qos| crate::persist::QosSectionState {
                policies: qos
                    .policies()
                    .into_iter()
                    .map(|(tenant, p)| crate::persist::QosPolicyState {
                        tenant,
                        weight: p.weight,
                        rate_per_sec: p.rate.map(|r| r.rate_per_sec),
                        burst: p.rate.map(|r| r.burst),
                    })
                    .collect(),
            });

        let mut snap = querc_persist::Snapshot::new();
        snap.add_section(
            "manifest",
            persist::to_json(&manifest).ok_or_else(encode_failed)?,
        );
        snap.add_section(
            "registry",
            persist::to_json(&registry).ok_or_else(encode_failed)?,
        );
        for (section, state) in &app_sections {
            snap.add_section(section, persist::to_json(state).ok_or_else(encode_failed)?);
        }
        snap.add_section(
            "embed_cache",
            persist::to_json(&cache_entries).ok_or_else(encode_failed)?,
        );
        if let Some(state) = &qos_section {
            snap.add_section("qos", persist::to_json(state).ok_or_else(encode_failed)?);
        }
        snap.write_to(path)?;

        // A full snapshot resets the delta baseline: only keys cached
        // after this point belong in the next checkpoint_delta.
        let mut keys = self.persisted_keys.lock();
        keys.clear();
        keys.extend(cache_entries.iter().map(|(ns, fp, _)| (*ns, *fp)));
        Ok(())
    }

    /// Append the embed-cache entries cached **since the last
    /// [`WorkloadManager::checkpoint`]** (or `checkpoint_delta`) to an
    /// existing snapshot at `path` — the cheap between-checkpoints way
    /// to keep the warm set current without rewriting models that
    /// haven't changed. No-op when nothing new was cached. A restore
    /// replays deltas in append order on top of the full snapshot's
    /// entries, so recency survives too.
    pub fn checkpoint_delta(&self, path: impl AsRef<Path>) -> Result<()> {
        use crate::persist;
        let mut keys = self.persisted_keys.lock();
        let fresh: Vec<(u64, u64, Vec<f32>)> = self
            .plane
            .as_ref()
            .map(|p| p.export())
            .unwrap_or_default()
            .into_iter()
            .filter(|(ns, fp, _)| !keys.contains(&(*ns, *fp)))
            .collect();
        if fresh.is_empty() {
            return Ok(());
        }
        let payload = persist::to_json(&fresh)
            .ok_or_else(|| persist::corrupt("snapshot payload failed to serialize"))?;
        querc_persist::append_to(
            path,
            &[("embed_cache_delta".to_string(), payload.into_bytes())],
        )?;
        keys.extend(fresh.iter().map(|(ns, fp, _)| (*ns, *fp)));
        Ok(())
    }

    /// Rebuild a serving stack from a snapshot written by
    /// [`WorkloadManager::checkpoint`] (plus any
    /// [`WorkloadManager::checkpoint_delta`] appends): restored apps
    /// serve **bit-identical labels** without refitting, the registry
    /// resumes at its pinned versions with its history intact, and the
    /// embed cache comes back warm — the first post-restore batch hits
    /// on every template the old process had cached.
    ///
    /// `cfg` is the *new* process's serving shape (shards, queue depth,
    /// cache capacity) — topology is deliberately not part of the
    /// snapshot, so a restore can resize. A smaller cache keeps the
    /// hottest entries; `embed_cache_capacity: 0` skips cache warming
    /// entirely. Any mismatch between the snapshot and itself (missing
    /// sections, torn bytes, shapes that don't fit their embedders)
    /// reports [`QuercError::Corrupt`].
    pub fn restore(path: impl AsRef<Path>, cfg: WorkloadManagerConfig) -> Result<WorkloadManager> {
        use crate::classifier::{QueryClassifier, TrainedLabeler};
        use crate::persist::{self, AppState, EmbedderCache, ManifestState, RegistryState};

        let reader = querc_persist::SnapshotReader::open(path)?;
        let manifest: ManifestState = match reader.section("manifest") {
            Some(bytes) => persist::from_json(persist::utf8(bytes, "manifest")?, "manifest")?,
            None => return Err(persist::corrupt("snapshot has no manifest section")),
        };

        let mut mgr = WorkloadManager::new(cfg);
        let mut embedders = EmbedderCache::default();

        // Tenant QoS policies, when the new process runs with QoS on and
        // the snapshot carries the (additive) section. A pre-QoS
        // snapshot simply has none to apply; a QoS snapshot restored
        // into a QoS-disabled config ignores them — both directions
        // interop.
        if let (Some(qos), Some(bytes)) = (&mgr.qos, reader.section("qos")) {
            let state: crate::persist::QosSectionState =
                persist::from_json(persist::utf8(bytes, "qos")?, "qos")?;
            for p in state.policies {
                let rate = match (p.rate_per_sec, p.burst) {
                    (Some(rate_per_sec), Some(burst)) => Some(crate::qos::RateLimit {
                        rate_per_sec,
                        burst,
                    }),
                    (None, None) => None,
                    _ => {
                        return Err(persist::corrupt(format!(
                            "qos policy for {:?} has half a rate limit",
                            p.tenant
                        )))
                    }
                };
                qos.set_policy(
                    &p.tenant,
                    TenantPolicy {
                        weight: p.weight,
                        rate,
                    },
                );
            }
        }

        // Registry first: register_fitted validates `attach_labels`
        // against it, so deployments must be live before any app is.
        if let Some(bytes) = reader.section("registry") {
            let state: RegistryState =
                persist::from_json(persist::utf8(bytes, "registry")?, "registry")?;
            for d in state.deployments {
                let embedder = embedders.restore(&d.embedder_kind, &d.embedder_json)?;
                let labeler = TrainedLabeler::from_state(d.labeler)?;
                if labeler.dim() != embedder.dim() {
                    return Err(persist::corrupt(format!(
                        "classifier {:?}: labeler dim {} but embedder dim {}",
                        d.name,
                        labeler.dim(),
                        embedder.dim()
                    )));
                }
                let classifier = QueryClassifier::new(d.label_name, embedder, labeler);
                mgr.registry
                    .restore_deployment(&d.name, d.version, classifier);
            }
            mgr.registry.restore_history(state.events);
        }

        for name in &manifest.apps {
            let section = format!("app:{name}");
            let bytes = reader.section(&section).ok_or_else(|| {
                persist::corrupt(format!(
                    "manifest lists {section:?} but the section is missing"
                ))
            })?;
            let state: AppState = persist::from_json(persist::utf8(bytes, &section)?, &section)?;
            if state.app != *name {
                return Err(persist::corrupt(format!(
                    "section {section:?} claims to be app {:?}",
                    state.app
                )));
            }
            let embedder = embedders.restore(&state.embedder_kind, &state.embedder_json)?;
            let app = persist::restore_app(name, embedder)?;
            let model = app.load_model_dyn(&state.model_json)?;
            mgr.register_fitted(Arc::new(FittedApp::from_parts(app, model)))?;
        }

        // Cache warming last: full-snapshot entries first, then deltas
        // in append order, so insertion order reproduces recency and an
        // undersized new cache keeps the hottest tail.
        if let Some(plane) = &mgr.plane {
            let mut restored: Vec<(u64, u64, Vec<f32>)> = Vec::new();
            for bytes in reader
                .sections("embed_cache")
                .into_iter()
                .chain(reader.sections("embed_cache_delta"))
            {
                let entries = persist::parse_embed_cache(
                    persist::utf8(bytes, "embed_cache")?,
                    "embed_cache",
                )?;
                restored.extend(entries);
            }
            {
                let mut keys = mgr.persisted_keys.lock();
                keys.extend(restored.iter().map(|(ns, fp, _)| (*ns, *fp)));
            }
            plane.preload(restored);
        }
        Ok(mgr)
    }

    /// Close every shard, join all workers, and collect the labeled
    /// outputs, the training mirror, and final stats — including work
    /// done by generations retired via re-registration.
    pub fn drain(self) -> ServiceDrain {
        let WorkloadManager {
            apps,
            mut carryover,
            plane,
            qos,
            ..
        } = self;
        let mut outputs = BTreeMap::new();
        let mut training_log = Vec::new();
        let mut throughput = Vec::new();
        for (name, entry) in apps {
            // The model (and its atomic index counters) lives in the
            // FittedApp Arc; snapshot after the workers join so the
            // stats cover every drained chunk.
            let fitted = Arc::clone(&entry.fitted);
            let mut collected = Self::shut_down(entry);
            let index = fitted.index_stats();
            if let Some(prev) = carryover.remove(&name) {
                let mut merged = prev.outputs;
                merged.extend(collected.outputs);
                collected.outputs = merged;
                training_log.extend(prev.training);
                collected.submitted += prev.submitted;
                collected.processed += prev.processed;
                collected.rejected += prev.rejected;
                collected.cache_hits += prev.cache_hits;
                collected.cache_misses += prev.cache_misses;
                collected.latency.absorb(&prev.latency);
            }
            training_log.extend(collected.training);
            outputs.insert(name.clone(), collected.outputs);
            throughput.push(AppThroughput {
                app: name,
                submitted: collected.submitted,
                processed: collected.processed,
                rejected: collected.rejected,
                cache_hits: collected.cache_hits,
                cache_misses: collected.cache_misses,
                latency: collected.latency.snapshot(),
                index,
            });
        }
        ServiceDrain {
            outputs,
            training_log,
            throughput,
            embed_cache: plane.map(|p| p.stats()).unwrap_or_default(),
            qos: qos.map(|q| q.drain_snapshot()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{AuditApp, ResourcesApp};
    use querc_embed::{BagOfTokens, Embedder};
    use querc_workloads::QueryRecord;

    fn embedder() -> Arc<dyn Embedder> {
        Arc::new(BagOfTokens::new(64, true))
    }

    fn corpus() -> TrainCorpus {
        let records: Vec<QueryRecord> = (0..40)
            .map(|i| {
                let (user, sql, ms) = if i % 2 == 0 {
                    (
                        "acct/alice",
                        format!("select revenue from finance_reports where q = {i}"),
                        5.0,
                    )
                } else {
                    (
                        "acct/bob",
                        format!(
                            "select a.g, sum(b.v) from big_facts a join big_facts b on a.k = b.k group by a.g -- {i}"
                        ),
                        2000.0,
                    )
                };
                QueryRecord {
                    sql,
                    user: user.into(),
                    account: "acct".into(),
                    cluster: "c0".into(),
                    dialect: "generic".into(),
                    runtime_ms: ms,
                    mem_mb: 1.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect();
        TrainCorpus::from_records(records, 0x5eed)
    }

    #[test]
    fn register_submit_drain_roundtrip() {
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(AuditApp::new(embedder()).with_trees(15), &corpus)
            .unwrap();
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        assert_eq!(mgr.app_names(), vec!["audit", "resources"]);

        for i in 0..10 {
            mgr.submit(
                "audit",
                LabeledQuery::new(format!("select revenue from finance_reports where q = {i}")),
            )
            .unwrap();
        }
        let accepted = mgr
            .submit_batch(
                "resources",
                (0..6).map(|i| LabeledQuery::new(format!("select v from kv_store where k = {i}"))),
            )
            .unwrap();
        assert_eq!(accepted, 6);

        let drained = mgr.drain();
        assert_eq!(drained.outputs["audit"].len(), 10);
        assert_eq!(drained.outputs["resources"].len(), 6);
        for lq in &drained.outputs["audit"] {
            assert_eq!(lq.get("application"), Some("audit"));
            assert_eq!(lq.get("predicted_user"), Some("acct/alice"));
        }
        for lq in &drained.outputs["resources"] {
            assert!(lq.get("resource_class").is_some());
        }
        // Training mirror saw everything.
        assert_eq!(drained.training_log.len(), 16);
        let audit_tp = drained
            .throughput
            .iter()
            .find(|t| t.app == "audit")
            .unwrap();
        assert_eq!(audit_tp.submitted, 10);
        assert_eq!(audit_tp.processed, 10);
    }

    #[test]
    fn reregistration_preserves_inflight_work_and_counters() {
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for i in 0..8 {
            mgr.submit(
                "resources",
                LabeledQuery::new(format!("select v from kv_store where k = {i}")),
            )
            .unwrap();
        }
        // Redeploy (the periodic-retrain flow) while work is in flight.
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for i in 0..5 {
            mgr.submit(
                "resources",
                LabeledQuery::new(format!("select v from kv_store where k = {}", 100 + i)),
            )
            .unwrap();
        }
        let tp = mgr.throughput();
        assert_eq!(tp[0].submitted, 13, "counters span generations");
        let drained = mgr.drain();
        assert_eq!(
            drained.outputs["resources"].len(),
            13,
            "pre-redeploy outputs must survive"
        );
        assert_eq!(drained.training_log.len(), 13);
        let tp = &drained.throughput[0];
        assert_eq!((tp.submitted, tp.processed), (13, 13));
    }

    #[test]
    fn per_tenant_order_is_preserved_across_shards() {
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
            shards_per_app: 4,
            batch: 4,
            ..Default::default()
        });
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        // Eight tenants interleaved round-robin; each carries a per-tenant
        // sequence number. Hash routing pins a tenant to one shard, and a
        // shard is a single FIFO consumer, so sequence numbers must come
        // back monotone per tenant even with 4 worker threads.
        let tenants: Vec<String> = (0..8).map(|t| format!("tenant{t:02}")).collect();
        let mut next_seq = vec![0u32; tenants.len()];
        for i in 0..240 {
            let t = i % tenants.len();
            let mut lq = LabeledQuery::new(format!("select v from kv_store where k = {i}"));
            lq.set("account", &tenants[t]);
            lq.set("seq", next_seq[t].to_string());
            next_seq[t] += 1;
            mgr.submit("resources", lq).unwrap();
        }
        let drained = mgr.drain();
        let outputs = &drained.outputs["resources"];
        assert_eq!(outputs.len(), 240);
        let mut last_seen = vec![-1i64; tenants.len()];
        for lq in outputs {
            let t = tenants
                .iter()
                .position(|name| Some(name.as_str()) == lq.get("account"))
                .unwrap();
            let seq: i64 = lq.get("seq").unwrap().parse().unwrap();
            assert!(
                seq > last_seen[t],
                "tenant {t} replayed out of order: {seq} after {}",
                last_seen[t]
            );
            last_seen[t] = seq;
        }
        // Multiple shards actually participated.
        let used: std::collections::HashSet<usize> =
            tenants.iter().map(|name| shard_for(name, 4)).collect();
        assert!(used.len() > 1, "8 tenants should spread over >1 shard");
    }

    #[test]
    fn one_fitted_model_serves_many_managers_without_refitting() {
        let corpus = corpus();
        let fitted = Arc::new(FittedApp::fit(ResourcesApp::new(embedder()), &corpus).unwrap());
        for shards in [1usize, 3] {
            let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
                shards_per_app: shards,
                ..Default::default()
            });
            let report = mgr.register_fitted(Arc::clone(&fitted)).unwrap();
            assert_eq!(report.app, "resources");
            mgr.submit(
                "resources",
                LabeledQuery::new("select v from kv_store where k = 1"),
            )
            .unwrap();
            let drained = mgr.drain();
            assert_eq!(drained.outputs["resources"].len(), 1);
            assert!(drained.outputs["resources"][0]
                .get("resource_class")
                .is_some());
        }
    }

    #[test]
    fn routing_key_prefers_account_then_user_then_sql() {
        let mut lq = LabeledQuery::new("select 1");
        assert_eq!(routing_key(&lq), "select 1");
        lq.set("user", "acct/alice");
        assert_eq!(routing_key(&lq), "acct/alice");
        lq.set("account", "acct");
        assert_eq!(routing_key(&lq), "acct");
    }

    #[test]
    fn lineage_key_is_the_sorted_read_set() {
        let lq = LabeledQuery::new("select * from orders o join customer c on c.id = o.cid");
        assert_eq!(lineage_routing_key(&lq), "customer,orders");
        // Same tables, different tenant, different dialect casing — one key.
        let mut other = LabeledQuery::new("SELECT * FROM customer, orders WHERE 1 = 1");
        other.set("account", "someone_else");
        assert_eq!(lineage_routing_key(&other), "customer,orders");
    }

    #[test]
    fn lineage_key_uses_write_target_and_tenant_fallback() {
        let lq = LabeledQuery::new("insert into audit_log values (1)");
        assert_eq!(lineage_routing_key(&lq), "w:audit_log");
        // No tables at all: fall back to the tenant key.
        let mut bare = LabeledQuery::new("SET warehouse = 'XL'");
        bare.set("account", "acct07");
        assert_eq!(lineage_routing_key(&bare), "acct07");
    }

    #[test]
    fn lineage_key_honors_dialect_label() {
        let mut lq = LabeledQuery::new("select * from `proj.ds.events`");
        lq.set("dialect", "bigquery");
        assert_eq!(lineage_routing_key(&lq), "proj.ds.events");
        // Same text under the generic lexer reads backticks differently,
        // which is exactly why the label matters.
        let generic = LabeledQuery::new("select * from `proj.ds.events`");
        assert_ne!(lineage_routing_key(&generic), "");
    }

    /// Queries from many tenants over one table share a single lineage
    /// key — so under [`RoutingPolicy::Lineage`] they all land on one
    /// shard while their tenant keys would have spread them — and a
    /// manager configured with the policy still drains every query.
    #[test]
    fn lineage_policy_co_locates_same_table_queries() {
        // Pure-function half: one lineage key (hence one shard) where
        // tenant keys scatter.
        let tenants: Vec<String> = (0..8).map(|i| format!("acct{i:03}")).collect();
        let tenant_shards: std::collections::HashSet<usize> =
            tenants.iter().map(|t| shard_for(t, 8)).collect();
        assert!(tenant_shards.len() > 1, "tenant keys must spread");
        let lineage_shards: std::collections::HashSet<usize> = tenants
            .iter()
            .map(|t| {
                let mut lq = LabeledQuery::new("select v from kv_store where k = 9");
                lq.set("account", t);
                shard_for(&lineage_routing_key(&lq), 8)
            })
            .collect();
        assert_eq!(lineage_shards.len(), 1, "one table → one shard");

        // Serving half: the policy end-to-end, every query labeled once.
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
            shards_per_app: 8,
            routing: RoutingPolicy::Lineage,
            ..Default::default()
        });
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for t in &tenants {
            let mut lq = LabeledQuery::new("select v from kv_store where k = 9");
            lq.set("account", t);
            mgr.submit("resources", lq).unwrap();
        }
        let drained = mgr.drain();
        assert_eq!(drained.outputs["resources"].len(), 8);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8, 16] {
            let mut hit = std::collections::HashSet::new();
            for i in 0..200 {
                let key = format!("acct{i:03}");
                let s = shard_for(&key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(&key, shards), "stable per (key, count)");
                hit.insert(s);
            }
            if shards > 1 {
                assert!(
                    hit.len() > shards / 2,
                    "200 keys should spread over most of {shards} shards, got {}",
                    hit.len()
                );
            }
        }
        // Pure function of its inputs: independent call sites agree.
        assert_eq!(shard_for("acct00", 4), shard_for("acct00", 4));
        assert_eq!(shard_for("", 5), shard_for("", 5));
    }

    #[test]
    fn drain_reports_latency_quantiles() {
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for i in 0..50 {
            mgr.submit(
                "resources",
                LabeledQuery::new(format!("select v from kv_store where k = {i}")),
            )
            .unwrap();
        }
        let drained = mgr.drain();
        let stats = &drained.throughput[0];
        assert_eq!(stats.latency.count, 50, "every query timed");
        assert!(stats.latency.p50_us <= stats.latency.p95_us);
        assert!(stats.latency.p95_us <= stats.latency.p99_us);
        assert!(stats.latency.p99_us <= stats.latency.max_us.max(1));
    }

    #[test]
    fn shared_embedder_fans_one_embedding_out_to_every_app() {
        let corpus = corpus();
        // ONE embedder Arc for both apps — the blessed deployment.
        let shared = embedder();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(AuditApp::new(Arc::clone(&shared)).with_trees(10), &corpus)
            .unwrap();
        mgr.register(ResourcesApp::new(Arc::clone(&shared)), &corpus)
            .unwrap();

        // The same template (literals vary) to both apps, repeatedly.
        for i in 0..10 {
            let lq = LabeledQuery::new(format!("select v from kv_store where k = {i}"));
            mgr.submit("audit", lq.clone()).unwrap();
            mgr.submit("resources", lq).unwrap();
        }
        let live = mgr.embed_cache_stats();
        assert_eq!(live.misses, 1, "one template, embedded exactly once");
        assert_eq!(live.hits, 19, "all 19 other submissions reused it");
        assert_eq!(live.entries, 1);

        let drained = mgr.drain();
        assert_eq!(drained.embed_cache.misses, 1);
        // Per-app attribution: audit saw the first sighting.
        let audit = drained
            .throughput
            .iter()
            .find(|t| t.app == "audit")
            .unwrap();
        let res = drained
            .throughput
            .iter()
            .find(|t| t.app == "resources")
            .unwrap();
        assert_eq!((audit.cache_hits, audit.cache_misses), (9, 1));
        assert_eq!((res.cache_hits, res.cache_misses), (10, 0));
        assert_eq!(res.cache_hit_rate(), 1.0);
        // And the labels are all there despite nobody re-embedding.
        for lq in &drained.outputs["resources"] {
            assert!(lq.get("resource_class").is_some());
        }
        for lq in &drained.outputs["audit"] {
            assert!(lq.get("predicted_user").is_some());
        }
    }

    #[test]
    fn disabled_cache_serves_identically_with_zero_counters() {
        let corpus = corpus();
        let queries: Vec<LabeledQuery> = (0..12)
            .map(|i| {
                let mut lq = LabeledQuery::new(format!(
                    "select revenue from finance_reports where q = {}",
                    i % 3
                ));
                lq.set("user", "acct/alice");
                lq
            })
            .collect();
        let run = |capacity: usize| {
            let shared = embedder();
            let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
                embed_cache_capacity: capacity,
                ..Default::default()
            });
            mgr.register(AuditApp::new(shared).with_trees(10), &corpus)
                .unwrap();
            mgr.submit_batch("audit", queries.clone()).unwrap();
            mgr.drain()
        };
        let off = run(0);
        let on = run(1024);
        assert_eq!(off.embed_cache, EmbedCacheStats::default());
        assert_eq!(
            off.throughput[0].cache_hits + off.throughput[0].cache_misses,
            0
        );
        assert!(on.embed_cache.hits > 0);
        // Bit-identical serving: caching is an amortization, never a
        // semantic change. Completion order may differ across shard
        // threads, so compare as multisets.
        let sort = |mut v: Vec<LabeledQuery>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        assert_eq!(
            sort(off.outputs["audit"].clone()),
            sort(on.outputs["audit"].clone())
        );
    }

    #[test]
    fn index_backed_apps_surface_search_stats() {
        use crate::apps::summarize::{SummarizeApp, SummaryConfig};
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        mgr.register(
            SummarizeApp::new(embedder()).with_config(SummaryConfig {
                k: Some(4),
                ..Default::default()
            }),
            &corpus,
        )
        .unwrap();
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        for i in 0..12 {
            mgr.submit(
                "summarize",
                LabeledQuery::new(format!("select v from kv_store where k = {i}")),
            )
            .unwrap();
        }
        let drained = mgr.drain();
        let summarize = drained
            .throughput
            .iter()
            .find(|t| t.app == "summarize")
            .unwrap();
        let ix = summarize.index.as_ref().expect("summarize has an index");
        assert_eq!(ix.searches, 12, "one centroid search per query");
        assert!(ix.exact && ix.partitions == 1);
        assert_eq!(ix.candidates, 12 * 4, "k=4 centroids scanned per search");
        // Apps without a vector index report None, not zeros.
        let resources = drained
            .throughput
            .iter()
            .find(|t| t.app == "resources")
            .unwrap();
        assert!(resources.index.is_none());
    }

    #[test]
    fn unknown_app_is_an_error() {
        let mgr = WorkloadManager::new(WorkloadManagerConfig::default());
        let err = mgr
            .submit("ghost", LabeledQuery::new("select 1"))
            .unwrap_err();
        assert!(matches!(err, QuercError::UnknownApp { .. }));
        assert!(mgr.report("ghost").is_err());
    }

    #[test]
    fn qos_submit_surfaces_rejected_with_tenant_and_reason() {
        use crate::qos::{QosConfig, RateLimit, RejectReason, TenantPolicy};
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
            qos: QosConfig::enabled(),
            ..Default::default()
        });
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        mgr.set_tenant_policy(
            "cutoff",
            TenantPolicy {
                weight: 1,
                rate: Some(RateLimit {
                    rate_per_sec: 0.0,
                    burst: 0.0,
                }),
            },
        );
        let mut lq = LabeledQuery::new("select v from kv_store where k = 1");
        lq.set("account", "cutoff");
        let err = mgr.submit("resources", lq).unwrap_err();
        match err {
            QuercError::Rejected { tenant, reason } => {
                assert_eq!(tenant, "cutoff");
                assert_eq!(reason, RejectReason::RateLimited);
            }
            other => panic!("expected Rejected, got {other}"),
        }
        // Unlimited tenants proceed untouched on the same manager.
        let mut ok = LabeledQuery::new("select v from kv_store where k = 2");
        ok.set("account", "open");
        mgr.submit("resources", ok).unwrap();
        let drained = mgr.drain();
        let tp = &drained.throughput[0];
        assert_eq!((tp.submitted, tp.processed, tp.rejected), (2, 1, 1));
        assert_eq!(drained.outputs["resources"].len(), 1);
    }

    #[test]
    fn qos_drain_accounts_submitted_as_processed_plus_rejected_mid_batch() {
        use crate::qos::{QosConfig, RateLimit, TenantPolicy};
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
            qos: QosConfig::enabled(),
            ..Default::default()
        });
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        // One tenant is cut off entirely; sheds land mid-batch,
        // interleaved with admitted queries from the open tenant.
        mgr.set_tenant_policy(
            "cutoff",
            TenantPolicy {
                weight: 1,
                rate: Some(RateLimit {
                    rate_per_sec: 0.0,
                    burst: 0.0,
                }),
            },
        );
        let batch: Vec<LabeledQuery> = (0..40)
            .map(|i| {
                let mut lq = LabeledQuery::new(format!("select v from kv_store where k = {i}"));
                lq.set("account", if i % 2 == 0 { "cutoff" } else { "open" });
                lq
            })
            .collect();
        let accepted = mgr.submit_batch("resources", batch).unwrap();
        assert_eq!(accepted, 20, "the admitted subset, not the whole batch");
        let drained = mgr.drain();
        let tp = &drained.throughput[0];
        assert_eq!(tp.submitted, 40, "offers counted, admitted or not");
        assert_eq!(
            tp.processed + tp.rejected,
            tp.submitted,
            "every offer has exactly one outcome"
        );
        assert_eq!((tp.processed, tp.rejected), (20, 20));
        let cutoff = &drained.qos.tenants["cutoff"];
        assert_eq!(cutoff.rejected_rate_limited, 20);
        assert_eq!((cutoff.processed, cutoff.pending), (0, 0));
        let open = &drained.qos.tenants["open"];
        assert_eq!(
            (open.submitted, open.processed, open.rejected()),
            (20, 20, 0)
        );
        assert_eq!(open.latency.count, 20, "per-tenant quantiles recorded");
        assert!(open.latency.p50_us <= open.latency.p99_us);
        assert_eq!(drained.outputs["resources"].len(), 20);
        assert_eq!(drained.qos.total_rejected(), 20);
    }

    #[test]
    fn qos_preserves_per_tenant_order_and_drains_everything() {
        use crate::qos::QosConfig;
        let corpus = corpus();
        let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
            shards_per_app: 4,
            batch: 4,
            qos: QosConfig {
                enabled: true,
                quantum: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        // Same shape as per_tenant_order_is_preserved_across_shards, but
        // through the DRR dequeue path: fairness must not break FIFO.
        let tenants: Vec<String> = (0..8).map(|t| format!("tenant{t:02}")).collect();
        let mut next_seq = vec![0u32; tenants.len()];
        for i in 0..240 {
            let t = i % tenants.len();
            let mut lq = LabeledQuery::new(format!("select v from kv_store where k = {i}"));
            lq.set("account", &tenants[t]);
            lq.set("seq", next_seq[t].to_string());
            next_seq[t] += 1;
            mgr.submit("resources", lq).unwrap();
        }
        let drained = mgr.drain();
        let outputs = &drained.outputs["resources"];
        assert_eq!(outputs.len(), 240, "nothing lost, nothing shed");
        let mut last_seen = vec![-1i64; tenants.len()];
        for lq in outputs {
            let t = tenants
                .iter()
                .position(|name| Some(name.as_str()) == lq.get("account"))
                .unwrap();
            let seq: i64 = lq.get("seq").unwrap().parse().unwrap();
            assert!(
                seq > last_seen[t],
                "tenant {t} replayed out of order under DRR: {seq} after {}",
                last_seen[t]
            );
            last_seen[t] = seq;
        }
        assert_eq!(drained.qos.tenants.len(), 8);
        for (name, snap) in &drained.qos.tenants {
            assert_eq!(snap.submitted, 30, "{name}");
            assert_eq!(snap.processed, 30, "{name}");
            assert_eq!(snap.rejected(), 0, "{name}");
        }
    }

    #[test]
    fn attach_labels_requires_deployed_classifier() {
        let corpus = corpus();
        let cfg = WorkloadManagerConfig {
            attach_labels: vec!["team".to_string()],
            ..Default::default()
        };
        let mut mgr = WorkloadManager::new(cfg);
        let err = mgr
            .register(ResourcesApp::new(embedder()), &corpus)
            .unwrap_err();
        assert!(matches!(err, QuercError::ModelNotDeployed { .. }));
    }

    #[test]
    fn attached_registry_classifier_labels_ride_along() {
        use crate::training::{EmbedderKind, TrainingConfig, TrainingModule};

        let corpus = corpus();
        let cfg = WorkloadManagerConfig {
            attach_labels: vec!["user".to_string()],
            ..Default::default()
        };
        let mut mgr = WorkloadManager::new(cfg);
        // Deploy a generic `user` classifier through the manager's registry.
        let mut tm = TrainingModule::new(TrainingConfig::default());
        tm.ingest_records(&corpus.records);
        let emb = tm.train_embedder(&EmbedderKind::BagOfTokens { dim: 64 });
        tm.try_train_and_deploy(mgr.registry(), &emb, "user")
            .unwrap();

        mgr.register(ResourcesApp::new(embedder()), &corpus)
            .unwrap();
        mgr.submit(
            "resources",
            LabeledQuery::new("select revenue from finance_reports where q = 99"),
        )
        .unwrap();
        let drained = mgr.drain();
        let lq = &drained.outputs["resources"][0];
        assert_eq!(lq.get("predicted_user"), Some("acct/alice"));
        assert!(lq.get("resource_class").is_some());
    }
}
