//! Umbrella package for the Querc reproduction workspace.
//!
//! This package exists to host the runnable `examples/` and cross-crate
//! integration `tests/` at the repository root. The library surface simply
//! re-exports the workspace crates so examples can use one import root.

pub use querc;
pub use querc_cluster as cluster;
pub use querc_dbsim as dbsim;
pub use querc_embed as embed;
pub use querc_learn as learn;
pub use querc_linalg as linalg;
pub use querc_sql as sql;
pub use querc_workloads as workloads;
