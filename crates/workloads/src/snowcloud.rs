//! "SnowCloud" — a synthetic multi-tenant cloud-warehouse workload.
//!
//! Stands in for the proprietary Snowflake logs of the paper's §5.2 (500k
//! pre-training queries + 200k labeled queries). The generator encodes the
//! three mechanisms the paper's results hinge on:
//!
//! 1. **account ⇒ schema vocabulary**: every account gets its own table /
//!    column identifier space (with a small shared overlap), which is why
//!    a purely generic embedder can label accounts near-perfectly;
//! 2. **user ⇒ habit mixture**: each user owns a handful of private query
//!    templates over the account's schema, so users are distinguishable —
//!    but less sharply than accounts;
//! 3. **repetitive accounts**: some accounts route most of their traffic
//!    through a *shared pool of verbatim query texts* issued by many
//!    users, making those users nearly indistinguishable (Table 2's
//!    low-accuracy rows, ~65% of total query volume in the paper).
//!
//! Records also carry runtime / memory / error-code labels so the
//! resource-allocation and error-prediction applications have training
//! data (the companion-tech-report applications).

use crate::record::QueryRecord;
use querc_linalg::Pcg32;
use serde::{Deserialize, Serialize};

/// Per-account generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccountSpec {
    /// Account name, e.g. `acct03`.
    pub name: String,
    /// Number of distinct users.
    pub users: usize,
    /// Number of queries to emit.
    pub queries: usize,
    /// Probability that a query is drawn verbatim from the account-wide
    /// shared pool instead of the user's private templates.
    pub repetitiveness: f64,
    /// Number of tables in the account's schema.
    pub tables: usize,
    /// Size of the shared verbatim-query pool.
    pub shared_pool: usize,
    /// Private templates per user.
    pub templates_per_user: usize,
    /// Dialect name the tenant speaks (`generic`, `tsql`, `snowflake`, …).
    pub dialect: String,
    /// Cluster the account's queries are routed to.
    pub cluster: String,
}

/// Whole-workload generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnowCloudConfig {
    /// Per-account generation specs.
    pub accounts: Vec<AccountSpec>,
    /// Master seed; each account derives its own RNG stream from it.
    pub seed: u64,
}

impl SnowCloudConfig {
    /// Mirror the paper's Table 2: thirteen accounts with its exact
    /// (#queries, #users) proportions scaled by `scale`, the top two
    /// accounts heavily repetitive (they cover ~65% of the volume), the
    /// many-users third account moderately repetitive, and the rest
    /// dominated by private per-user templates.
    pub fn paper_table2(scale: f64, seed: u64) -> SnowCloudConfig {
        // (queries, users, repetitiveness) straight from Table 2's rows.
        const ROWS: &[(usize, usize, f64)] = &[
            (73881, 28, 0.62),
            (55333, 10, 0.72),
            (18487, 46, 0.55),
            (5471, 21, 0.02),
            (4213, 6, 0.35),
            (3894, 12, 0.0),
            (3373, 9, 0.0),
            (2867, 6, 0.0),
            (1953, 15, 0.08),
            (1924, 4, 0.02),
            (1776, 9, 0.03),
            (1699, 5, 0.0),
            (1108, 12, 0.02),
        ];
        let dialects = [
            "snowflake",
            "generic",
            "postgres",
            "tsql",
            "bigquery",
            "mysql",
        ];
        let accounts = ROWS
            .iter()
            .enumerate()
            .map(|(i, &(q, u, rep))| AccountSpec {
                name: format!("acct{i:02}"),
                users: u,
                queries: ((q as f64 * scale).round() as usize).max(40),
                repetitiveness: rep,
                tables: 4 + (i * 3) % 8,
                shared_pool: 6 + i % 5,
                templates_per_user: 3 + i % 3,
                dialect: dialects[i % dialects.len()].to_string(),
                cluster: format!("cluster{}", i % 4),
            })
            .collect();
        SnowCloudConfig { accounts, seed }
    }

    /// A broad, flat multi-tenant mix for embedder pre-training (the
    /// paper's separate 500k-query training workload).
    pub fn pretrain(n_accounts: usize, queries_per_account: usize, seed: u64) -> SnowCloudConfig {
        let dialects = [
            "snowflake",
            "generic",
            "postgres",
            "tsql",
            "bigquery",
            "mysql",
        ];
        let accounts = (0..n_accounts)
            .map(|i| AccountSpec {
                name: format!("pre{i:02}"),
                users: 3 + i % 8,
                queries: queries_per_account,
                repetitiveness: 0.1 * ((i % 4) as f64) / 4.0,
                tables: 3 + i % 9,
                shared_pool: 5,
                templates_per_user: 2 + i % 4,
                dialect: dialects[i % dialects.len()].to_string(),
                cluster: format!("cluster{}", i % 4),
            })
            .collect();
        SnowCloudConfig { accounts, seed }
    }
}

/// A generated SnowCloud workload.
#[derive(Debug, Clone)]
pub struct SnowCloud {
    /// Labeled log records, sorted by timestamp across accounts.
    pub records: Vec<QueryRecord>,
}

impl SnowCloud {
    /// Generate the workload described by `cfg`. Deterministic in the seed.
    pub fn generate(cfg: &SnowCloudConfig) -> SnowCloud {
        let mut records = Vec::new();
        for (ai, spec) in cfg.accounts.iter().enumerate() {
            let mut rng = Pcg32::with_stream(cfg.seed, 0x5c0d + ai as u64);
            let account = AccountGen::new(ai, spec, &mut rng);
            account.emit(spec, &mut rng, &mut records);
        }
        // Interleave accounts by timestamp so streams look realistic.
        records.sort_by_key(|r| r.timestamp);
        SnowCloud { records }
    }

    /// Token corpora for embedder training.
    pub fn token_corpus(&self) -> Vec<Vec<String>> {
        self.records.iter().map(|r| r.tokens()).collect()
    }
}

// ---- schema + template machinery ----------------------------------------

const THEMES: &[&str] = &[
    "sales", "web", "iot", "fin", "hr", "ads", "game", "med", "edu", "ship", "crm", "dev", "ops",
    "retail", "energy", "social", "travel", "media", "bank", "sec", "agri", "auto", "chem",
    "pharma", "tele", "legal", "gov", "sport", "food", "music",
];
const NOUNS: &[&str] = &[
    "orders",
    "events",
    "sessions",
    "users",
    "metrics",
    "logs",
    "invoices",
    "payments",
    "clicks",
    "devices",
    "accounts",
    "products",
    "shipments",
    "tickets",
    "visits",
    "alerts",
    "trades",
    "claims",
    "courses",
    "campaigns",
];
const ATTRS: &[&str] = &[
    "id", "ts", "amount", "status", "kind", "region", "score", "cnt", "label", "value", "price",
    "qty", "flag", "code", "source", "target", "level", "rate",
];

/// A table in an account's schema: its name and column names.
#[derive(Debug, Clone)]
struct Table {
    name: String,
    cols: Vec<String>,
}

/// A private query template: archetype + fixed schema choices. Literals
/// are randomized at instantiation, so the same template yields many
/// distinct texts with one recognizable shape.
#[derive(Debug, Clone)]
struct Template {
    archetype: usize,
    table: usize,
    table2: usize,
    cols: Vec<usize>,
    /// Templates flagged flaky produce elevated error rates (fuel for the
    /// error-prediction application).
    flaky: bool,
}

struct AccountGen {
    tables: Vec<Table>,
    /// Per-user private templates.
    user_templates: Vec<Vec<Template>>,
    /// Verbatim shared texts + Zipf-ish weights over users issuing them.
    shared_pool: Vec<String>,
    user_weights: Vec<f64>,
}

impl AccountGen {
    fn new(ai: usize, spec: &AccountSpec, rng: &mut Pcg32) -> AccountGen {
        // Identifier vocabulary derives from the account NAME, so two
        // workloads generated from different account sets share no schema
        // tokens — embedders must genuinely generalize across tenants.
        let tag = name_tag(&spec.name);
        let theme = THEMES[(fnv1a(&spec.name) >> 8) as usize % THEMES.len()];
        let tables: Vec<Table> = (0..spec.tables.max(1))
            .map(|t| {
                let noun = NOUNS[(ai * 7 + t * 3) % NOUNS.len()];
                // Warehouse logs reference database-qualified tables; the
                // tenant-specific database qualifier is a schema token that
                // recurs in every query of the account.
                let name = format!("{theme}_{tag}.{noun}");
                // Column names carry the tenant marker too: real tenants
                // bring their own naming conventions, which is exactly the
                // vocabulary signal account labeling feeds on.
                let prefix: String = noun.chars().take(2).collect();
                let n_cols = 5 + (t * 2 + ai) % 6;
                let cols = (0..n_cols)
                    .map(|c| format!("{prefix}_{tag}_{}", ATTRS[(c * 5 + t) % ATTRS.len()]))
                    .collect();
                Table { name, cols }
            })
            .collect();

        let mut user_templates = Vec::with_capacity(spec.users);
        for _u in 0..spec.users.max(1) {
            let mut ts = Vec::with_capacity(spec.templates_per_user);
            for k in 0..spec.templates_per_user.max(1) {
                let table = rng.below_usize(tables.len());
                let table2 = rng.below_usize(tables.len());
                let n_cols = tables[table].cols.len();
                let cols = vec![
                    rng.below_usize(n_cols),
                    rng.below_usize(n_cols),
                    rng.below_usize(n_cols),
                ];
                ts.push(Template {
                    archetype: rng.below_usize(N_ARCHETYPES),
                    table,
                    table2,
                    cols,
                    flaky: k == 0 && rng.chance(0.25),
                });
            }
            user_templates.push(ts);
        }

        // Shared pool: verbatim texts with FIXED literals.
        let shared_pool = (0..spec.shared_pool.max(1))
            .map(|_| {
                let t = Template {
                    archetype: rng.below_usize(N_ARCHETYPES),
                    table: rng.below_usize(tables.len()),
                    table2: rng.below_usize(tables.len()),
                    cols: vec![rng.below_usize(tables[0].cols.len().max(1)), 0, 1],
                    flaky: false,
                };
                render(&t, &tables, rng, &spec.dialect)
            })
            .collect();

        // Zipf-ish weights: a couple of heavy users issue most shared
        // queries, matching how BI/dashboard service users behave.
        let user_weights: Vec<f64> = (0..spec.users.max(1))
            .map(|u| 1.0 / (1.0 + u as f64))
            .collect();

        AccountGen {
            tables,
            user_templates,
            shared_pool,
            user_weights,
        }
    }

    fn emit(&self, spec: &AccountSpec, rng: &mut Pcg32, out: &mut Vec<QueryRecord>) {
        let mut ts: u64 = rng.below(1000) as u64;
        for _ in 0..spec.queries {
            ts += 1 + rng.below(30) as u64;
            let (user_idx, sql, flaky, archetype) = if rng.chance(spec.repetitiveness) {
                // Shared verbatim query; the issuing user follows the
                // Zipf-ish weights.
                let u = rng.weighted(&self.user_weights);
                let q = rng.choose(&self.shared_pool).clone();
                (u, q, false, usize::MAX)
            } else {
                let u = rng.below_usize(self.user_templates.len());
                let t = rng.choose(&self.user_templates[u]);
                (
                    u,
                    render(t, &self.tables, rng, &spec.dialect),
                    t.flaky,
                    t.archetype,
                )
            };
            // Runtime/memory model: archetype base cost × noise.
            let (base_ms, base_mb) = match archetype {
                2 | 3 => (900.0, 800.0),      // joins / ETL
                8..=10 => (500.0, 450.0),     // CTE / set-op / derived rollups
                0 | 7 => (350.0, 300.0),      // aggregations
                usize::MAX => (200.0, 150.0), // dashboards from the pool
                _ => (60.0, 80.0),            // lookups / top-k
            };
            let noise = (rng.normal() * 0.4).exp() as f64;
            let error_code = if flaky && rng.chance(0.30) {
                Some(604) // resource exhausted
            } else if rng.chance(0.01) {
                Some(2000 + rng.below(5) as u16) // background noise errors
            } else {
                None
            };
            out.push(QueryRecord {
                sql,
                user: format!("{}/u{user_idx:02}", spec.name),
                account: spec.name.clone(),
                cluster: spec.cluster.clone(),
                dialect: spec.dialect.clone(),
                runtime_ms: base_ms * noise,
                mem_mb: base_mb * noise.sqrt(),
                error_code,
                timestamp: ts,
            });
        }
    }
}

const N_ARCHETYPES: usize = 12;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Short per-account identifier tag (stable hash of the account name).
fn name_tag(name: &str) -> String {
    format!("{:04x}", fnv1a(name) & 0xffff)
}

/// Instantiate a template with fresh literals and per-instance structural
/// variation (extra projections, extra predicates, optional ORDER/LIMIT).
///
/// The variation matters: ad-hoc cloud workloads are long and diverse, so
/// two instances of one template rarely share a normalized skeleton. That
/// forces labeling models to generalize from token-level signal instead of
/// memorizing shapes — the regime the paper's §5.2 numbers live in.
fn render(t: &Template, tables: &[Table], rng: &mut Pcg32, dialect: &str) -> String {
    let tab = &tables[t.table];
    let tab2 = &tables[t.table2];
    let col = |i: usize| -> &str { &tab.cols[t.cols[i % t.cols.len()] % tab.cols.len()] };
    let n1 = rng.below(100_000);
    let n2 = rng.below(1000);
    let day = 1 + rng.below(28);
    let month = 1 + rng.below(12);
    // Instance noise: extra projected columns and filter conjuncts drawn
    // fresh per query.
    let extra_cols: Vec<&str> = (0..rng.below_usize(4))
        .map(|_| tab.cols[rng.below_usize(tab.cols.len())].as_str())
        .collect();
    let extra_proj = if extra_cols.is_empty() {
        String::new()
    } else {
        format!(", {}", extra_cols.join(", "))
    };
    let mut extra_preds = String::new();
    for _ in 0..rng.below_usize(3) {
        let c = &tab.cols[rng.below_usize(tab.cols.len())];
        let op = ["=", ">", "<", ">=", "<>"][rng.below_usize(5)];
        extra_preds.push_str(&format!(" and {c} {op} {}", rng.below(10_000)));
    }
    let suffix = match rng.below(4) {
        0 => format!(
            " order by {} desc",
            tab.cols[rng.below_usize(tab.cols.len())]
        ),
        1 => format!(" limit {}", 10 + rng.below(490)),
        _ => String::new(),
    };
    match t.archetype {
        0 => format!(
            "select {g}, count(*) as n, sum({v}) as total from {t} \
             where {ts} >= '2018-{month:02}-{day:02}'{extra_preds} group by {g} order by total desc",
            g = col(0),
            v = col(1),
            ts = col(2),
            t = tab.name,
        ),
        1 => format!(
            "select * from {t} where {id} = {n1}{extra_preds}",
            t = tab.name,
            id = col(0),
        ),
        2 => format!(
            "select a.{c1}{extra_proj}, sum(b.{c2}) from {t1} a join {t2} b on a.{c1} = b.{c3} \
             where a.{c4} > {n2}{extra_preds} group by a.{c1}",
            t1 = tab.name,
            t2 = tab2.name,
            c1 = col(0),
            c2 = tab2.cols[t.cols[1] % tab2.cols.len()],
            c3 = tab2.cols[t.cols[0] % tab2.cols.len()],
            c4 = col(2),
        ),
        3 => format!(
            "insert into {t1}_staging select {c1}, {c2} from {t2} where {c3} >= '2019-{month:02}-{day:02}'",
            t1 = tab.name,
            t2 = tab2.name,
            c1 = tab2.cols[t.cols[0] % tab2.cols.len()],
            c2 = tab2.cols[t.cols[1] % tab2.cols.len()],
            c3 = tab2.cols[t.cols[2] % tab2.cols.len()],
        ),
        4 => format!(
            "select {c1}, {c2}{extra_proj} from {t} where {c3} > {n2}{extra_preds} order by {c2} desc limit {k}",
            t = tab.name,
            c1 = col(0),
            c2 = col(1),
            c3 = col(2),
            k = 5 + rng.below(95),
        ),
        5 => format!(
            "select distinct {c1}{extra_proj} from {t} where {c2} like '{p}%'{extra_preds}",
            t = tab.name,
            c1 = col(0),
            c2 = col(1),
            p = ["a", "be", "co", "de", "er"][rng.below_usize(5)],
        ),
        6 => format!(
            "update {t} set {c1} = {n2} where {c2} = {n1}",
            t = tab.name,
            c1 = col(1),
            c2 = col(0),
        ),
        7 => format!(
            "select {g}, sum({v}) from {t} group by {g} having sum({v}) > {n1}{suffix}",
            t = tab.name,
            g = col(0),
            v = col(1),
        ),
        // CTE rollup: the staple "materialize then filter" dashboard shape.
        8 => format!(
            "with rollup_cte as (select {g}, sum({v}) as total from {t} \
             where {ts} > {n2}{extra_preds} group by {g}) \
             select * from rollup_cte where total > {n1}{suffix}",
            t = tab.name,
            g = col(0),
            v = col(1),
            ts = col(2),
        ),
        // Set operation across two tables of the tenant's schema.
        9 => format!(
            "select {c1} from {t1} where {c2} > {n2} union all select {c3} from {t2} where {c4} > {n2}",
            t1 = tab.name,
            t2 = tab2.name,
            c1 = col(0),
            c2 = col(1),
            c3 = tab2.cols[t.cols[0] % tab2.cols.len()],
            c4 = tab2.cols[t.cols[1] % tab2.cols.len()],
        ),
        // Derived-table aggregation.
        10 => format!(
            "select d.{c1}, count(*) from (select {c1}, {c2} from {t} \
             where {c3} > {n2}{extra_preds}) d group by d.{c1}",
            t = tab.name,
            c1 = col(0),
            c2 = col(1),
            c3 = col(2),
        ),
        // Dialect-flavored form matching the tenant's declared dialect, so
        // multi-dialect parsing is exercised end-to-end by the workload.
        _ => match dialect {
            "snowflake" => format!(
                "select {c1}, {c2} from {t} where {c1} ilike '{p}%' \
                 qualify row_number() over (partition by {c1} order by {c2} desc) = 1",
                t = tab.name,
                c1 = col(0),
                c2 = col(1),
                p = ["a", "be", "co"][rng.below_usize(3)],
            ),
            "bigquery" => format!(
                "select * except({c1}) from `{t}` where {c2} > {n2}",
                t = tab.name,
                c1 = col(0),
                c2 = col(1),
            ),
            "mysql" => format!(
                "select a.{c1} from {t1} a straight_join {t2} b on a.{c1} = b.{c3} where a.{c2} > {n2}",
                t1 = tab.name,
                t2 = tab2.name,
                c1 = col(0),
                c2 = col(1),
                c3 = tab2.cols[t.cols[0] % tab2.cols.len()],
            ),
            "tsql" => format!(
                "select top {k} {c1}, {c2} from {t} order by {c2} desc",
                t = tab.name,
                c1 = col(0),
                c2 = col(1),
                k = 5 + rng.below(95),
            ),
            _ => format!(
                "select {c1}, {c2} from {t} where {c3} between {n2} and {n1}{suffix}",
                t = tab.name,
                c1 = col(0),
                c2 = col(1),
                c3 = col(2),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn small_cfg() -> SnowCloudConfig {
        SnowCloudConfig::paper_table2(0.01, 7)
    }

    #[test]
    fn generates_requested_volumes() {
        let cfg = small_cfg();
        let wl = SnowCloud::generate(&cfg);
        let expected: usize = cfg.accounts.iter().map(|a| a.queries).sum();
        assert_eq!(wl.records.len(), expected);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SnowCloud::generate(&small_cfg());
        let b = SnowCloud::generate(&small_cfg());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn account_vocabularies_are_mostly_disjoint() {
        let wl = SnowCloud::generate(&small_cfg());
        let mut vocab_by_account: HashMap<&str, HashSet<String>> = HashMap::new();
        for r in &wl.records {
            let entry = vocab_by_account.entry(r.account.as_str()).or_default();
            for tok in r.tokens() {
                if tok.chars().any(|c| c.is_ascii_digit()) && tok.contains('_') {
                    entry.insert(tok); // schema-ish identifiers
                }
            }
        }
        let accounts: Vec<&&str> = vocab_by_account.keys().collect::<Vec<_>>();
        if accounts.len() >= 2 {
            let a = &vocab_by_account[*accounts[0]];
            let b = &vocab_by_account[*accounts[1]];
            let inter = a.intersection(b).count();
            assert!(
                inter * 10 < a.len().max(1).max(b.len()),
                "schema identifier overlap too high: {inter} of {}/{}",
                a.len(),
                b.len()
            );
        }
    }

    #[test]
    fn repetitive_accounts_have_many_duplicate_texts() {
        let cfg = small_cfg();
        let wl = SnowCloud::generate(&cfg);
        let dup_fraction = |account: &str| {
            let texts: Vec<String> = wl
                .records
                .iter()
                .filter(|r| r.account == account)
                .map(|r| r.normalized_text())
                .collect();
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for t in &texts {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            let dups: usize = counts.values().filter(|&&c| c > 1).copied().sum();
            dups as f64 / texts.len().max(1) as f64
        };
        // acct00/acct01 are the repetitive ones, acct05 is template-only.
        assert!(
            dup_fraction("acct00") > 0.5,
            "acct00 {}",
            dup_fraction("acct00")
        );
        assert!(
            dup_fraction("acct01") > 0.6,
            "acct01 {}",
            dup_fraction("acct01")
        );
    }

    #[test]
    fn repetitive_accounts_dominate_volume() {
        let cfg = SnowCloudConfig::paper_table2(0.02, 3);
        let wl = SnowCloud::generate(&cfg);
        let total = wl.records.len() as f64;
        let big2 = wl
            .records
            .iter()
            .filter(|r| r.account == "acct00" || r.account == "acct01")
            .count() as f64;
        let share = big2 / total;
        assert!(
            (0.5..0.8).contains(&share),
            "top-2 accounts should cover ~65% of volume, got {share}"
        );
    }

    #[test]
    fn users_have_distinct_private_shapes() {
        let cfg = small_cfg();
        let wl = SnowCloud::generate(&cfg);
        // In a non-repetitive account, two different users should mostly
        // produce different normalized texts.
        let texts = |user: &str| -> HashSet<String> {
            wl.records
                .iter()
                .filter(|r| r.user == user)
                .map(|r| r.normalized_text())
                .collect()
        };
        let a = texts("acct05/u00");
        let b = texts("acct05/u01");
        if !a.is_empty() && !b.is_empty() {
            let inter = a.intersection(&b).count();
            assert!(inter <= a.len().min(b.len()) / 2, "users too similar");
        }
    }

    #[test]
    fn all_queries_tokenize_and_parse() {
        let wl = SnowCloud::generate(&small_cfg());
        for r in &wl.records {
            assert!(!r.tokens().is_empty(), "query should tokenize: {}", r.sql);
            let _ = querc_sql::parse_query(&r.sql, querc_sql::Dialect::Generic);
        }
    }

    /// Every generated query — parsed under the *tenant's own dialect* —
    /// yields lineage confined to the tenant's schema: base-table reads
    /// and write targets resolve to known nouns (or their `_staging`
    /// variants), and the new CTE / set-op / dialect-flavored archetypes
    /// actually show up in the stream.
    #[test]
    fn rendered_queries_have_known_lineage() {
        let cfg = SnowCloudConfig::paper_table2(0.02, 9);
        let wl = SnowCloud::generate(&cfg);
        let (mut ctes, mut set_ops, mut qualifies, mut derived) = (0usize, 0usize, 0usize, 0usize);
        for r in &wl.records {
            let d = querc_sql::Dialect::from_name(&r.dialect);
            let shape = querc_sql::parse_query(&r.sql, d);
            let lin = shape.lineage();
            for t in lin.reads.iter().chain(lin.writes.iter()) {
                let last = t.rsplit('.').next().unwrap();
                let base = last.strip_suffix("_staging").unwrap_or(last);
                assert!(
                    NOUNS.contains(&base),
                    "table {t:?} outside tenant schema in {:?}",
                    r.sql
                );
            }
            ctes += usize::from(!lin.ctes.is_empty());
            set_ops += usize::from(shape.set_ops > 0);
            qualifies += usize::from(!shape.qualify.is_empty());
            derived += usize::from(shape.derived_tables > 0);
        }
        assert!(ctes > 0, "no CTE archetype instances generated");
        assert!(set_ops > 0, "no set-op archetype instances generated");
        assert!(qualifies > 0, "no QUALIFY instances generated");
        assert!(derived > 0, "no derived-table instances generated");
    }

    #[test]
    fn errors_exist_and_correlate_with_flaky_templates() {
        let cfg = SnowCloudConfig::paper_table2(0.05, 11);
        let wl = SnowCloud::generate(&cfg);
        let errors = wl.records.iter().filter(|r| r.is_error()).count();
        assert!(errors > 0, "some queries must fail");
        // Resource-exhausted (604) errors cluster on repeated shapes.
        let e604: Vec<&QueryRecord> = wl
            .records
            .iter()
            .filter(|r| r.error_code == Some(604))
            .collect();
        if e604.len() >= 10 {
            let shapes: HashSet<String> = e604
                .iter()
                .map(|r| {
                    // Shape = normalized text with numbers already collapsed.
                    r.normalized_text()
                })
                .collect();
            assert!(
                shapes.len() < e604.len(),
                "604 errors should concentrate on flaky templates"
            );
        }
    }

    #[test]
    fn pretrain_config_generates() {
        let cfg = SnowCloudConfig::pretrain(10, 20, 5);
        let wl = SnowCloud::generate(&cfg);
        assert_eq!(wl.records.len(), 200);
        let accounts: HashSet<&str> = wl.records.iter().map(|r| r.account.as_str()).collect();
        assert_eq!(accounts.len(), 10);
    }

    #[test]
    fn timestamps_are_sorted() {
        let wl = SnowCloud::generate(&small_cfg());
        for w in wl.records.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn clusters_and_dialects_assigned() {
        let wl = SnowCloud::generate(&small_cfg());
        assert!(wl.records.iter().all(|r| r.cluster.starts_with("cluster")));
        let dialects: HashSet<&str> = wl.records.iter().map(|r| r.dialect.as_str()).collect();
        assert!(dialects.len() >= 3, "multiple dialects expected");
    }
}
