//! Integration: the persistence plane end to end — kill-and-restore.
//!
//! A warm `WorkloadManager` (all six apps on one shared embedder, a
//! registry classifier attached to every query) checkpoints to disk;
//! a second process-worth of state is rebuilt with
//! `WorkloadManager::restore` and must serve **bit-identical labels**
//! to the same probe batch, hit the embed cache on its very first
//! post-restore lookups, and resume registry version numbering where
//! the snapshot left off. Torn or flipped bytes must surface as
//! `QuercError::Corrupt` — never a panic, never silently-wrong models.

use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{
    LabeledQuery, ModelRegistry, QuercError, QueryClassifier, TrainedLabeler, WorkloadManager,
    WorkloadManagerConfig,
};
use querc_embed::{BagOfTokens, Embedder};
use querc_learn::{ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::path::PathBuf;
use std::sync::Arc;

/// A synthetic multi-tenant log with structure for every app: two users
/// with distinct habits, two routing clusters, one flaky join shape,
/// and three runtime classes.
fn training_records() -> Vec<QueryRecord> {
    (0..120u64)
        .map(|i| {
            let (user, cluster, sql, ms, err) = match i % 4 {
                0 => (
                    "acct/ana",
                    "bi-cluster",
                    format!("select revenue, region from finance_cube where q = {i} group by region"),
                    400.0,
                    None,
                ),
                1 => (
                    "acct/bo",
                    "etl-cluster",
                    format!("insert into lake_events select * from staging_{}", i % 3),
                    30.0,
                    None,
                ),
                2 => (
                    "acct/ana",
                    "bi-cluster",
                    format!("select v from kv_store where k = {i}"),
                    5.0,
                    None,
                ),
                _ => (
                    "acct/bo",
                    "etl-cluster",
                    format!(
                        "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
                    ),
                    2000.0,
                    (i % 8 != 3).then_some(604),
                ),
            };
            QueryRecord {
                sql,
                user: user.into(),
                account: "acct".into(),
                cluster: cluster.into(),
                dialect: "generic".into(),
                runtime_ms: ms,
                mem_mb: ms / 2.0,
                error_code: err,
                timestamp: i,
            }
        })
        .collect()
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "querc_persist_it_{}_{tag}.snap",
        std::process::id()
    ))
}

/// The four template shapes of the workload, with varying literals.
fn query_for(i: u64) -> LabeledQuery {
    match i % 4 {
        0 => LabeledQuery::new(format!(
            "select revenue, region from finance_cube where q = {i} group by region"
        )),
        1 => LabeledQuery::new(format!(
            "insert into lake_events select * from staging_{}",
            i % 3
        )),
        2 => LabeledQuery::new(format!("select v from kv_store where k = {i}")),
        _ => LabeledQuery::new(format!(
            "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
        )),
    }
}

const APPS: [&str; 6] = [
    "audit",
    "errors",
    "recommend",
    "resources",
    "routing",
    "summarize",
];

/// Register all six apps on ONE shared embedder (the blessed deployment
/// — one cache namespace, one embed per template for everyone).
fn register_all(mgr: &mut WorkloadManager, corpus: &TrainCorpus) -> Arc<dyn Embedder> {
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    mgr.register(AuditApp::new(Arc::clone(&shared)).with_trees(20), corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(
        RecommendApp::new(Arc::clone(&shared)).with_clusters(4),
        corpus,
    )
    .unwrap();
    mgr.register(ResourcesApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(RoutingApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    let summary_cfg = querc::apps::summarize::SummaryConfig {
        k: Some(6),
        ..Default::default()
    };
    mgr.register(
        SummarizeApp::new(Arc::clone(&shared)).with_config(summary_cfg),
        corpus,
    )
    .unwrap();
    shared
}

/// Submit the probe batch (same literals both times — label determinism
/// is the point) tagged so it can be fished out of the drain.
fn submit_probes(mgr: &WorkloadManager) {
    for i in 0..48u64 {
        let app = APPS[(i % 6) as usize];
        let mut lq = query_for(i);
        lq.set("user", if i % 2 == 0 { "acct/ana" } else { "acct/bo" });
        lq.set("probe", i.to_string());
        mgr.submit(app, lq).unwrap();
    }
}

/// One app's probe outputs, sorted by probe id — completion order
/// varies across shard threads, label content must not.
fn probe_outputs(drained: &querc::ServiceDrain, app: &str) -> Vec<LabeledQuery> {
    let mut probes: Vec<LabeledQuery> = drained.outputs[app]
        .iter()
        .filter(|lq| lq.get("probe").is_some())
        .cloned()
        .collect();
    probes.sort_by_key(|lq| lq.get("probe").unwrap().parse::<u64>().unwrap());
    probes
}

#[test]
fn kill_and_restore_serves_bit_identical_labels_with_a_warm_cache() {
    let path = snapshot_path("kill_restore");
    let corpus = TrainCorpus::from_records(training_records(), 0x2019);
    let cfg = WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 16,
        attach_labels: vec!["user".to_string()],
        ..Default::default()
    };

    // ---- Original process: train, deploy, serve warm traffic. ----
    let mut mgr = WorkloadManager::new(cfg.clone());
    // A registry classifier every Qworker attaches — restored managers
    // must be able to resolve it at registration time.
    let mut tm = querc::TrainingModule::new(querc::TrainingConfig::default());
    tm.ingest_records(&corpus.records);
    let emb = tm.train_embedder(&querc::EmbedderKind::BagOfTokens { dim: 64 });
    tm.try_train_and_deploy(mgr.registry(), &emb, "user")
        .unwrap();
    register_all(&mut mgr, &corpus);

    // Warm traffic covering all four templates fills the embed cache.
    for i in 0..96u64 {
        mgr.submit(APPS[(i % 6) as usize], query_for(i)).unwrap();
    }

    // ---- Checkpoint, then keep serving the probe batch. ----
    mgr.checkpoint(&path).unwrap();
    submit_probes(&mgr);
    let before = mgr.drain();

    // ---- "New process": restore and serve the same probes. ----
    let restored = WorkloadManager::restore(&path, cfg.clone()).unwrap();
    assert_eq!(restored.app_names(), APPS, "all six apps came back");
    assert_eq!(
        restored.registry().version("user"),
        Some(1),
        "registry deployment restored at its pinned version"
    );
    for (orig, back) in mgr_reports(&corpus).iter().zip(restored.reports().unwrap()) {
        assert_eq!(orig.app, back.app);
        assert_eq!(
            orig.trained_queries, back.trained_queries,
            "{}: fitted size survives",
            back.app
        );
    }

    submit_probes(&restored);
    let cache = restored.embed_cache_stats();
    assert!(
        cache.hits > 0,
        "first post-restore batch must hit the warmed cache"
    );
    assert_eq!(
        cache.misses, 0,
        "every probe template was cached pre-checkpoint; nothing re-embeds"
    );
    let after = restored.drain();

    // Bit-identical labels, app by app, probe by probe.
    for app in APPS {
        let b = probe_outputs(&before, app);
        let a = probe_outputs(&after, app);
        assert_eq!(b.len(), 8, "{app}: 8 probes each");
        assert_eq!(b, a, "{app}: restored labels must be bit-identical");
    }
    // The restored run attached the registry label too (attach_labels
    // only works if deployments are live before apps register).
    for lq in &after.outputs["resources"] {
        if lq.get("probe").is_some() {
            assert!(lq.get("predicted_user").is_some());
        }
    }

    let _ = std::fs::remove_file(&path);
}

/// Re-fit reports for comparison without holding the first manager
/// alive (reports only depend on the corpus and app set).
fn mgr_reports(corpus: &TrainCorpus) -> Vec<querc::AppReport> {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    register_all(&mut mgr, corpus);
    mgr.reports().unwrap()
}

#[test]
fn checkpoint_delta_appends_vectors_cached_since_the_last_snapshot() {
    let path = snapshot_path("delta");
    let corpus = TrainCorpus::from_records(training_records(), 7);
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
    mgr.register(ResourcesApp::new(Arc::clone(&shared)), &corpus)
        .unwrap();

    // Full snapshot holds only the kv_store template…
    mgr.submit(
        "resources",
        LabeledQuery::new("select v from kv_store where k = 1"),
    )
    .unwrap();
    mgr.checkpoint(&path).unwrap();
    // …then a brand-new template arrives and a delta captures it.
    mgr.submit(
        "resources",
        LabeledQuery::new("select late, arrival from delta_only_shape where id = 9"),
    )
    .unwrap();
    mgr.checkpoint_delta(&path).unwrap();
    // A second delta with no new templates appends nothing (no-op).
    mgr.checkpoint_delta(&path).unwrap();
    drop(mgr.drain());

    let restored = WorkloadManager::restore(&path, WorkloadManagerConfig::default()).unwrap();
    restored
        .submit(
            "resources",
            LabeledQuery::new("select late, arrival from delta_only_shape where id = 77"),
        )
        .unwrap();
    restored
        .submit(
            "resources",
            LabeledQuery::new("select v from kv_store where k = 42"),
        )
        .unwrap();
    let stats = restored.embed_cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (2, 0),
        "both the full-snapshot template and the delta-appended one are warm"
    );
    drop(restored.drain());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn registry_version_history_survives_a_deploy_undeploy_storm() {
    let path = snapshot_path("registry_storm");

    fn classifier(label_name: &str, tag: &str) -> QueryClassifier {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(16, false));
        let vectors = vec![vec![0.0; 16], vec![1.0; 16]];
        let labels = vec![tag, tag];
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &vectors,
            &labels,
            &mut Pcg32::new(1),
        );
        QueryClassifier::new(label_name, embedder, labeler)
    }

    let mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    let reg: &Arc<ModelRegistry> = mgr.registry();
    // The storm: user churns to v3, cluster deploys twice then dies,
    // team deploys once.
    reg.deploy("user", classifier("user", "u1"));
    reg.deploy("user", classifier("user", "u2"));
    reg.deploy("user", classifier("user", "u3"));
    reg.deploy("cluster", classifier("cluster", "c1"));
    reg.deploy("cluster", classifier("cluster", "c2"));
    reg.undeploy("cluster");
    reg.deploy("team", classifier("team", "t1"));
    let history_before = reg.history();
    assert_eq!(history_before.len(), 7);

    mgr.checkpoint(&path).unwrap();
    drop(mgr.drain());

    // Restore with attach_labels pointing at the snapshot's deployments:
    // registration-time resolution must succeed purely from the snapshot.
    let cfg = WorkloadManagerConfig {
        attach_labels: vec!["user".to_string(), "team".to_string()],
        ..Default::default()
    };
    let mut restored = WorkloadManager::restore(&path, cfg).unwrap();
    let corpus = TrainCorpus::from_records(training_records(), 7);
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
    restored
        .register(ResourcesApp::new(shared), &corpus)
        .unwrap();

    let reg = restored.registry();
    assert_eq!(reg.version("user"), Some(3), "pinned, not restarted at 1");
    assert_eq!(reg.version("team"), Some(1));
    assert_eq!(reg.version("cluster"), None, "undeployed stays undeployed");
    assert_eq!(reg.get("user").unwrap().label_sql("select 1"), "u3");
    assert_eq!(reg.history(), history_before, "event log survives verbatim");
    // Post-restore deploys continue the version sequence.
    assert_eq!(reg.deploy("user", classifier("user", "u4")), 4);

    // Attached labels resolve through the restored deployments.
    restored
        .submit(
            "resources",
            LabeledQuery::new("select v from kv_store where k = 1"),
        )
        .unwrap();
    let drained = restored.drain();
    let lq = &drained.outputs["resources"][0];
    assert!(lq.get("predicted_user").is_some());
    assert!(lq.get("predicted_team").is_some());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn sq8_knn_deployments_round_trip_bit_identical() {
    use querc_learn::{Knn, KnnBackend, KnnMetric};

    let path = snapshot_path("sq8_knn");
    let records = training_records();
    let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
    let vectors: Vec<Vec<f32>> = records.iter().map(|r| embedder.embed_sql(&r.sql)).collect();
    let labels: Vec<&str> = records.iter().map(|r| r.user.as_str()).collect();

    // Two SQ8 flavors: re-ranked (exact f32 rows retained) and
    // memory-parity (rerank 0 — only codes survive the snapshot).
    let reranked = Knn::new(3, KnnMetric::Cosine).with_backend(KnnBackend::Sq8 {
        nlist: 4,
        nprobe: 4,
        rerank_factor: 2,
    });
    let codes_only = Knn::new(3, KnnMetric::Euclidean).with_backend(KnnBackend::Sq8 {
        nlist: 0,
        nprobe: 1,
        rerank_factor: 0,
    });

    let mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    for (name, knn) in [("sq8_rerank", reranked), ("sq8_codes", codes_only)] {
        let labeler = TrainedLabeler::train(knn, &vectors, &labels, &mut Pcg32::new(0x508));
        mgr.registry().deploy(
            name,
            QueryClassifier::new(name, Arc::clone(&embedder), labeler),
        );
    }
    mgr.checkpoint(&path).unwrap();

    let probe_labels = |m: &WorkloadManager, name: &str| -> Vec<String> {
        let clf = m.registry().get(name).unwrap();
        (0..32u64)
            .map(|i| clf.label_sql(&query_for(i).sql))
            .collect()
    };
    let before_rerank = probe_labels(&mgr, "sq8_rerank");
    let before_codes = probe_labels(&mgr, "sq8_codes");
    drop(mgr.drain());

    let restored = WorkloadManager::restore(&path, WorkloadManagerConfig::default()).unwrap();
    assert_eq!(
        probe_labels(&restored, "sq8_rerank"),
        before_rerank,
        "re-ranked SQ8 deployment must label bit-identically after restore"
    );
    assert_eq!(
        probe_labels(&restored, "sq8_codes"),
        before_codes,
        "codes-only SQ8 deployment must label bit-identically after restore"
    );
    drop(restored.drain());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_and_truncated_snapshots_report_corrupt_never_panic() {
    let path = snapshot_path("corrupt");
    let corpus = TrainCorpus::from_records(training_records(), 7);
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig::default());
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
    mgr.register(ResourcesApp::new(Arc::clone(&shared)), &corpus)
        .unwrap();
    mgr.submit(
        "resources",
        LabeledQuery::new("select v from kv_store where k = 1"),
    )
    .unwrap();
    mgr.checkpoint(&path).unwrap();
    drop(mgr.drain());

    let pristine = std::fs::read(&path).unwrap();
    // Sanity: the pristine copy restores.
    WorkloadManager::restore(&path, WorkloadManagerConfig::default()).unwrap();

    // A single flipped bit anywhere in the body must be caught by a
    // section CRC (or the header/footer parsers) and reported.
    for at in [
        0,
        pristine.len() / 3,
        pristine.len() / 2,
        pristine.len() - 2,
    ] {
        let mut torn = pristine.clone();
        torn[at] ^= 0x40;
        std::fs::write(&path, &torn).unwrap();
        let err = match WorkloadManager::restore(&path, WorkloadManagerConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("byte {at}: flipped byte must not restore"),
        };
        assert!(
            matches!(err, QuercError::Corrupt { .. }),
            "byte {at}: want Corrupt, got {err:?}"
        );
    }

    // Truncation at any depth: a torn tail is Corrupt, not a panic.
    for keep in [1, pristine.len() / 4, pristine.len() - 1] {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        let err = match WorkloadManager::restore(&path, WorkloadManagerConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("keep {keep}: truncated snapshot must not restore"),
        };
        assert!(
            matches!(err, QuercError::Corrupt { .. }),
            "keep {keep}: want Corrupt, got {err:?}"
        );
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn qos_policies_round_trip_and_pre_qos_snapshots_still_restore() {
    use querc::{QosConfig, QuercError, RateLimit, RejectReason, TenantPolicy};
    let corpus = TrainCorpus::from_records(training_records(), 0x2019);
    let qos_cfg = WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 16,
        qos: QosConfig::enabled(),
        ..Default::default()
    };

    // ---- QoS-active manager: serve, install a policy, checkpoint. ----
    let path = snapshot_path("qos_roundtrip");
    let mut mgr = WorkloadManager::new(qos_cfg.clone());
    register_all(&mut mgr, &corpus);
    mgr.set_tenant_policy(
        "whale",
        TenantPolicy {
            weight: 3,
            rate: Some(RateLimit {
                rate_per_sec: 0.0,
                burst: 2.0,
            }),
        },
    );
    for i in 0..24u64 {
        let mut lq = query_for(i);
        lq.set("account", "acct");
        mgr.submit(APPS[(i % 6) as usize], lq).unwrap();
    }
    mgr.checkpoint(&path).unwrap();
    drop(mgr.drain());

    // ---- Restore with QoS on: the policy must be back in force. ----
    let restored = WorkloadManager::restore(&path, qos_cfg.clone()).unwrap();
    assert_eq!(restored.app_names(), APPS);
    // The whale's zero-refill bucket was restored with burst 2: exactly
    // two admits, then RateLimited — proof the policy survived the trip.
    for i in 0..4u64 {
        let mut lq = query_for(i);
        lq.set("account", "whale");
        let got = restored.submit("resources", lq);
        if i < 2 {
            got.unwrap_or_else(|e| panic!("whale admit {i} within burst: {e}"));
        } else {
            match got {
                Err(QuercError::Rejected { tenant, reason }) => {
                    assert_eq!(tenant, "whale");
                    assert_eq!(reason, RejectReason::RateLimited);
                }
                other => panic!("whale over burst must be Rejected, got {other:?}"),
            }
        }
    }
    let drained = restored.drain();
    let whale = &drained.qos.tenants["whale"];
    assert_eq!(whale.weight, 3, "DRR weight restored");
    assert_eq!((whale.processed, whale.rejected_rate_limited), (2, 2));

    // ---- A QoS snapshot also restores into a QoS-disabled manager
    //      (the section is simply ignored — additive, no version bump).
    let plain = WorkloadManager::restore(&path, WorkloadManagerConfig::default()).unwrap();
    assert_eq!(plain.app_names(), APPS);
    let mut lq = query_for(0);
    lq.set("account", "whale");
    plain.submit("resources", lq).unwrap();
    plain.submit("resources", query_for(1)).unwrap();
    plain.submit("resources", query_for(2)).unwrap();
    let plain_drained = plain.drain();
    assert_eq!(plain_drained.outputs["resources"].len(), 3);
    assert!(
        plain_drained.qos.tenants.is_empty(),
        "QoS accounting stays off when the config says off"
    );
    let _ = std::fs::remove_file(&path);

    // ---- Pre-QoS-shaped snapshot (written with QoS off, so no "qos"
    //      section) restores into a QoS-enabled manager cleanly. ----
    let old_path = snapshot_path("qos_pre");
    let mut old = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 16,
        ..Default::default()
    });
    register_all(&mut old, &corpus);
    for i in 0..12u64 {
        old.submit(APPS[(i % 6) as usize], query_for(i)).unwrap();
    }
    old.checkpoint(&old_path).unwrap();
    drop(old.drain());

    let upgraded = WorkloadManager::restore(&old_path, qos_cfg).unwrap();
    assert_eq!(upgraded.app_names(), APPS, "pre-QoS snapshot restores");
    for i in 0..12u64 {
        let mut lq = query_for(i);
        lq.set("account", "acct");
        upgraded.submit(APPS[(i % 6) as usize], lq).unwrap();
    }
    let up = upgraded.drain();
    let acct = &up.qos.tenants["acct"];
    assert_eq!(
        (acct.submitted, acct.processed, acct.rejected()),
        (12, 12, 0),
        "QoS accounting live on a restored pre-QoS stack"
    );
    let _ = std::fs::remove_file(&old_path);
}
