//! Security auditing by user prediction (paper §5.2 / §4).
//!
//! Trains a `query → user` classifier over a multi-tenant workload, then
//! audits a stream containing an injected compromise: one account's
//! credentials suddenly issuing another user's habitual queries.
//!
//! Run with: `cargo run --release --example security_audit`

use querc::apps::audit::{per_account_accuracy, SecurityAuditor};
use querc_embed::{LstmAutoencoder, LstmConfig, VocabConfig};
use querc_linalg::Pcg32;
use querc_workloads::record::split_holdout;
use querc_workloads::{SnowCloud, SnowCloudConfig};
use std::sync::Arc;

fn main() {
    // A small multi-tenant workload with labeled users.
    let wl = SnowCloud::generate(&SnowCloudConfig::paper_table2(0.02, 99));
    let mut rng = Pcg32::new(5);
    let (train, test) = split_holdout(&wl.records, 0.3, &mut rng);
    println!(
        "workload: {} train / {} test queries",
        train.len(),
        test.len()
    );

    // Embedder trained on the same service's traffic.
    let corpus: Vec<Vec<String>> = train.iter().map(|r| r.tokens()).collect();
    let embedder: Arc<dyn querc_embed::Embedder> = Arc::new(LstmAutoencoder::train(
        &corpus,
        LstmConfig {
            embed_dim: 24,
            hidden: 32,
            epochs: 2,
            vocab: VocabConfig {
                min_count: 2,
                max_size: 10_000,
                hash_buckets: 256,
            },
            ..Default::default()
        },
    ));

    let auditor = SecurityAuditor::train(&train, embedder, 30, 17);

    // Per-account accuracy — Table 2's view of the same model.
    println!("\nper-account user-prediction accuracy (held out):");
    for row in per_account_accuracy(&auditor, &test).iter().take(6) {
        println!(
            "  {:<8} {:>5} queries {:>3} users  {:>5.1}%",
            row.account,
            row.queries,
            row.users,
            row.accuracy * 100.0
        );
    }

    // Inject a compromise: take a victim user from a high-accuracy tail
    // account and replay another account's query under their name.
    let victim = test
        .iter()
        .find(|r| r.account == "acct05")
        .map(|r| r.user.clone())
        .unwrap_or_else(|| test[0].user.clone());
    let foreign_sql = test
        .iter()
        .find(|r| r.account == "acct07")
        .map(|r| r.sql.clone())
        .unwrap_or_else(|| "select * from somewhere_else".into());

    println!("\ninjected audit scenario:");
    let verdict = auditor.audit(&foreign_sql, &victim);
    println!(
        "  user `{victim}` submitted: {}",
        &foreign_sql[..foreign_sql.len().min(80)]
    );
    println!(
        "  predicted author: `{}` — {}",
        verdict.predicted_user,
        if verdict.flagged {
            "FLAGGED for audit"
        } else {
            "passed"
        }
    );
}
