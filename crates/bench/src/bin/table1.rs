//! **Table 1** — account- and user-labeling accuracy (10-fold CV) for the
//! two embedders over the SnowCloud workload.
//!
//! Paper numbers for orientation (absolute values are testbed-specific):
//!
//! |                  | account | user  |
//! |------------------|---------|-------|
//! | Doc2Vec          | 78.8%   | 39.0% |
//! | LSTM autoencoder | 99.1%   | 55.4% |
//!
//! Expected shape: LSTM beats Doc2Vec on both tasks; account labeling is
//! near-perfect for the LSTM (schema vocabulary leaks the tenant); user
//! labeling is much harder everywhere (shared verbatim queries make many
//! users indistinguishable — see Table 2).

use querc_bench::harness;
use querc_learn::{cross_val_accuracy, ForestConfig, RandomForest};
use querc_linalg::Pcg32;

fn main() {
    println!("== Table 1: query labeling accuracy (10-fold CV) ==");
    println!("seed = {:#x}, scale = {}", harness::SEED, harness::scale());

    // Embedders pre-trained on the separate pre-training workload
    // (the paper's "pre-trained on 500000 Snowflake queries").
    let pretrain = harness::snowcloud_pretrain_corpus();
    eprintln!("pretraining corpus: {} queries", pretrain.len());
    eprintln!("training doc2vec…");
    let doc2vec = querc_embed::Doc2Vec::train(&pretrain, harness::doc2vec_config());
    eprintln!("training lstm autoencoder…");
    let lstm = querc_embed::LstmAutoencoder::train(&pretrain, harness::lstm_config());

    // The labeled evaluation workload (the paper's separate 200k labeled
    // queries; Table 2's account mix at reproduction scale).
    let labeled = harness::snowcloud_labeled(0.025);
    let records = &labeled.records;
    eprintln!(
        "labeled workload: {} queries, {} accounts, {} users",
        records.len(),
        distinct(records.iter().map(|r| r.account.as_str())),
        distinct(records.iter().map(|r| r.user.as_str())),
    );

    let tokenized: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
    let account_labels: Vec<&str> = records.iter().map(|r| r.account.as_str()).collect();
    let user_labels: Vec<&str> = records.iter().map(|r| r.user.as_str()).collect();

    let embedders: Vec<(&str, &dyn querc_embed::Embedder)> =
        vec![("Doc2Vec", &doc2vec), ("LSTMAutoencoder", &lstm)];

    println!(
        "\n{:>18} {:>16} {:>14}",
        "", "account labeling", "user labeling"
    );
    let mut scores = std::collections::HashMap::new();
    for (name, embedder) in &embedders {
        eprintln!("embedding {} queries with {name}…", tokenized.len());
        let vectors = querc_embed::embed_corpus(*embedder, &tokenized);
        let acc_account = cv_score(&vectors, &account_labels, 0x7b1);
        let acc_user = cv_score(&vectors, &user_labels, 0x7b2);
        println!("{name:>18} {acc_account:>15.1}% {acc_user:>13.1}%");
        scores.insert((*name, "account"), acc_account);
        scores.insert((*name, "user"), acc_user);
    }

    // ---- shape checks ----------------------------------------------------
    println!("\nshape checks:");
    let mut ok = true;
    let d2v_a = scores[&("Doc2Vec", "account")];
    let d2v_u = scores[&("Doc2Vec", "user")];
    let lstm_a = scores[&("LSTMAutoencoder", "account")];
    let lstm_u = scores[&("LSTMAutoencoder", "user")];
    ok &= harness::check(
        "LSTM beats Doc2Vec on account labeling",
        lstm_a > d2v_a,
        format!("{lstm_a:.1}% vs {d2v_a:.1}%"),
    );
    ok &= harness::check(
        "LSTM beats Doc2Vec on user labeling",
        lstm_u > d2v_u,
        format!("{lstm_u:.1}% vs {d2v_u:.1}%"),
    );
    ok &= harness::check(
        "LSTM account labeling is near-perfect",
        lstm_a > 90.0,
        format!("{lstm_a:.1}%"),
    );
    ok &= harness::check(
        "user labeling is much harder than account labeling",
        lstm_u < lstm_a - 20.0 && d2v_u < d2v_a - 15.0,
        format!(
            "gaps: lstm {:.1} pts, doc2vec {:.1} pts",
            lstm_a - lstm_u,
            d2v_a - d2v_u
        ),
    );
    harness::finish(ok);
}

/// Pooled 10-fold CV accuracy (%) with the paper's randomized-tree
/// classifier.
fn cv_score(vectors: &[Vec<f32>], labels: &[&str], salt: u64) -> f64 {
    let (map, ids) = querc::LabelMap::from_labels(labels.iter().copied());
    let mut rng = Pcg32::with_stream(harness::SEED ^ salt, 0x7ab1);
    let (score, _) = cross_val_accuracy(vectors, &ids, map.len(), 10, &mut rng, || {
        RandomForest::new(ForestConfig::extra_trees(80))
    });
    score * 100.0
}

fn distinct<'a, I: Iterator<Item = &'a str>>(it: I) -> usize {
    it.collect::<std::collections::HashSet<_>>().len()
}
