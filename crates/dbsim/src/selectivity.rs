//! Predicate selectivity estimation — the optimizer's guess and reality.
//!
//! `estimate` implements the classical textbook rules (uniformity over
//! `[min, max]`, `1/ndv` equality, magic constants for LIKE and HAVING);
//! `truth` applies the catalog's skew multipliers and HAVING truths on top.
//! Everything downstream (optimizer, advisor, runtime) is built on this
//! pair, so the cardinality-misestimation phenomena of §5.1 arise
//! mechanistically rather than by special-casing queries.

use crate::catalog::{Catalog, ColumnStats};
use querc_sql::ast::{CmpOp, Lhs, Predicate, Rhs};

/// Optimizer guess for a LIKE predicate.
pub const LIKE_EST_SEL: f64 = 0.05;
/// Optimizer guess for an IN (subquery) / = (subquery) predicate.
pub const SUBQUERY_EST_SEL: f64 = 0.005;
/// Optimizer guess for a HAVING aggregate comparison.
pub const HAVING_EST_SEL: f64 = 0.005;
/// Optimizer guess when nothing is known (parameters, opaque predicates).
pub const DEFAULT_EST_SEL: f64 = 0.10;
/// Floor/ceiling so selectivities stay usable.
const SEL_MIN: f64 = 1e-7;

fn clamp(s: f64) -> f64 {
    s.clamp(SEL_MIN, 1.0)
}

/// Selectivity of `col op value` under the uniformity assumption.
fn range_sel(stats: &ColumnStats, op: CmpOp, v: f64, v2: Option<f64>) -> f64 {
    let span = (stats.max - stats.min).max(f64::EPSILON);
    match op {
        CmpOp::Eq => 1.0 / stats.ndv as f64,
        CmpOp::Ne => 1.0 - 1.0 / stats.ndv as f64,
        CmpOp::Lt | CmpOp::Le => (v - stats.min) / span,
        CmpOp::Gt | CmpOp::Ge => (stats.max - v) / span,
        CmpOp::Between => match v2 {
            Some(hi) => (hi - v) / span,
            None => DEFAULT_EST_SEL,
        },
        _ => DEFAULT_EST_SEL,
    }
}

/// The optimizer's estimated selectivity of one predicate against a table.
pub fn estimate(catalog: &Catalog, table: &str, pred: &Predicate) -> f64 {
    let sel = match (&pred.lhs, pred.op) {
        (Lhs::Agg { .. }, _) => HAVING_EST_SEL,
        (Lhs::Column(_), CmpOp::Exists) => SUBQUERY_EST_SEL,
        (Lhs::Column(col), op) => {
            let stats = catalog.column(table, &col.column);
            match (&pred.rhs, stats) {
                (Rhs::Subquery, _) => SUBQUERY_EST_SEL,
                (Rhs::Param, Some(s)) if op == CmpOp::Eq => 1.0 / s.ndv as f64,
                (Rhs::Param, _) => DEFAULT_EST_SEL,
                (Rhs::List(n), Some(s)) => (*n as f64 / s.ndv as f64).min(1.0),
                (Rhs::List(n), None) => (*n as f64 * DEFAULT_EST_SEL).min(1.0),
                (_, Some(s)) => match op {
                    CmpOp::Like => LIKE_EST_SEL,
                    CmpOp::IsNull => 0.01,
                    CmpOp::IsNotNull => 0.99,
                    _ => match pred.rhs.numeric() {
                        Some(v) => {
                            let v2 = pred.rhs2.as_ref().and_then(Rhs::numeric);
                            range_sel(s, op, v, v2)
                        }
                        // String equality on a categorical column: 1/ndv.
                        None if op == CmpOp::Eq => 1.0 / s.ndv as f64,
                        None => DEFAULT_EST_SEL,
                    },
                },
                (_, None) => match op {
                    CmpOp::Like => LIKE_EST_SEL,
                    _ => DEFAULT_EST_SEL,
                },
            }
        }
    };
    let sel = if pred.negated { 1.0 - sel } else { sel };
    clamp(sel)
}

/// The *true* selectivity the runtime charges: the estimate corrected by
/// the catalog's skew multiplier (range/equality on skewed columns) and
/// HAVING truths.
pub fn truth(catalog: &Catalog, table: &str, pred: &Predicate) -> f64 {
    match &pred.lhs {
        Lhs::Agg { func, column } => {
            if let Some(col) = column {
                if let Some(t) = catalog.having_truth(func, &col.column) {
                    return clamp(t);
                }
            }
            clamp(HAVING_EST_SEL)
        }
        Lhs::Column(col) => {
            let est = estimate(catalog, table, pred);
            let skew = catalog
                .column(table, &col.column)
                .map(|s| s.skew)
                .unwrap_or(1.0);
            clamp(est * skew)
        }
    }
}

/// Is this a plain-column range predicate with a numeric bound (the kind
/// an interval intersection can merge)?
fn range_bound(pred: &Predicate) -> Option<(String, CmpOp, f64, Option<f64>)> {
    if pred.negated || pred.in_or {
        return None;
    }
    let Lhs::Column(col) = &pred.lhs else {
        return None;
    };
    let v = pred.rhs.numeric()?;
    match pred.op {
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            Some((col.column.clone(), pred.op, v, None))
        }
        CmpOp::Between => {
            let hi = pred.rhs2.as_ref().and_then(Rhs::numeric);
            Some((col.column.clone(), pred.op, v, hi))
        }
        _ => None,
    }
}

/// Combined selectivity of a set of predicates on ONE column: range
/// predicates intersect as an interval (so `x >= lo AND x < hi` is priced
/// as the window width, not the independence product), everything else
/// multiplies. Returns `(est, true)`.
pub fn column_sel(catalog: &Catalog, table: &str, preds: &[&Predicate]) -> (f64, f64) {
    let stats = preds
        .first()
        .and_then(|p| p.column())
        .and_then(|c| catalog.column(table, &c.column));
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut have_interval = false;
    let mut est_other = 1.0;
    let mut tru_other = 1.0;
    for p in preds {
        match range_bound(p) {
            Some((_, CmpOp::Lt | CmpOp::Le, v, _)) => {
                hi = hi.min(v);
                have_interval = true;
            }
            Some((_, CmpOp::Gt | CmpOp::Ge, v, _)) => {
                lo = lo.max(v);
                have_interval = true;
            }
            Some((_, CmpOp::Between, v, Some(v2))) => {
                lo = lo.max(v);
                hi = hi.min(v2);
                have_interval = true;
            }
            _ => {
                est_other *= estimate(catalog, table, p);
                tru_other *= truth(catalog, table, p);
            }
        }
    }
    let (mut est, mut tru) = (est_other, tru_other);
    if have_interval {
        let (interval_est, interval_tru) = match stats {
            Some(s) => {
                let span = (s.max - s.min).max(f64::EPSILON);
                let lo_c = lo.max(s.min);
                let hi_c = hi.min(s.max);
                let frac = ((hi_c - lo_c) / span).max(0.0);
                (frac, (frac * s.skew).min(1.0))
            }
            None => (DEFAULT_EST_SEL, DEFAULT_EST_SEL),
        };
        est *= interval_est;
        tru *= interval_tru;
    }
    (clamp(est), clamp(tru))
}

/// Combined selectivity of a conjunction over a table: predicates are
/// grouped per column (interval intersection within a column), then the
/// per-column selectivities multiply under the independence assumption.
/// Returns `(est, true)`.
pub fn conjunction(catalog: &Catalog, table: &str, preds: &[&Predicate]) -> (f64, f64) {
    use std::collections::BTreeMap;
    let mut by_col: BTreeMap<String, Vec<&Predicate>> = BTreeMap::new();
    let mut est = 1.0;
    let mut tru = 1.0;
    for p in preds {
        match (&p.lhs, range_bound(p)) {
            (Lhs::Column(c), Some(_)) => by_col.entry(c.column.clone()).or_default().push(p),
            _ => {
                est *= estimate(catalog, table, p);
                tru *= truth(catalog, table, p);
            }
        }
    }
    for (_, group) in by_col {
        let (e, t) = column_sel(catalog, table, &group);
        est *= e;
        tru *= t;
    }
    (clamp(est), clamp(tru))
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_sql::ast::ColumnRef;

    fn pred(column: &str, op: CmpOp, rhs: Rhs) -> Predicate {
        Predicate {
            lhs: Lhs::Column(ColumnRef::new(None, column)),
            op,
            rhs,
            rhs2: None,
            negated: false,
            in_or: false,
        }
    }

    #[test]
    fn equality_is_one_over_ndv() {
        let c = Catalog::tpch_sf1();
        let p = pred("c_mktsegment", CmpOp::Eq, Rhs::Str("BUILDING".into()));
        let s = estimate(&c, "customer", &p);
        assert!((s - 0.2).abs() < 1e-9, "5 segments → 0.2, got {s}");
    }

    #[test]
    fn range_uses_uniform_domain() {
        let c = Catalog::tpch_sf1();
        // l_quantity uniform on [1, 50]; `< 25` keeps ~49%.
        let p = pred("l_quantity", CmpOp::Lt, Rhs::Number(25.0));
        let s = estimate(&c, "lineitem", &p);
        assert!((s - 24.0 / 49.0).abs() < 0.01, "{s}");
    }

    #[test]
    fn date_ranges_work_from_parsed_text() {
        let c = Catalog::tpch_sf1();
        let shape = querc_sql::parse_query(
            "select * from orders where o_orderdate >= date '1995-01-01' and o_orderdate < date '1996-01-01'",
            querc_sql::Dialect::Generic,
        );
        let preds: Vec<&Predicate> = shape.predicates.iter().collect();
        let (est, _) = conjunction(&c, "orders", &preds);
        // One year of seven: ~14% squared-ish under independence… the two
        // bounds multiply: (len-3y)/len * 1y-ish/len. Just sanity-bound it.
        assert!(est > 0.01 && est < 0.30, "{est}");
    }

    #[test]
    fn between_selectivity() {
        let c = Catalog::tpch_sf1();
        let mut p = pred("l_quantity", CmpOp::Between, Rhs::Number(10.0));
        p.rhs2 = Some(Rhs::Number(20.0));
        let s = estimate(&c, "lineitem", &p);
        assert!((s - 10.0 / 49.0).abs() < 0.01, "{s}");
    }

    #[test]
    fn negation_complements() {
        let c = Catalog::tpch_sf1();
        let mut p = pred("c_mktsegment", CmpOp::Eq, Rhs::Str("BUILDING".into()));
        p.negated = true;
        let s = estimate(&c, "customer", &p);
        assert!((s - 0.8).abs() < 1e-9, "{s}");
    }

    #[test]
    fn having_estimate_vs_truth_wedge() {
        let c = Catalog::tpch_sf1();
        let having = Predicate {
            lhs: Lhs::Agg {
                func: "sum".into(),
                column: Some(ColumnRef::new(None, "l_quantity")),
            },
            op: CmpOp::Gt,
            rhs: Rhs::Number(313.0),
            rhs2: None,
            negated: false,
            in_or: false,
        };
        let est = estimate(&c, "lineitem", &having);
        let tru = truth(&c, "lineitem", &having);
        assert!(est <= 0.01, "optimizer guesses tiny: {est}");
        assert!(tru >= 0.1, "reality keeps much more: {tru}");
        assert!(tru / est > 10.0, "the wedge must be large");
    }

    #[test]
    fn skewed_column_inflates_truth() {
        let mut c = Catalog::new();
        c.add_table("t", 1000, 100);
        c.add_column(
            "t",
            "x",
            crate::catalog::ColumnStats::new(100, 0.0, 100.0).with_skew(8.0),
        );
        let p = pred("x", CmpOp::Eq, Rhs::Number(5.0));
        assert!((estimate(&c, "t", &p) - 0.01).abs() < 1e-9);
        assert!((truth(&c, "t", &p) - 0.08).abs() < 1e-9);
    }

    #[test]
    fn unknown_columns_fall_back_to_defaults() {
        let c = Catalog::tpch_sf1();
        let p = pred("mystery_col", CmpOp::Gt, Rhs::Number(0.0));
        assert_eq!(estimate(&c, "lineitem", &p), DEFAULT_EST_SEL);
    }

    #[test]
    fn selectivities_always_in_unit_interval() {
        let c = Catalog::tpch_sf1();
        // Out-of-domain constants must clamp, not explode.
        for v in [-1e9, 0.0, 1e9] {
            for op in [CmpOp::Lt, CmpOp::Gt, CmpOp::Eq] {
                let p = pred("l_quantity", op, Rhs::Number(v));
                let e = estimate(&c, "lineitem", &p);
                let t = truth(&c, "lineitem", &p);
                assert!((0.0..=1.0).contains(&e));
                assert!((0.0..=1.0).contains(&t));
            }
        }
    }

    #[test]
    fn in_list_scales_with_length() {
        let c = Catalog::tpch_sf1();
        let p2 = pred("l_shipmode", CmpOp::In, Rhs::List(2));
        let p7 = pred("l_shipmode", CmpOp::In, Rhs::List(7));
        let s2 = estimate(&c, "lineitem", &p2);
        let s7 = estimate(&c, "lineitem", &p7);
        assert!((s2 - 2.0 / 7.0).abs() < 1e-9);
        assert!((s7 - 1.0).abs() < 1e-9);
    }
}
