//! First-order optimizers over flat parameter slices.
//!
//! Models register each parameter tensor as a *slot* (an index returned by
//! [`Optimizer::register`]); every training step then calls
//! [`Optimizer::step`] with the slot, the parameter slice and its gradient.
//! Keeping optimizer state keyed by slot keeps the models free of any
//! optimizer-specific bookkeeping and makes swapping SGD↔Adam a one-line
//! change in the trainer.

/// Common interface for the optimizers in this crate.
pub trait Optimizer {
    /// Register a parameter tensor of `len` scalars, returning its slot id.
    fn register(&mut self, len: usize) -> usize;

    /// Apply one update: `params -= f(grad)` for the optimizer's rule.
    ///
    /// `params` and `grad` must both have the length the slot was
    /// registered with.
    fn step(&mut self, slot: usize, params: &mut [f32], grad: &[f32]);

    /// Current base learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the base learning rate (for schedules / linear decay).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain SGD with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Momentum-free SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum coefficient `momentum` (typically 0.9).
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn register(&mut self, len: usize) -> usize {
        self.velocity.push(vec![0.0; len]);
        self.velocity.len() - 1
    }

    fn step(&mut self, slot: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        if self.momentum == 0.0 {
            crate::ops::axpy(-self.lr, grad, params);
            return;
        }
        let v = &mut self.velocity[slot];
        assert_eq!(
            v.len(),
            params.len(),
            "slot registered with a different length"
        );
        for i in 0..params.len() {
            v[i] = self.momentum * v[i] - self.lr * grad[i];
            params[i] += v[i];
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad: per-coordinate learning rates from accumulated squared grads.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<Vec<f32>>,
}

impl Adagrad {
    pub fn new(lr: f32) -> Self {
        Adagrad {
            lr,
            eps: 1e-8,
            accum: Vec::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn register(&mut self, len: usize) -> usize {
        self.accum.push(vec![0.0; len]);
        self.accum.len() - 1
    }

    fn step(&mut self, slot: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        let acc = &mut self.accum[slot];
        for i in 0..params.len() {
            acc[i] += grad[i] * grad[i];
            params[i] -= self.lr * grad[i] / (acc[i].sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: Vec<u64>,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn register(&mut self, len: usize) -> usize {
        self.m.push(vec![0.0; len]);
        self.v.push(vec![0.0; len]);
        self.t.push(0);
        self.m.len() - 1
    }

    fn step(&mut self, slot: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        self.t[slot] += 1;
        let t = self.t[slot] as f32;
        let (m, v) = (&mut self.m[slot], &mut self.v[slot]);
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..params.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 from x = 0 and require convergence.
    fn converges<O: Optimizer>(mut opt: O, iters: usize, tol: f32) {
        let slot = opt.register(1);
        let mut x = [0.0f32];
        for _ in 0..iters {
            let grad = [2.0 * (x[0] - 3.0)];
            opt.step(slot, &mut x, &grad);
        }
        assert!((x[0] - 3.0).abs() < tol, "converged to {}", x[0]);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(Sgd::new(0.1), 200, 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        converges(Sgd::with_momentum(0.05, 0.9), 400, 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        converges(Adagrad::new(0.5), 2000, 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges(Adam::new(0.1), 1000, 1e-2);
    }

    #[test]
    fn adam_converges_on_rosenbrock_ish() {
        // Coupled 2-D objective: f = (1-a)^2 + 5 (b - a^2)^2.
        let mut opt = Adam::new(0.02);
        let slot = opt.register(2);
        let mut p = [0.0f32, 0.0];
        for _ in 0..8000 {
            let (a, b) = (p[0], p[1]);
            let grad = [
                -2.0 * (1.0 - a) - 20.0 * a * (b - a * a),
                10.0 * (b - a * a),
            ];
            opt.step(slot, &mut p, &grad);
        }
        assert!((p[0] - 1.0).abs() < 0.05, "a = {}", p[0]);
        assert!((p[1] - 1.0).abs() < 0.1, "b = {}", p[1]);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Adam::new(0.1);
        let s1 = opt.register(1);
        let s2 = opt.register(1);
        let mut x1 = [0.0f32];
        let mut x2 = [0.0f32];
        for _ in 0..500 {
            let g1 = [2.0 * (x1[0] - 1.0)];
            let g2 = [2.0 * (x2[0] + 1.0)];
            opt.step(s1, &mut x1, &g1);
            opt.step(s2, &mut x2, &g2);
        }
        assert!((x1[0] - 1.0).abs() < 0.05);
        assert!((x2[0] + 1.0).abs() < 0.05);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    fn zero_gradient_is_fixed_point() {
        let mut opt = Adam::new(0.1);
        let slot = opt.register(3);
        let mut x = [1.0f32, -2.0, 0.5];
        let before = x;
        opt.step(slot, &mut x, &[0.0, 0.0, 0.0]);
        for (a, b) in x.iter().zip(&before) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
