//! Versioned model registry — the "Model Deployment" arrow of Fig 1.
//!
//! The training module deploys classifiers here; Qworkers resolve them by
//! name on each batch. Deployments are atomic swaps of `Arc`s behind a
//! `parking_lot` RwLock, so serving threads never block on retrains.

use crate::classifier::QueryClassifier;
use crate::error::{QuercError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A named, versioned store of deployed classifiers.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, (u64, Arc<QueryClassifier>)>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy (or replace) a classifier under `name`; returns the new
    /// version number (1 for first deployment).
    pub fn deploy(&self, name: &str, classifier: QueryClassifier) -> u64 {
        let mut inner = self.inner.write();
        let version = inner.get(name).map(|(v, _)| v + 1).unwrap_or(1);
        inner.insert(name.to_string(), (version, Arc::new(classifier)));
        version
    }

    /// Resolve the current classifier for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<QueryClassifier>> {
        self.inner.read().get(name).map(|(_, c)| Arc::clone(c))
    }

    /// Like [`ModelRegistry::get`] but reports the miss as a
    /// [`QuercError::ModelNotDeployed`] — for serving paths that treat a
    /// missing deployment as an error rather than an option.
    pub fn resolve(&self, name: &str) -> Result<Arc<QueryClassifier>> {
        self.get(name).ok_or_else(|| QuercError::ModelNotDeployed {
            name: name.to_string(),
        })
    }

    /// Current version of `name`, if deployed.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.inner.read().get(name).map(|(v, _)| *v)
    }

    /// Names of all deployed classifiers, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a deployment.
    pub fn undeploy(&self, name: &str) -> bool {
        self.inner.write().remove(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainedLabeler;
    use querc_embed::{BagOfTokens, Embedder};
    use querc_learn::{ForestConfig, RandomForest};
    use querc_linalg::Pcg32;

    fn dummy_classifier(tag: &str) -> QueryClassifier {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(16, false));
        let vectors = vec![vec![0.0; 16], vec![1.0; 16]];
        let labels = vec![tag, tag];
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(2)),
            &vectors,
            &labels,
            &mut Pcg32::new(1),
        );
        QueryClassifier::new("tag", embedder, labeler)
    }

    #[test]
    fn deploy_bumps_versions() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.deploy("user", dummy_classifier("a")), 1);
        assert_eq!(reg.deploy("user", dummy_classifier("b")), 2);
        assert_eq!(reg.version("user"), Some(2));
        assert_eq!(reg.version("other"), None);
    }

    #[test]
    fn get_returns_latest() {
        let reg = ModelRegistry::new();
        reg.deploy("user", dummy_classifier("a"));
        let before = reg.get("user").unwrap();
        reg.deploy("user", dummy_classifier("b"));
        let after = reg.get("user").unwrap();
        // Old Arc still usable (serving threads mid-batch), new one served.
        assert_eq!(before.label_sql("select 1"), "a");
        assert_eq!(after.label_sql("select 1"), "b");
    }

    #[test]
    fn resolve_reports_missing_deployments() {
        use crate::error::QuercError;
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.resolve("ghost"),
            Err(QuercError::ModelNotDeployed { .. })
        ));
        reg.deploy("user", dummy_classifier("a"));
        assert!(reg.resolve("user").is_ok());
    }

    #[test]
    fn names_and_undeploy() {
        let reg = ModelRegistry::new();
        reg.deploy("b", dummy_classifier("x"));
        reg.deploy("a", dummy_classifier("y"));
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.undeploy("a"));
        assert!(!reg.undeploy("a"));
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn concurrent_reads_during_deploys() {
        let reg = Arc::new(ModelRegistry::new());
        reg.deploy("user", dummy_classifier("a"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let c = r.get("user").expect("always deployed");
                    let _ = c.label_sql("select 1");
                }
            }));
        }
        for i in 0..20 {
            reg.deploy("user", dummy_classifier(if i % 2 == 0 { "a" } else { "b" }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.version("user"), Some(21));
    }
}
