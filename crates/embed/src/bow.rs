//! Hashed bag-of-tokens embedder — the non-neural baseline.
//!
//! The paper's §6 cites bag-of-words among the non-neural representations
//! known to underperform learned embeddings; we keep one as a fast,
//! training-free baseline for ablation benches. Tokens (and, optionally,
//! bigrams) are hashed into a fixed number of dimensions with a signed
//! hashing trick, then L2-normalized.

use crate::embedder::Embedder;
use serde::{Deserialize, Serialize};

/// Training-free hashed bag-of-tokens representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BagOfTokens {
    dim: usize,
    /// Include adjacent-token bigrams for a little word-order signal.
    bigrams: bool,
}

impl BagOfTokens {
    /// `dim` must be positive; 256 is a reasonable default.
    pub fn new(dim: usize, bigrams: bool) -> Self {
        assert!(dim > 0);
        BagOfTokens { dim, bigrams }
    }

    fn add_feature(&self, out: &mut [f32], feature: &str) {
        let h = fnv1a(feature);
        let idx = (h >> 1) as usize % self.dim;
        // One hash bit decides the sign: keeps collisions unbiased.
        let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
        out[idx] += sign;
    }

    /// Fill `out` with the embedding of `tokens`, reusing `joined` as the
    /// bigram scratch buffer so a batch pays one allocation, not one per
    /// adjacent token pair.
    fn embed_into(&self, tokens: &[String], out: &mut [f32], joined: &mut String) {
        out.fill(0.0);
        for t in tokens {
            self.add_feature(out, t);
        }
        if self.bigrams {
            for pair in tokens.windows(2) {
                joined.clear();
                joined.push_str(&pair[0]);
                joined.push('\u{1}');
                joined.push_str(&pair[1]);
                self.add_feature(out, joined);
            }
        }
        querc_linalg::ops::normalize(out);
    }
}

impl Embedder for BagOfTokens {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        let mut joined = String::new();
        self.embed_into(tokens, &mut out, &mut joined);
        out
    }

    fn name(&self) -> &'static str {
        "bow"
    }

    /// Folds the bigram flag on top of the (name, dim) default: a
    /// bigram and a unigram model of the same width embed differently,
    /// so they must never share cache entries.
    fn cache_namespace(&self) -> u64 {
        crate::embedder::namespace_fold(
            crate::embedder::namespace_fold(
                crate::embedder::namespace_of(self.name()),
                self.dim() as u64,
            ),
            self.bigrams as u64 + 1,
        )
    }

    fn export_spec(&self) -> Option<(&'static str, String)> {
        crate::io::to_json(self).ok().map(|j| (self.name(), j))
    }

    /// Batched path: fixed-size chunks fan out across the compute pool,
    /// each amortizing one bigram scratch buffer. Signed hashing is a
    /// pure per-document function, so the merged batch is bit-identical
    /// to the sequential loop at any thread count.
    fn embed_batch(&self, docs: &[Vec<String>]) -> Vec<Vec<f32>> {
        const CHUNK: usize = 32;
        let n_chunks = docs.len().div_ceil(CHUNK);
        let parts = querc_linalg::ComputePool::current().map(n_chunks, |chunk| {
            let lo = chunk * CHUNK;
            let hi = (lo + CHUNK).min(docs.len());
            let mut joined = String::new();
            docs[lo..hi]
                .iter()
                .map(|doc| {
                    let mut out = vec![0.0f32; self.dim];
                    self.embed_into(doc, &mut out, &mut joined);
                    out
                })
                .collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_linalg::ops::{cosine, norm};

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn deterministic_and_unit_norm() {
        let e = BagOfTokens::new(64, true);
        let a = e.embed(&toks("select a from t"));
        let b = e.embed(&toks("select a from t"));
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn word_overlap_drives_similarity() {
        let e = BagOfTokens::new(128, false);
        let q1 = e.embed(&toks("select a from orders where x = <num>"));
        let q2 = e.embed(&toks("select b from orders where x = <num>"));
        let q3 = e.embed(&toks("insert into logs values <str>"));
        assert!(cosine(&q1, &q2) > cosine(&q1, &q3));
    }

    #[test]
    fn bigrams_add_order_sensitivity() {
        let no_bi = BagOfTokens::new(128, false);
        let bi = BagOfTokens::new(128, true);
        let fwd = toks("a b c");
        let rev = toks("c b a");
        // Without bigrams a permutation embeds identically…
        assert_eq!(no_bi.embed(&fwd), no_bi.embed(&rev));
        // …with bigrams it does not.
        assert_ne!(bi.embed(&fwd), bi.embed(&rev));
    }

    #[test]
    fn embed_batch_is_bit_identical_to_embed() {
        let e = BagOfTokens::new(64, true);
        let docs = vec![
            toks("select a from t where x = <num>"),
            toks(""),
            toks("insert into logs values <str>"),
        ];
        let batch = e.embed_batch(&docs);
        for (doc, v) in docs.iter().zip(&batch) {
            assert_eq!(*v, e.embed(doc));
        }
    }

    #[test]
    fn empty_input_is_zero_vector() {
        let e = BagOfTokens::new(32, true);
        let z = e.embed(&[]);
        assert_eq!(z, vec![0.0; 32]);
    }
}
