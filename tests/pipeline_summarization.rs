//! Integration: the full §5.1 pipeline across crates.
//!
//! workload generation (querc-workloads) → tokenization (querc-sql) →
//! embedding (querc-embed) → clustering (querc-cluster) → summarization
//! (querc) → advisor + runtime (querc-dbsim).

use querc::apps::summarize::{summarize_workload, SummaryConfig, SummaryMethod};
use querc_dbsim::{workload_runtime, Advisor, AdvisorConfig, Catalog};
use querc_embed::{Doc2Vec, Doc2VecConfig, VocabConfig};
use querc_workloads::TpchWorkload;

fn small_doc2vec(corpus: &[Vec<String>]) -> Doc2Vec {
    Doc2Vec::train(
        corpus,
        Doc2VecConfig {
            dim: 24,
            epochs: 10,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 4000,
                hash_buckets: 128,
            },
            ..Default::default()
        },
    )
}

#[test]
fn summarized_workload_recommends_helpful_indexes() {
    let workload = TpchWorkload::generate(8, 1234);
    let sqls = workload.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());
    let baseline = workload_runtime(&sqls, &catalog, &[]);

    let corpus: Vec<Vec<String>> = sqls.iter().map(|s| querc_embed::sql_tokens(s)).collect();
    let embedder = small_doc2vec(&corpus);
    let witnesses = summarize_workload(
        &sqls,
        &SummaryMethod::Embedding(&embedder),
        &SummaryConfig {
            k: None,
            k_min: 8,
            k_max: 26,
            plateau: 0.01,
            seed: 3,
        },
    );
    assert!(
        witnesses.len() >= 8 && witnesses.len() <= 26,
        "summary size {} out of range",
        witnesses.len()
    );

    let summary: Vec<&str> = witnesses.iter().map(|&i| sqls[i]).collect();
    let report = advisor.recommend(&summary, 600.0);
    assert!(
        !report.indexes.is_empty(),
        "advisor must recommend something"
    );

    let with = workload_runtime(&sqls, &catalog, &report.indexes);
    assert!(
        with < baseline,
        "summary-derived indexes must help the FULL workload: {with:.0} vs {baseline:.0}"
    );
}

#[test]
fn summary_beats_equal_budget_full_workload_under_tight_budget() {
    let workload = TpchWorkload::generate(38, 77);
    let sqls = workload.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());

    let corpus: Vec<Vec<String>> = sqls.iter().map(|s| querc_embed::sql_tokens(s)).collect();
    let embedder = small_doc2vec(&corpus);
    let witnesses = summarize_workload(
        &sqls,
        &SummaryMethod::Embedding(&embedder),
        &SummaryConfig {
            k: Some(20),
            ..Default::default()
        },
    );
    let summary: Vec<&str> = witnesses.iter().map(|&i| sqls[i]).collect();

    // Tight budget just above the advisor overhead: the paper's 3-minute
    // point.
    let budget = 185.0;
    let from_summary = advisor.recommend(&summary, budget);
    let from_full = advisor.recommend(&sqls, budget);
    let rt_summary = workload_runtime(&sqls, &catalog, &from_summary.indexes);
    let rt_full = workload_runtime(&sqls, &catalog, &from_full.indexes);
    assert!(
        rt_summary < rt_full,
        "at tight budgets the summary must win: {rt_summary:.0} vs {rt_full:.0}"
    );
}

#[test]
fn syntactic_baseline_also_produces_usable_summaries() {
    let workload = TpchWorkload::generate(6, 9);
    let sqls = workload.sql();
    let witnesses = summarize_workload(
        &sqls,
        &SummaryMethod::SyntacticKMedoids,
        &SummaryConfig {
            k: Some(15),
            ..Default::default()
        },
    );
    assert!(!witnesses.is_empty() && witnesses.len() <= 15);
    // Medoid summaries are actual workload members.
    assert!(witnesses.iter().all(|&i| i < sqls.len()));
}
