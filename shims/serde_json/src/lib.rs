//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! shim's JSON model. Provides exactly the entry points the workspace
//! uses: `to_string`, `from_str`, and the `Error` type.

pub use serde::json::{Error, Value};

/// Serialize a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::deserialize_json(&v)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        name: String,
        xs: Vec<f32>,
        flag: Option<u16>,
        on: bool,
    }

    #[test]
    fn derive_roundtrip() {
        let d = Demo {
            name: "a\"b".into(),
            xs: vec![1.5, -0.25, 3.0000002],
            flag: None,
            on: true,
        };
        let s = super::to_string(&d).unwrap();
        let back: Demo = super::from_str(&s).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn f32_exact_roundtrip() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.1).sin() / 3.0).collect();
        let s = super::to_string(&xs).unwrap();
        let back: Vec<f32> = super::from_str(&s).unwrap();
        assert_eq!(xs, back);
    }
}
