//! Per-kernel throughput ratios on an L1-resident (compute-bound)
//! working set — the kmeans/doc2vec inner-loop shape.
//!
//! The committed `BENCH_train.json` reports end-to-end fit times; this
//! probe isolates the kernel layer so a regression (or a new arm) can
//! be attributed to `sq_dist_block` / `dot_gather` / `axpy` directly,
//! free of tokenizing and RNG overhead. Rows × dim is kept ≤ 32 KiB so
//! every arm is measured at compute bound, not memory bandwidth.
//!
//! Run with `cargo run --release -p querc-linalg --example kernel_ratio`.

use querc_linalg::kernel::{self, Kernel};
use querc_linalg::Pcg32;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let mut arms = vec![Kernel::Scalar];
    if kernel::avx2_available() {
        arms.push(Kernel::Avx2);
    }
    if kernel::avx512_available() {
        arms.push(Kernel::Avx512);
    }

    let mut rng = Pcg32::new(1);
    for dim in [64usize, 128] {
        let rows = 64usize; // centroid-block shape: rows*dim*4 ≤ 32 KiB
        let data: Vec<f32> = (0..rows * dim).map(|_| rng.normal()).collect();
        let q: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        let ids: Vec<usize> = (0..rows).collect();
        let mut out = vec![0.0f32; rows];
        let iters = 100_000usize;

        for &arm in &arms {
            let k = kernel::set_kernel_override(Some(arm));

            let t = Instant::now();
            for _ in 0..iters {
                kernel::sq_dist_block_with(k, &q, &data, dim, &mut out);
            }
            let sq_ms = t.elapsed().as_secs_f64() * 1e3;
            black_box(&out);

            let t = Instant::now();
            for _ in 0..iters {
                kernel::dot_gather_with(k, &q, &data, dim, &ids, &mut out);
            }
            let gather_ms = t.elapsed().as_secs_f64() * 1e3;
            black_box(&out);

            let t = Instant::now();
            let mut v = vec![0.0f32; dim];
            for _ in 0..iters {
                for r in 0..rows {
                    kernel::axpy_with(k, 0.001, &data[r * dim..(r + 1) * dim], &mut v);
                }
            }
            let axpy_ms = t.elapsed().as_secs_f64() * 1e3;
            black_box(&v);

            println!(
                "dim {dim:>3} {:>6}: sq_block {:7.1}ms  gather {:7.1}ms  axpy {:7.1}ms",
                k.name(),
                sq_ms,
                gather_ms,
                axpy_ms
            );
            kernel::set_kernel_override(None);
        }
    }
}
