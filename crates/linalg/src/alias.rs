//! Walker alias method for O(1) sampling from discrete distributions.
//!
//! Negative sampling in Doc2Vec and the sampled-softmax loss of the LSTM
//! autoencoder both need millions of draws from the unigram^0.75 noise
//! distribution; the alias table makes each draw two random numbers and one
//! table lookup.

use crate::rng::Pcg32;

/// Precomputed alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build a table from non-negative weights (not necessarily normalized).
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );

        // Scaled probabilities; each cell targets mass 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Build from raw counts raised to `power` — the word2vec noise
    /// distribution uses `power = 0.75`.
    pub fn from_counts_pow(counts: &[u64], power: f64) -> Self {
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(power)).collect();
        AliasTable::new(&weights)
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let i = rng.below_usize(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = Pcg32::new(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_uniform_weights() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 100_000, 7);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn matches_skewed_weights() {
        let w = [8.0, 1.0, 1.0];
        let freq = empirical(&w, 200_000, 11);
        assert!((freq[0] - 0.8).abs() < 0.01);
        assert!((freq[1] - 0.1).abs() < 0.01);
        assert!((freq[2] - 0.1).abs() < 0.01);
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let freq = empirical(&[0.0, 1.0, 0.0, 3.0], 50_000, 13);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = Pcg32::new(17);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn counts_pow_flattens_distribution() {
        // With power < 1 the head should lose relative mass vs raw counts.
        let counts = [1000u64, 10];
        let raw = empirical(&[1000.0, 10.0], 100_000, 19);
        let table = AliasTable::from_counts_pow(&counts, 0.75);
        let mut rng = Pcg32::new(19);
        let mut c = [0usize; 2];
        for _ in 0..100_000 {
            c[table.sample(&mut rng)] += 1;
        }
        let flat_head = c[0] as f64 / 100_000.0;
        assert!(flat_head < raw[0], "pow 0.75 should shrink the head");
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn large_table_is_consistent() {
        let weights: Vec<f64> = (1..=500).map(|i| i as f64).collect();
        let freq = empirical(&weights, 500_000, 23);
        let total: f64 = weights.iter().sum();
        // Spot-check head and tail.
        assert!((freq[499] - 500.0 / total).abs() < 0.002);
        assert!((freq[0] - 1.0 / total).abs() < 0.002);
    }
}
