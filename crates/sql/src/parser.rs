//! A best-effort, total, lightweight SQL parser.
//!
//! The parser extracts a [`QueryShape`] — tables, join edges, predicates,
//! grouping — from arbitrary SQL text. It is *not* a validating parser: the
//! goal is to recover as much structure as possible from any input and skip
//! what it cannot interpret, because (a) Querc must ingest every dialect,
//! and (b) the simulator's optimizer only consumes the recovered facts.
//!
//! The grammar subset understood precisely covers the TPC-H templates and
//! the synthetic SnowCloud workloads: SELECT with joined/comma FROM lists
//! (nested join groups and derived tables included), WHERE conjunctions
//! (ORs detected and flagged), BETWEEN/IN/LIKE/IS NULL, date and interval
//! arithmetic on literals, GROUP BY / HAVING with aggregate comparisons,
//! QUALIFY, ORDER BY, LIMIT/TOP/FETCH, chained and parenthesized set
//! operations, chained/nested CTEs, the BigQuery `SELECT * EXCEPT(…)`
//! modifier, MySQL `STRAIGHT_JOIN`, and the DML/DDL statement kinds.
//!
//! Recursion is bounded by [`MAX_PARSE_DEPTH`]: beyond it the parser
//! skips balanced token groups instead of descending, so adversarial
//! nesting degrades recovered detail, never the stack.
//!
//! Under `cfg(test)` or the `coverage` feature, every grammar production
//! the parser takes bumps a counter in the `coverage` module, which is how the
//! conformance corpus proves what it exercises.

use crate::ast::{
    AggCall, CmpOp, ColumnRef, JoinEdge, Lhs, Predicate, QueryShape, Rhs, StatementKind, TableRef,
};
use crate::dialect::Dialect;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Maximum statement/condition nesting the parser descends into. Deeper
/// structure is skipped as an opaque balanced group — parsing stays
/// total and the stack stays bounded on adversarial input like
/// `"(".repeat(1 << 20)`.
pub const MAX_PARSE_DEPTH: usize = 32;

/// Parse one SQL statement into its structural shape. Never fails.
pub fn parse_query(sql: &str, dialect: Dialect) -> QueryShape {
    let tokens = tokenize(sql, dialect);
    let mut shape = QueryShape {
        token_count: tokens.len(),
        ..Default::default()
    };
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
    };
    p.parse_statement(&mut shape, 0);
    shape
}

/// Per-production hit counters: which grammar paths a test corpus
/// actually exercises. Compiled only for tests and the `coverage`
/// feature; the production build carries no counters.
#[cfg(any(test, feature = "coverage"))]
pub mod coverage {
    use std::sync::atomic::{AtomicU64, Ordering};

    macro_rules! productions {
        ($($name:ident,)*) => {
            /// One grammar production the parser can take.
            #[derive(Debug, Clone, Copy, PartialEq, Eq)]
            #[allow(non_camel_case_types, missing_docs)]
            pub enum Production { $($name,)* }

            /// Names of all productions, index-aligned with the counters.
            pub const NAMES: &[&str] = &[$(stringify!($name),)*];

            /// Number of productions.
            pub const COUNT: usize = NAMES.len();
        };
    }

    productions! {
        stmt_wrapped,
        stmt_with,
        stmt_select,
        stmt_insert,
        stmt_update,
        stmt_delete,
        stmt_create_table,
        stmt_create_view,
        stmt_create_other,
        stmt_drop,
        stmt_copy,
        stmt_show,
        stmt_set,
        stmt_other,
        cte_def,
        cte_chain,
        cte_recursive,
        select_distinct,
        select_top,
        select_except_modifier,
        select_scalar_subquery,
        select_agg,
        from_clause,
        from_table,
        from_comma,
        from_derived,
        from_nested_join,
        join_inner,
        join_outer,
        join_cross,
        join_natural,
        join_straight,
        join_on,
        join_using,
        where_clause,
        group_by,
        group_rollup,
        having_clause,
        qualify_clause,
        order_by,
        limit_clause,
        offset_clause,
        fetch_clause,
        setop_union,
        setop_intersect,
        setop_except,
        setop_paren_operand,
        cond_group,
        cond_exists,
        cond_is_null,
        cond_between,
        cond_in_list,
        cond_in_subquery,
        cond_like,
        cond_cmp_join_edge,
        cond_cmp_literal,
        cond_cmp_flipped,
        cond_cmp_subquery,
        cond_recover,
        cond_or,
        term_case,
        term_cast,
        term_interval,
        term_date_literal,
        term_interval_arith,
        term_numeric_fold,
        term_param,
        term_string,
        term_number,
        term_neg_number,
        term_func_call,
        term_column,
        term_null,
        term_bool,
        term_agg,
        term_paren_expr,
        term_subquery,
        depth_limit,
    }

    static HITS: [AtomicU64; COUNT] = [const { AtomicU64::new(0) }; COUNT];

    /// Record one hit of `p` (relaxed; counters are process-global).
    pub fn hit(p: Production) {
        HITS[p as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of `(production name, hit count)` pairs.
    pub fn snapshot() -> Vec<(&'static str, u64)> {
        NAMES
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, HITS[i].load(Ordering::Relaxed)))
            .collect()
    }

    /// Fraction of productions with at least one hit, plus the names of
    /// the ones never taken.
    pub fn coverage() -> (f64, Vec<&'static str>) {
        let snap = snapshot();
        let missed: Vec<&'static str> = snap
            .iter()
            .filter(|(_, c)| *c == 0)
            .map(|(n, _)| *n)
            .collect();
        let frac = (COUNT - missed.len()) as f64 / COUNT as f64;
        (frac, missed)
    }

    /// Zero every counter (tests that need an isolated measurement).
    pub fn reset() {
        for h in &HITS {
            h.store(0, Ordering::Relaxed);
        }
    }
}

/// Bump a production counter in test/coverage builds; free otherwise.
macro_rules! prod {
    ($p:ident) => {
        #[cfg(any(test, feature = "coverage"))]
        coverage::hit(coverage::Production::$p);
    };
}

const AGG_FUNCS: &[&str] = &["avg", "count", "max", "min", "stddev", "sum", "variance"];

fn is_agg(name: &str) -> bool {
    AGG_FUNCS.contains(&name.to_ascii_lowercase().as_str())
}

/// Keywords that terminate a clause at paren depth 0.
const CLAUSE_STARTERS: &[&str] = &[
    "group",
    "having",
    "order",
    "limit",
    "offset",
    "fetch",
    "union",
    "intersect",
    "except",
    "window",
    "qualify",
    "where",
    "from",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_clause_boundary(&self) -> bool {
        match self.peek() {
            None => true,
            Some(t) => {
                t.is_punct(';')
                    || t.is_punct(')')
                    || (t.kind == TokenKind::Keyword
                        && CLAUSE_STARTERS
                            .iter()
                            .any(|k| t.text.eq_ignore_ascii_case(k)))
            }
        }
    }

    /// Skip a balanced parenthesized group. A no-op unless the current
    /// token is `(`, so a misplaced call can never underflow the depth
    /// counter.
    fn skip_balanced(&mut self) {
        if !self.eat_punct('(') {
            return;
        }
        let mut depth = 1usize;
        while let Some(t) = self.bump() {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    fn parse_statement(&mut self, shape: &mut QueryShape, depth: usize) {
        if depth > MAX_PARSE_DEPTH {
            // Caller consumes the enclosing balanced group; we record that
            // detail was given up rather than descending further.
            prod!(depth_limit);
            if shape.kind.is_none() {
                shape.kind = Some(StatementKind::Other);
            }
            return;
        }
        // Leading parens around the whole statement: remember how many so
        // their closers — and any set operation chained after them, as in
        // `(SELECT ..) UNION SELECT ..` — are still consumed.
        let mut wrapped = 0usize;
        while self.eat_punct('(') {
            wrapped += 1;
        }
        if wrapped > 0 {
            prod!(stmt_wrapped);
        }
        let Some(first) = self.peek() else {
            return;
        };
        if first.kind != TokenKind::Keyword {
            shape.kind = Some(StatementKind::Other);
            prod!(stmt_other);
            return;
        }
        let word = first.text.to_ascii_lowercase();
        match word.as_str() {
            "with" => {
                prod!(stmt_with);
                self.pos += 1;
                self.parse_ctes(shape, depth);
                self.parse_statement(shape, depth + 1);
            }
            "select" => {
                prod!(stmt_select);
                shape.kind = Some(StatementKind::Select);
                self.parse_select_body(shape, depth);
            }
            "insert" => {
                prod!(stmt_insert);
                shape.kind = Some(StatementKind::Insert);
                self.pos += 1;
                self.eat_kw("into");
                if let Some(tref) = self.parse_table_ref() {
                    shape.write_target = Some(tref.name.clone());
                    shape.tables.push(tref);
                }
                // INSERT ... SELECT captures the select's structure too.
                self.skip_until_kw_depth0(&["select", "values"]);
                if self.peek().is_some_and(|t| t.is_kw("select")) {
                    self.parse_select_body(shape, depth);
                    shape.kind = Some(StatementKind::Insert);
                }
            }
            "update" => {
                prod!(stmt_update);
                shape.kind = Some(StatementKind::Update);
                self.pos += 1;
                if let Some(tref) = self.parse_table_ref() {
                    shape.write_target = Some(tref.name.clone());
                    shape.tables.push(tref);
                }
                self.skip_until_kw_depth0(&["where"]);
                if self.eat_kw("where") {
                    let mut ctx = CondCtx::default();
                    self.parse_or(shape, &mut ctx, depth);
                    shape.predicates.extend(ctx.predicates);
                }
            }
            "delete" => {
                prod!(stmt_delete);
                shape.kind = Some(StatementKind::Delete);
                self.pos += 1;
                self.eat_kw("from");
                if let Some(tref) = self.parse_table_ref() {
                    shape.write_target = Some(tref.name.clone());
                    shape.tables.push(tref);
                }
                self.skip_until_kw_depth0(&["where"]);
                if self.eat_kw("where") {
                    let mut ctx = CondCtx::default();
                    self.parse_or(shape, &mut ctx, depth);
                    shape.predicates.extend(ctx.predicates);
                }
            }
            "create" => {
                self.pos += 1;
                // Skip OR REPLACE / TEMPORARY etc.
                while self
                    .peek()
                    .is_some_and(|t| t.kind == TokenKind::Keyword || t.kind == TokenKind::Ident)
                {
                    if self.peek().is_some_and(|t| t.is_kw("table")) {
                        shape.kind = Some(StatementKind::CreateTable);
                        self.pos += 1;
                        break;
                    }
                    if self.peek().is_some_and(|t| t.is_kw("view")) {
                        shape.kind = Some(StatementKind::CreateView);
                        self.pos += 1;
                        break;
                    }
                    if self.peek().is_some_and(|t| t.is_kw("index")) {
                        shape.kind = Some(StatementKind::Other);
                        self.pos += 1;
                        break;
                    }
                    self.pos += 1;
                }
                match shape.kind {
                    Some(StatementKind::CreateTable) => {
                        prod!(stmt_create_table);
                    }
                    Some(StatementKind::CreateView) => {
                        prod!(stmt_create_view);
                    }
                    _ => {
                        prod!(stmt_create_other);
                    }
                }
                if shape.kind.is_none() {
                    shape.kind = Some(StatementKind::Other);
                }
                if let Some(tref) = self.parse_table_ref() {
                    shape.write_target = Some(tref.name.clone());
                    shape.tables.push(tref);
                }
                // CREATE TABLE/VIEW ... AS SELECT keeps the inner structure.
                self.skip_until_kw_depth0(&["select", "with"]);
                if self
                    .peek()
                    .is_some_and(|t| t.is_kw("select") || t.is_kw("with"))
                {
                    let kind = shape.kind;
                    self.parse_statement(shape, depth + 1);
                    shape.kind = kind;
                }
            }
            "drop" => {
                prod!(stmt_drop);
                shape.kind = Some(StatementKind::Drop);
                self.pos += 1;
                self.bump(); // object class
                if let Some(tref) = self.parse_table_ref() {
                    shape.write_target = Some(tref.name.clone());
                    shape.tables.push(tref);
                }
            }
            "copy" => {
                prod!(stmt_copy);
                shape.kind = Some(StatementKind::Copy);
                self.pos += 1;
                if let Some(tref) = self.parse_table_ref() {
                    shape.write_target = Some(tref.name.clone());
                    shape.tables.push(tref);
                }
            }
            "show" => {
                prod!(stmt_show);
                shape.kind = Some(StatementKind::Show);
            }
            "set" | "use" => {
                prod!(stmt_set);
                shape.kind = Some(StatementKind::Set);
            }
            _ => {
                prod!(stmt_other);
                shape.kind = Some(StatementKind::Other);
            }
        }
        // Unwind statement-level parens, picking up set operations that
        // chain after a parenthesized operand. Progress is required each
        // round so unbalanced input can't loop.
        while wrapped > 0 {
            let before = self.pos;
            while wrapped > 0 && self.eat_punct(')') {
                wrapped -= 1;
            }
            if matches!(shape.kind, Some(StatementKind::Select)) {
                self.parse_set_ops(shape, depth);
            }
            if self.pos == before {
                break;
            }
        }
    }

    fn parse_ctes(&mut self, shape: &mut QueryShape, depth: usize) {
        if self.eat_kw("recursive") {
            prod!(cte_recursive);
        }
        let mut defined = 0usize;
        // name [ (cols) ] AS ( select )
        while let Some(t) = self.peek() {
            if !matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                break;
            }
            let name = t.ident_name().to_ascii_lowercase();
            self.pos += 1;
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                self.skip_balanced();
            }
            if !self.eat_kw("as") {
                break;
            }
            shape.cte_names.push(name);
            defined += 1;
            prod!(cte_def);
            if defined > 1 {
                prod!(cte_chain);
            }
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                // Parse the CTE body as a subquery for structure.
                self.pos += 1;
                let mut inner = QueryShape::default();
                self.parse_statement(&mut inner, depth + 1);
                merge_subquery(shape, inner);
                // Consume up to the matching close paren.
                let mut d = 1usize;
                while let Some(t) = self.bump() {
                    if t.is_punct('(') {
                        d += 1;
                    } else if t.is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                }
            }
            if !self.eat_punct(',') {
                break;
            }
        }
    }

    fn skip_until_kw_depth0(&mut self, kws: &[&str]) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0
                && t.kind == TokenKind::Keyword
                && kws.iter().any(|k| t.text.eq_ignore_ascii_case(k))
            {
                return;
            }
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return;
            }
            self.pos += 1;
        }
    }

    fn parse_select_body(&mut self, shape: &mut QueryShape, depth: usize) {
        self.parse_select_core(shape, depth);
        self.parse_set_ops(shape, depth);
    }

    /// Chain of UNION/INTERSECT/EXCEPT operands after a select body. Bare
    /// operands are parsed iteratively so arbitrarily long chains never
    /// grow the stack; parenthesized operands recurse with a depth bump.
    fn parse_set_ops(&mut self, shape: &mut QueryShape, depth: usize) {
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_kw("union") {
                prod!(setop_union);
            } else if t.is_kw("intersect") {
                prod!(setop_intersect);
            } else if t.is_kw("except") {
                prod!(setop_except);
            } else {
                return;
            }
            self.pos += 1;
            self.eat_kw("all");
            self.eat_kw("distinct");
            shape.set_ops += 1;
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                // Parenthesized operand — may nest further set ops.
                prod!(setop_paren_operand);
                self.pos += 1;
                let mut rhs = QueryShape::default();
                self.parse_statement(&mut rhs, depth + 1);
                merge_sibling(shape, rhs);
                let mut d = 1usize;
                while let Some(t) = self.bump() {
                    if t.is_punct('(') {
                        d += 1;
                    } else if t.is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                }
            } else if self.peek().is_some_and(|t| t.is_kw("select")) {
                let mut rhs = QueryShape {
                    kind: Some(StatementKind::Select),
                    ..Default::default()
                };
                self.parse_select_core(&mut rhs, depth);
                merge_sibling(shape, rhs);
            } else {
                return;
            }
        }
    }

    /// One SELECT block, excluding any trailing set operations.
    fn parse_select_core(&mut self, shape: &mut QueryShape, depth: usize) {
        if !self.eat_kw("select") {
            return;
        }
        if self.eat_kw("distinct") {
            prod!(select_distinct);
            shape.distinct = true;
        } else {
            self.eat_kw("all");
        }
        if self.eat_kw("top") {
            prod!(select_top);
            if let Some(t) = self.peek() {
                if t.kind == TokenKind::Number {
                    shape.limit = t.text.parse().ok();
                    self.pos += 1;
                }
            }
        }
        self.parse_select_list(shape, depth);
        if self.eat_kw("from") {
            prod!(from_clause);
            self.parse_from(shape, depth);
        }
        if self.eat_kw("where") {
            prod!(where_clause);
            let mut ctx = CondCtx::default();
            self.parse_or(shape, &mut ctx, depth);
            shape.predicates.extend(ctx.predicates);
        }
        if self.eat_kw("group") {
            prod!(group_by);
            self.eat_kw("by");
            self.parse_column_list(&mut shape.group_by);
        }
        if self.eat_kw("having") {
            prod!(having_clause);
            let mut ctx = CondCtx::default();
            self.parse_or(shape, &mut ctx, depth);
            shape.having.extend(ctx.predicates);
        }
        if self.eat_kw("qualify") {
            // Snowflake/BigQuery window filter. The condition usually
            // involves a window call; when nothing sargable survives we
            // still record a sentinel so the clause is visible in the
            // shape (and its count in the feature vector).
            prod!(qualify_clause);
            let before = self.pos;
            let mut ctx = CondCtx::default();
            self.parse_or(shape, &mut ctx, depth);
            if ctx.predicates.is_empty() && self.pos > before {
                ctx.predicates.push(Predicate {
                    lhs: Lhs::Column(ColumnRef::new(None, "<window>")),
                    op: CmpOp::Eq,
                    rhs: Rhs::None,
                    rhs2: None,
                    negated: false,
                    in_or: false,
                });
            }
            shape.qualify.extend(ctx.predicates);
        }
        if self.eat_kw("order") {
            prod!(order_by);
            self.eat_kw("by");
            self.parse_column_list(&mut shape.order_by);
            // ASC/DESC/NULLS handled inside parse_column_list skips.
        }
        loop {
            if self.eat_kw("limit") {
                prod!(limit_clause);
                if let Some(t) = self.peek() {
                    if t.kind == TokenKind::Number {
                        shape.limit = t.text.parse().ok();
                        self.pos += 1;
                    }
                }
            } else if self.eat_kw("offset") {
                prod!(offset_clause);
                if self.peek().is_some_and(|t| t.kind == TokenKind::Number) {
                    self.pos += 1;
                }
                self.eat_kw("rows");
                self.eat_kw("row");
            } else if self.eat_kw("fetch") {
                prod!(fetch_clause);
                // FETCH FIRST n ROWS ONLY
                self.eat_kw("first");
                self.eat_kw("next");
                if let Some(t) = self.peek() {
                    if t.kind == TokenKind::Number {
                        shape.limit = t.text.parse().ok();
                        self.pos += 1;
                    }
                }
                self.eat_kw("rows");
                self.eat_kw("row");
                // ONLY is lexed as Ident (not in keyword list); skip it.
                if self
                    .peek()
                    .is_some_and(|t| t.text.eq_ignore_ascii_case("only"))
                {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Count select-list items and record aggregate calls.
    fn parse_select_list(&mut self, shape: &mut QueryShape, depth: usize) {
        let mut items = 0usize;
        let mut depth_parens = 0usize;
        let mut saw_any = false;
        while let Some(t) = self.peek() {
            if depth_parens == 0 {
                if t.is_kw("from") || t.is_punct(';') {
                    break;
                }
                if t.is_kw("union") || t.is_kw("intersect") {
                    // FROM-less select followed by a set operation.
                    break;
                }
                if t.is_kw("except") {
                    if self.peek_at(1).is_some_and(|n| n.is_punct('('))
                        && !self
                            .peek_at(2)
                            .is_some_and(|n| n.is_kw("select") || n.is_kw("with"))
                    {
                        // BigQuery `SELECT * EXCEPT(cols)` projection
                        // modifier — drop the excluded column list.
                        prod!(select_except_modifier);
                        self.pos += 1;
                        self.skip_balanced();
                        continue;
                    }
                    break;
                }
                if t.is_punct(',') {
                    items += 1;
                    self.pos += 1;
                    continue;
                }
            }
            saw_any = true;
            if t.is_punct('(') {
                // Could be a scalar subquery in the select list.
                if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                    prod!(select_scalar_subquery);
                    self.pos += 1;
                    let mut inner = QueryShape::default();
                    self.parse_statement(&mut inner, depth + 1);
                    merge_subquery(shape, inner);
                    let mut d = 1usize;
                    while let Some(t) = self.bump() {
                        if t.is_punct('(') {
                            d += 1;
                        } else if t.is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                    }
                    continue;
                }
                depth_parens += 1;
                self.pos += 1;
                continue;
            }
            if t.is_punct(')') {
                depth_parens = depth_parens.saturating_sub(1);
                self.pos += 1;
                continue;
            }
            // Aggregate call?
            if (t.kind == TokenKind::Ident || t.kind == TokenKind::Keyword)
                && is_agg(&t.text)
                && self.peek_at(1).is_some_and(|n| n.is_punct('('))
            {
                prod!(select_agg);
                let func = t.text.to_ascii_lowercase();
                self.pos += 2; // func (
                let distinct = self.eat_kw("distinct");
                let column = self.try_column_ref();
                shape.aggregates.push(AggCall {
                    func,
                    column,
                    distinct,
                });
                // Consume the rest of the call.
                let mut d = 1usize;
                while let Some(t) = self.peek() {
                    if t.is_punct('(') {
                        d += 1;
                    } else if t.is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    self.pos += 1;
                }
                continue;
            }
            self.pos += 1;
        }
        if saw_any {
            items += 1;
        }
        shape.projections = items;
    }

    /// Parse a dotted table name with optional alias.
    fn parse_table_ref(&mut self) -> Option<TableRef> {
        let t = self.peek()?;
        if !matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
            return None;
        }
        let mut parts = vec![t.ident_name().to_ascii_lowercase()];
        self.pos += 1;
        while self.peek().is_some_and(|t| t.is_punct('.')) {
            if let Some(next) = self.peek_at(1) {
                if matches!(next.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                    parts.push(next.ident_name().to_ascii_lowercase());
                    self.pos += 2;
                    continue;
                }
            }
            break;
        }
        let name = parts.last().cloned().unwrap_or_default();
        let path = parts.join(".");
        // Optional alias: AS ident, or a bare identifier that is not a
        // clause keyword.
        let mut alias = None;
        if self.eat_kw("as") {
            if let Some(a) = self.peek() {
                if matches!(a.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                    alias = Some(a.ident_name().to_ascii_lowercase());
                    self.pos += 1;
                }
            }
        } else if let Some(a) = self.peek() {
            if a.kind == TokenKind::Ident {
                alias = Some(a.ident_name().to_ascii_lowercase());
                self.pos += 1;
            }
        }
        Some(TableRef { name, path, alias })
    }

    fn parse_from(&mut self, shape: &mut QueryShape, depth: usize) {
        loop {
            self.parse_table_factor(shape, depth);

            // Continuations: comma, or JOIN chains.
            if self.eat_punct(',') {
                prod!(from_comma);
                continue;
            }
            let mut joined = false;
            loop {
                let save = self.pos;
                let natural = self.eat_kw("natural");
                self.eat_kw("inner");
                let outerish = self.eat_kw("left") | self.eat_kw("right") | self.eat_kw("full");
                if outerish {
                    self.eat_kw("outer");
                }
                let cross = self.eat_kw("cross");
                // MySQL STRAIGHT_JOIN is a join keyword of its own.
                let straight = self.peek().is_some_and(|t| t.is_kw("straight_join"));
                if straight {
                    self.pos += 1;
                } else if !self.eat_kw("join") {
                    self.pos = save;
                    break;
                }
                joined = true;
                if straight {
                    prod!(join_straight);
                } else if natural {
                    prod!(join_natural);
                } else if cross {
                    prod!(join_cross);
                } else if outerish {
                    prod!(join_outer);
                } else {
                    prod!(join_inner);
                }
                // Join target: any table factor, including derived tables
                // and parenthesized join groups.
                self.parse_table_factor(shape, depth);
                if self.eat_kw("on") {
                    prod!(join_on);
                    let mut ctx = CondCtx::default();
                    self.parse_or(shape, &mut ctx, depth);
                    // ON-clause column=column conditions became join edges
                    // already; residual filters belong to predicates.
                    shape.predicates.extend(ctx.predicates);
                } else if self.eat_kw("using") && self.peek().is_some_and(|t| t.is_punct('(')) {
                    prod!(join_using);
                    self.pos += 1;
                    while let Some(t) = self.peek() {
                        if t.is_punct(')') {
                            self.pos += 1;
                            break;
                        }
                        if t.kind == TokenKind::Ident {
                            let col = t.text.to_ascii_lowercase();
                            shape.joins.push(JoinEdge {
                                left: ColumnRef::new(None, &col),
                                right: ColumnRef::new(None, &col),
                            });
                        }
                        self.pos += 1;
                    }
                }
            }
            if joined && self.eat_punct(',') {
                prod!(from_comma);
                continue;
            }
            if !joined {
                break;
            }
            if self.at_clause_boundary() {
                break;
            }
        }
    }

    /// One relation in a FROM clause: a base table, a derived table
    /// (`(SELECT …) alias`), or a parenthesized join group
    /// (`(a JOIN b ON …) alias`).
    fn parse_table_factor(&mut self, shape: &mut QueryShape, depth: usize) {
        if self.peek().is_some_and(|t| t.is_punct('(')) {
            if self
                .peek_at(1)
                .is_some_and(|n| n.is_kw("select") || n.is_kw("with"))
            {
                prod!(from_derived);
                shape.derived_tables += 1;
                self.parse_subquery_parens(shape, depth);
                self.eat_table_alias();
            } else if depth < MAX_PARSE_DEPTH
                && self.peek_at(1).is_some_and(|n| {
                    matches!(n.kind, TokenKind::Ident | TokenKind::QuotedIdent) || n.is_punct('(')
                })
            {
                // Nested join group.
                prod!(from_nested_join);
                self.pos += 1;
                self.parse_from(shape, depth + 1);
                self.eat_punct(')');
                self.eat_table_alias();
            } else {
                // VALUES lists, expressions, or nesting past the depth
                // cap: skip as an opaque balanced group.
                self.skip_balanced();
                self.eat_table_alias();
            }
        } else if let Some(tref) = self.parse_table_ref() {
            prod!(from_table);
            shape.tables.push(tref);
        }
    }

    /// `[AS] alias [(col, …)]` after a derived table or join group.
    fn eat_table_alias(&mut self) {
        self.eat_kw("as");
        if self
            .peek()
            .is_some_and(|t| matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent))
        {
            self.pos += 1;
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                self.skip_balanced();
            }
        }
    }

    fn parse_column_list(&mut self, out: &mut Vec<ColumnRef>) {
        // Count of ROLLUP(/CUBE( wrappers we descended into, so we only eat
        // the close parens we opened (never a subquery's).
        let mut wrapped = 0usize;
        loop {
            // Skip ROLLUP( / CUBE( / GROUPING SETS( wrappers.
            if self
                .peek()
                .is_some_and(|t| t.is_kw("rollup") || t.is_kw("cube"))
            {
                prod!(group_rollup);
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.pos += 1; // descend into the list
                    wrapped += 1;
                }
            }
            if let Some(col) = self.try_column_ref() {
                out.push(col);
            } else if self.peek().is_some_and(|t| t.kind == TokenKind::Number) {
                // ORDER BY ordinal — skip.
                self.pos += 1;
            } else {
                // Unparseable list item (expression): skip to , or boundary.
                let mut depth = 0usize;
                while let Some(t) = self.peek() {
                    if depth == 0 && (t.is_punct(',') || self.at_clause_boundary()) {
                        break;
                    }
                    if t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(')') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    self.pos += 1;
                }
            }
            // Skip ASC / DESC / NULLS FIRST|LAST.
            loop {
                if self.eat_kw("asc")
                    || self.eat_kw("desc")
                    || self.eat_kw("nulls")
                    || self.eat_kw("first")
                    || self.eat_kw("last")
                {
                    continue;
                }
                break;
            }
            if wrapped > 0 && self.peek().is_some_and(|t| t.is_punct(')')) {
                // Close of a rollup/cube wrapper we opened.
                self.pos += 1;
                wrapped -= 1;
                if !self.eat_punct(',') {
                    break;
                }
                continue;
            }
            if !self.eat_punct(',') {
                break;
            }
        }
    }

    /// Try to read `ident` or `ident.ident` (column ref). Does not consume
    /// on failure. Refuses function calls (ident followed by `(`).
    fn try_column_ref(&mut self) -> Option<ColumnRef> {
        let t = self.peek()?;
        if !matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
            return None;
        }
        let first = t.ident_name().to_ascii_lowercase();
        // Function call → not a column ref.
        if self.peek_at(1).is_some_and(|n| n.is_punct('(')) {
            return None;
        }
        if self.peek_at(1).is_some_and(|n| n.is_punct('.')) {
            if let Some(second) = self.peek_at(2) {
                if matches!(second.kind, TokenKind::Ident | TokenKind::QuotedIdent)
                    && !self.peek_at(3).is_some_and(|n| n.is_punct('('))
                {
                    let col = second.ident_name().to_ascii_lowercase();
                    // Possibly a longer path a.b.c — take last two parts.
                    if self.peek_at(3).is_some_and(|n| n.is_punct('.')) {
                        if let Some(third) = self.peek_at(4) {
                            if matches!(third.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
                                let col2 = third.ident_name().to_ascii_lowercase();
                                self.pos += 5;
                                return Some(ColumnRef::new(Some(&col), &col2));
                            }
                        }
                    }
                    self.pos += 3;
                    return Some(ColumnRef::new(Some(&first), &col));
                }
            }
        }
        self.pos += 1;
        Some(ColumnRef::new(None, &first))
    }

    // ----- condition parsing -------------------------------------------

    fn parse_or(&mut self, shape: &mut QueryShape, ctx: &mut CondCtx, depth: usize) {
        let start_preds = ctx.predicates.len();
        self.parse_and(shape, ctx, depth);
        let mut branches = 1;
        while self.eat_kw("or") {
            branches += 1;
            self.parse_and(shape, ctx, depth);
        }
        if branches > 1 {
            prod!(cond_or);
            for p in &mut ctx.predicates[start_preds..] {
                p.in_or = true;
            }
        }
    }

    fn parse_and(&mut self, shape: &mut QueryShape, ctx: &mut CondCtx, depth: usize) {
        self.parse_condition_atom(shape, ctx, depth);
        while self.eat_kw("and") {
            self.parse_condition_atom(shape, ctx, depth);
        }
    }

    fn parse_condition_atom(&mut self, shape: &mut QueryShape, ctx: &mut CondCtx, depth: usize) {
        let negated = self.eat_kw("not");
        // EXISTS (subquery)
        if self.eat_kw("exists") {
            prod!(cond_exists);
            if self.peek().is_some_and(|t| t.is_punct('(')) {
                self.parse_subquery_parens(shape, depth);
            }
            ctx.predicates.push(Predicate {
                lhs: Lhs::Column(ColumnRef::new(None, "<exists>")),
                op: CmpOp::Exists,
                rhs: Rhs::Subquery,
                rhs2: None,
                negated,
                in_or: false,
            });
            return;
        }
        // Parenthesized group.
        if self.peek().is_some_and(|t| t.is_punct('(')) {
            if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                // Scalar subquery as a bare condition LHS — rare; record it.
                self.parse_subquery_parens(shape, depth);
            } else {
                if depth >= MAX_PARSE_DEPTH {
                    // Bounded recursion: beyond the cap the group is
                    // skipped opaquely instead of descending.
                    prod!(depth_limit);
                    self.skip_balanced();
                    return;
                }
                prod!(cond_group);
                self.pos += 1;
                self.parse_or(shape, ctx, depth + 1);
                self.eat_punct(')');
                if negated {
                    // NOT over a group: conservatively mark members non-sargable.
                    for p in &mut ctx.predicates {
                        p.in_or = true;
                    }
                }
                return;
            }
        }

        // LHS term.
        let lhs = match self.parse_term(shape, depth) {
            Some(t) => t,
            None => {
                self.recover_condition();
                return;
            }
        };

        // IS [NOT] NULL
        if self.eat_kw("is") {
            prod!(cond_is_null);
            let is_not = self.eat_kw("not");
            self.eat_kw("null");
            if let Term::Col(c) = lhs {
                ctx.predicates.push(Predicate {
                    lhs: Lhs::Column(c),
                    op: if is_not {
                        CmpOp::IsNotNull
                    } else {
                        CmpOp::IsNull
                    },
                    rhs: Rhs::None,
                    rhs2: None,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        let not2 = self.eat_kw("not");
        let negated = negated || not2;

        // BETWEEN a AND b
        if self.eat_kw("between") {
            prod!(cond_between);
            let lo = self.parse_value_expr(shape, depth);
            self.eat_kw("and");
            let hi = self.parse_value_expr(shape, depth);
            if let Some(l) = term_to_lhs(&lhs) {
                ctx.predicates.push(Predicate {
                    lhs: l,
                    op: CmpOp::Between,
                    rhs: lo.unwrap_or(Rhs::None),
                    rhs2: hi,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        // IN (list | subquery)
        if self.eat_kw("in") {
            let rhs = if self.peek().is_some_and(|t| t.is_punct('(')) {
                if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                    prod!(cond_in_subquery);
                    self.parse_subquery_parens(shape, depth);
                    Rhs::Subquery
                } else {
                    prod!(cond_in_list);
                    // Count commas at depth 1.
                    let mut count = 1usize;
                    let mut d = 0usize;
                    let mut empty = true;
                    while let Some(t) = self.bump() {
                        if t.is_punct('(') {
                            d += 1;
                        } else if t.is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        } else {
                            empty = false;
                            if d == 1 && t.is_punct(',') {
                                count += 1;
                            }
                        }
                    }
                    Rhs::List(if empty { 0 } else { count })
                }
            } else {
                Rhs::None
            };
            if let Some(l) = term_to_lhs(&lhs) {
                ctx.predicates.push(Predicate {
                    lhs: l,
                    op: CmpOp::In,
                    rhs,
                    rhs2: None,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        // LIKE / ILIKE (Snowflake's case-insensitive form).
        if self.eat_kw("like") || self.eat_kw("ilike") {
            prod!(cond_like);
            let rhs = self.parse_value_expr(shape, depth).unwrap_or(Rhs::None);
            // Optional ESCAPE 'c'.
            if self.eat_kw("escape") {
                self.bump();
            }
            if let Some(l) = term_to_lhs(&lhs) {
                ctx.predicates.push(Predicate {
                    lhs: l,
                    op: CmpOp::Like,
                    rhs,
                    rhs2: None,
                    negated,
                    in_or: false,
                });
            }
            return;
        }

        // Comparison operator.
        let op = match self.peek() {
            Some(t) if t.kind == TokenKind::Operator => match t.text.as_str() {
                "=" => Some(CmpOp::Eq),
                "<" => Some(CmpOp::Lt),
                "<=" => Some(CmpOp::Le),
                ">" => Some(CmpOp::Gt),
                ">=" => Some(CmpOp::Ge),
                "<>" | "!=" => Some(CmpOp::Ne),
                _ => None,
            },
            _ => None,
        };
        let Some(op) = op else {
            self.recover_condition();
            return;
        };
        self.pos += 1;

        // RHS: column (join edge) or value.
        let rhs_term = self.parse_term(shape, depth);
        match (lhs, rhs_term) {
            (Term::Col(l), Some(Term::Col(r))) if op == CmpOp::Eq && !negated => {
                // Join edges only make sense when two relations are involved;
                // a col=col within one table is recorded as a join edge too —
                // the optimizer resolves qualifiers later and discards
                // self-edges.
                prod!(cond_cmp_join_edge);
                shape.joins.push(JoinEdge { left: l, right: r });
            }
            (lhs_t, Some(Term::Col(r))) => {
                // value-op-column (e.g. 5 < x): flip where possible.
                if let Term::Lit(v) = lhs_t {
                    prod!(cond_cmp_flipped);
                    ctx.predicates.push(Predicate {
                        lhs: Lhs::Column(r),
                        op: flip(op),
                        rhs: v,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                } else if let Some(l) = term_to_lhs(&lhs_t) {
                    // agg = column — record against the agg LHS.
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: Rhs::None,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
            (lhs_t, Some(Term::Lit(v))) => {
                if let Some(l) = term_to_lhs(&lhs_t) {
                    prod!(cond_cmp_literal);
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: v,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
            (lhs_t, Some(Term::Subquery)) => {
                if let Some(l) = term_to_lhs(&lhs_t) {
                    prod!(cond_cmp_subquery);
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: Rhs::Subquery,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
            (lhs_t, _) => {
                if let Some(l) = term_to_lhs(&lhs_t) {
                    ctx.predicates.push(Predicate {
                        lhs: l,
                        op,
                        rhs: Rhs::None,
                        rhs2: None,
                        negated,
                        in_or: false,
                    });
                }
            }
        }
    }

    /// Parse a value-position expression (BETWEEN bounds, LIKE patterns)
    /// into an [`Rhs`], when the term is a literal.
    fn parse_value_expr(&mut self, shape: &mut QueryShape, depth: usize) -> Option<Rhs> {
        match self.parse_term(shape, depth)? {
            Term::Lit(v) => Some(v),
            Term::Subquery => Some(Rhs::Subquery),
            Term::Col(_) | Term::Agg { .. } | Term::Expr => Some(Rhs::None),
        }
    }

    /// Skip an unparseable condition up to AND/OR or a clause boundary.
    fn recover_condition(&mut self) {
        prod!(cond_recover);
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && (t.is_kw("and") || t.is_kw("or") || self.at_clause_boundary()) {
                return;
            }
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            }
            self.pos += 1;
        }
    }

    fn parse_subquery_parens(&mut self, shape: &mut QueryShape, depth: usize) {
        // Assumes next token is '('.
        self.pos += 1;
        let mut inner = QueryShape::default();
        self.parse_statement(&mut inner, depth + 1);
        merge_subquery(shape, inner);
        let mut d = 1usize;
        while let Some(t) = self.bump() {
            if t.is_punct('(') {
                d += 1;
            } else if t.is_punct(')') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
        }
    }

    /// A term on either side of a comparison.
    fn parse_term(&mut self, shape: &mut QueryShape, depth: usize) -> Option<Term> {
        let t = self.peek()?;
        // Subquery.
        if t.is_punct('(') {
            if self.peek_at(1).is_some_and(|n| n.is_kw("select")) {
                prod!(term_subquery);
                self.parse_subquery_parens(shape, depth);
                return Some(Term::Subquery);
            }
            // Parenthesized expression — treat as opaque.
            prod!(term_paren_expr);
            self.skip_balanced();
            return Some(Term::Expr);
        }
        // Aggregate call (HAVING).
        if (t.kind == TokenKind::Ident || t.kind == TokenKind::Keyword)
            && is_agg(&t.text)
            && self.peek_at(1).is_some_and(|n| n.is_punct('('))
        {
            prod!(term_agg);
            let func = t.text.to_ascii_lowercase();
            self.pos += 2;
            self.eat_kw("distinct");
            let column = self.try_column_ref();
            let mut d = 1usize;
            while let Some(t) = self.peek() {
                if t.is_punct('(') {
                    d += 1;
                } else if t.is_punct(')') {
                    d -= 1;
                    if d == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
            self.skip_over_window();
            return Some(Term::Agg { func, column });
        }
        // `date '1995-01-01'` / `timestamp '...'` style typed literal, plus
        // optional +/- `interval 'n' unit` arithmetic.
        if t.kind == TokenKind::Ident
            && matches!(t.text.to_ascii_lowercase().as_str(), "date" | "timestamp")
            && self
                .peek_at(1)
                .is_some_and(|n| n.kind == TokenKind::StringLit)
        {
            prod!(term_date_literal);
            self.pos += 1;
            let lit = self.bump().expect("peeked");
            let inner = strip_str(&lit.text);
            let mut value = Rhs::Str(inner);
            // date arithmetic: +/- interval 'n' unit.
            value = self.maybe_interval_arith(value);
            return Some(Term::Lit(value));
        }
        // interval literal itself.
        if t.kind == TokenKind::Keyword && t.is_kw("interval") {
            prod!(term_interval);
            self.pos += 1;
            if let Some(n) = self.peek() {
                if n.kind == TokenKind::StringLit || n.kind == TokenKind::Number {
                    let days = interval_days(&n.text, self.peek_at(1).map(|u| u.text.as_str()));
                    self.pos += 1;
                    // unit word
                    if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                        self.pos += 1;
                    }
                    return Some(Term::Lit(Rhs::Number(days)));
                }
            }
            return Some(Term::Expr);
        }
        match t.kind {
            TokenKind::Number => {
                prod!(term_number);
                let v: f64 = t.text.parse().unwrap_or(0.0);
                self.pos += 1;
                // Tolerate simple literal arithmetic (e.g. 0.06 - 0.01).
                let v = self.fold_numeric_arith(v);
                Some(Term::Lit(Rhs::Number(v)))
            }
            TokenKind::Operator if t.text == "-" => {
                // negative literal
                if let Some(n) = self.peek_at(1) {
                    if n.kind == TokenKind::Number {
                        prod!(term_neg_number);
                        let v: f64 = n.text.parse().unwrap_or(0.0);
                        self.pos += 2;
                        return Some(Term::Lit(Rhs::Number(-v)));
                    }
                }
                self.pos += 1;
                Some(Term::Expr)
            }
            TokenKind::StringLit => {
                prod!(term_string);
                let s = strip_str(&t.text);
                self.pos += 1;
                Some(Term::Lit(Rhs::Str(s)))
            }
            TokenKind::Param => {
                prod!(term_param);
                self.pos += 1;
                Some(Term::Lit(Rhs::Param))
            }
            TokenKind::Ident | TokenKind::QuotedIdent => {
                // Function call that is not an aggregate → opaque expr
                // (window calls also swallow their OVER clause).
                if self.peek_at(1).is_some_and(|n| n.is_punct('(')) {
                    prod!(term_func_call);
                    self.pos += 1;
                    self.skip_balanced();
                    self.skip_over_window();
                    return Some(Term::Expr);
                }
                let col = self.try_column_ref()?;
                prod!(term_column);
                Some(Term::Col(col))
            }
            TokenKind::Keyword if t.is_kw("null") => {
                prod!(term_null);
                self.pos += 1;
                Some(Term::Lit(Rhs::None))
            }
            TokenKind::Keyword if t.is_kw("true") || t.is_kw("false") => {
                prod!(term_bool);
                let v = if t.is_kw("true") { 1.0 } else { 0.0 };
                self.pos += 1;
                Some(Term::Lit(Rhs::Number(v)))
            }
            TokenKind::Keyword if t.is_kw("case") => {
                prod!(term_case);
                // Skip to END.
                while let Some(t) = self.bump() {
                    if t.is_kw("end") {
                        break;
                    }
                }
                Some(Term::Expr)
            }
            TokenKind::Keyword if t.is_kw("cast") || t.is_kw("extract") => {
                prod!(term_cast);
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.skip_balanced();
                }
                Some(Term::Expr)
            }
            _ => None,
        }
    }

    /// After a call's argument list: swallow `OVER ( … )` so window
    /// functions (QUALIFY conditions, ranked projections) read as one
    /// opaque term instead of derailing the condition parser.
    fn skip_over_window(&mut self) {
        if self
            .peek()
            .is_some_and(|t| t.text.eq_ignore_ascii_case("over"))
            && self.peek_at(1).is_some_and(|n| n.is_punct('('))
        {
            self.pos += 1;
            self.skip_balanced();
        }
    }

    /// After a date literal: handle `+ interval 'n' unit` / `- interval ...`.
    fn maybe_interval_arith(&mut self, base: Rhs) -> Rhs {
        let sign = match self.peek() {
            Some(t) if t.is_op("+") => 1.0,
            Some(t) if t.is_op("-") => -1.0,
            _ => return base,
        };
        if !self.peek_at(1).is_some_and(|t| t.is_kw("interval")) {
            return base;
        }
        prod!(term_interval_arith);
        self.pos += 2; // sign, interval
        let mut days = 0.0;
        if let Some(n) = self.peek() {
            if n.kind == TokenKind::StringLit || n.kind == TokenKind::Number {
                days = interval_days(&n.text, self.peek_at(1).map(|u| u.text.as_str()));
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                    self.pos += 1;
                }
            }
        }
        match &base {
            Rhs::Str(s) => match crate::ast::date_to_days(s) {
                Some(d) => Rhs::Number(d + sign * days),
                None => base,
            },
            Rhs::Number(v) => Rhs::Number(v + sign * days),
            _ => base,
        }
    }

    /// Fold `lit (+|-|*|/) lit` chains into one number.
    fn fold_numeric_arith(&mut self, mut acc: f64) -> f64 {
        loop {
            let op = match self.peek() {
                Some(t) if t.kind == TokenKind::Operator => match t.text.as_str() {
                    "+" | "-" | "*" | "/" => t.text.clone(),
                    _ => break,
                },
                _ => break,
            };
            let Some(n) = self.peek_at(1) else { break };
            if n.kind != TokenKind::Number {
                break;
            }
            let v: f64 = n.text.parse().unwrap_or(0.0);
            self.pos += 2;
            prod!(term_numeric_fold);
            acc = match op.as_str() {
                "+" => acc + v,
                "-" => acc - v,
                "*" => acc * v,
                _ => {
                    if v != 0.0 {
                        acc / v
                    } else {
                        acc
                    }
                }
            };
        }
        acc
    }
}

#[derive(Debug)]
enum Term {
    Col(ColumnRef),
    Agg {
        func: String,
        column: Option<ColumnRef>,
    },
    Lit(Rhs),
    Subquery,
    Expr,
}

fn term_to_lhs(t: &Term) -> Option<Lhs> {
    match t {
        Term::Col(c) => Some(Lhs::Column(c.clone())),
        Term::Agg { func, column } => Some(Lhs::Agg {
            func: func.clone(),
            column: column.clone(),
        }),
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn strip_str(raw: &str) -> String {
    let inner = raw
        .strip_prefix('\'')
        .map(|s| s.strip_suffix('\'').unwrap_or(s))
        .unwrap_or(raw);
    inner.replace("''", "'")
}

/// Interpret an interval magnitude + unit as days.
fn interval_days(magnitude: &str, unit: Option<&str>) -> f64 {
    let m: f64 = strip_str(magnitude).parse().unwrap_or(0.0);
    let factor = match unit.map(|u| u.to_ascii_lowercase()) {
        Some(u) if u.starts_with("year") => 365.0,
        Some(u) if u.starts_with("month") => 30.0,
        Some(u) if u.starts_with("week") => 7.0,
        Some(u) if u.starts_with("day") => 1.0,
        Some(u) if u.starts_with("hour") => 1.0 / 24.0,
        _ => 1.0,
    };
    m * factor
}

#[derive(Default)]
struct CondCtx {
    predicates: Vec<Predicate>,
}

/// Fold a subquery's discovered structure into the parent shape.
fn merge_subquery(parent: &mut QueryShape, child: QueryShape) {
    // A direct subquery adds one level plus whatever the child nested.
    parent.subquery_depth = parent.subquery_depth.max(1 + child.subquery_depth);
    parent.tables.extend(child.tables);
    parent.joins.extend(child.joins);
    parent.predicates.extend(child.predicates);
    parent.having.extend(child.having);
    parent.qualify.extend(child.qualify);
    parent.aggregates.extend(child.aggregates);
    parent.cte_names.extend(child.cte_names);
    parent.derived_tables += child.derived_tables;
}

/// Fold a set-operation operand into the left operand's shape. Unlike a
/// subquery, a sibling sits at the *same* nesting level, so subquery
/// depth takes the max without adding one.
fn merge_sibling(parent: &mut QueryShape, child: QueryShape) {
    parent.subquery_depth = parent.subquery_depth.max(child.subquery_depth);
    parent.set_ops += child.set_ops;
    parent.tables.extend(child.tables);
    parent.joins.extend(child.joins);
    parent.predicates.extend(child.predicates);
    parent.having.extend(child.having);
    parent.qualify.extend(child.qualify);
    parent.aggregates.extend(child.aggregates);
    parent.cte_names.extend(child.cte_names);
    parent.derived_tables += child.derived_tables;
    parent.projections = parent.projections.max(child.projections);
    parent.distinct |= child.distinct;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> QueryShape {
        parse_query(sql, Dialect::Generic)
    }

    // ----- regression tests: recursion/termination findings -------------

    /// Deep paren nesting in WHERE used to recurse once per paren with no
    /// depth bump — stack overflow on adversarial input.
    #[test]
    fn deep_condition_parens_bounded() {
        let sql = format!(
            "SELECT * FROM t WHERE {}a = 1{}",
            "(".repeat(20_000),
            ")".repeat(20_000)
        );
        let s = parse(&sql);
        assert_eq!(s.kind, Some(StatementKind::Select));
    }

    /// Deeply nested derived tables / subqueries must hit the depth cap,
    /// not the stack.
    #[test]
    fn deep_subquery_nesting_bounded() {
        let mut sql = String::from("SELECT 1");
        for _ in 0..5_000 {
            sql = format!("SELECT * FROM ({sql}) x");
        }
        let s = parse(&sql);
        assert_eq!(s.kind, Some(StatementKind::Select));
        assert!(s.subquery_depth <= MAX_PARSE_DEPTH + 1);
    }

    /// Set-op chains used to recurse once per operand; 50k operands must
    /// now parse iteratively.
    #[test]
    fn long_union_chain_is_iterative() {
        let mut sql = String::from("SELECT a FROM t0");
        for i in 1..50_000 {
            sql.push_str(&format!(" UNION ALL SELECT a FROM t{i}"));
        }
        let s = parse(&sql);
        assert_eq!(s.set_ops, 49_999);
        assert_eq!(s.tables.len(), 50_000);
    }

    /// UNION operands are siblings, not subqueries: depth must not grow.
    #[test]
    fn set_op_does_not_bump_subquery_depth() {
        let s = parse("SELECT a FROM t UNION SELECT b FROM u");
        assert_eq!(s.set_ops, 1);
        assert_eq!(s.subquery_depth, 0);
        assert_eq!(s.tables.len(), 2);
    }

    /// A parenthesized left operand used to swallow the whole set
    /// operation: `(SELECT ..) UNION SELECT ..` lost its UNION.
    #[test]
    fn wrapped_select_keeps_trailing_set_op() {
        let s = parse("(SELECT a FROM t) UNION SELECT b FROM u");
        assert_eq!(s.kind, Some(StatementKind::Select));
        assert_eq!(s.set_ops, 1);
        assert_eq!(s.tables.len(), 2);
        let nested =
            parse("((SELECT a FROM t) UNION ALL (SELECT b FROM u)) EXCEPT SELECT c FROM v");
        assert_eq!(nested.set_ops, 2);
        assert_eq!(nested.tables.len(), 3);
    }

    /// `skip_balanced` used to underflow its depth counter when invoked
    /// off a non-paren token; now it is a no-op there.
    #[test]
    fn skip_balanced_never_underflows() {
        for sql in [") ) )", "SELECT * FROM t WHERE )))", "SELECT (a))))"] {
            let _ = parse(sql); // must not panic in debug builds
        }
    }

    /// A keyword flood like `WITH WITH WITH …` must not recurse
    /// unboundedly through the statement dispatcher.
    #[test]
    fn keyword_flood_bounded() {
        let s = parse(&"WITH ".repeat(100_000));
        assert!(s.kind.is_some() || s.token_count > 0);
    }

    // ----- new grammar surface ------------------------------------------

    #[test]
    fn cte_names_captured_and_excluded_from_lineage() {
        let s = parse(
            "WITH stage1 AS (SELECT * FROM base1), stage2 AS (SELECT * FROM stage1 JOIN base2 ON stage1.k = base2.k) SELECT * FROM stage2",
        );
        assert_eq!(s.cte_names, vec!["stage1", "stage2"]);
        let lin = s.lineage();
        assert_eq!(lin.reads, vec!["base1", "base2"]);
        assert_eq!(lin.ctes, vec!["stage1", "stage2"]);
        assert!(lin.writes.is_empty() && lin.views.is_empty());
    }

    #[test]
    fn nested_cte_names_merge_into_parent() {
        let s = parse(
            "WITH outer1 AS (WITH inner1 AS (SELECT * FROM t) SELECT * FROM inner1) SELECT * FROM outer1",
        );
        let lin = s.lineage();
        assert_eq!(lin.reads, vec!["t"]);
        assert_eq!(lin.ctes, vec!["inner1", "outer1"]);
    }

    #[test]
    fn qualify_clause_recorded() {
        let s = parse(
            "SELECT a, row_number() OVER (PARTITION BY a ORDER BY b DESC) rn FROM t QUALIFY rn = 1",
        );
        assert_eq!(s.qualify.len(), 1);
        // Window-call conditions leave a sentinel rather than nothing.
        let w = parse("SELECT a FROM t QUALIFY row_number() OVER (PARTITION BY a ORDER BY b) <= 3");
        assert_eq!(w.qualify.len(), 1);
        assert_eq!(w.tables.len(), 1);
    }

    #[test]
    fn bigquery_except_modifier_is_not_a_set_op() {
        let s = parse_query(
            "SELECT * EXCEPT(secret_col) FROM ds.events",
            Dialect::BigQuery,
        );
        assert_eq!(s.set_ops, 0);
        assert_eq!(s.tables.len(), 1);
        assert_eq!(s.tables[0].name, "events");
        // ... while a real EXCEPT with a paren operand still counts.
        let e = parse("SELECT a FROM t EXCEPT (SELECT a FROM u)");
        assert_eq!(e.set_ops, 1);
        assert_eq!(e.tables.len(), 2);
    }

    #[test]
    fn straight_join_parses_as_join() {
        let s = parse_query(
            "SELECT * FROM a STRAIGHT_JOIN b ON a.k = b.k",
            Dialect::MySql,
        );
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.joins.len(), 1);
    }

    #[test]
    fn nested_join_group_in_from() {
        let s = parse("SELECT * FROM (a JOIN b ON a.k = b.k) g JOIN c ON a.j = c.j");
        assert_eq!(s.tables.len(), 3);
        assert_eq!(s.joins.len(), 2);
    }

    #[test]
    fn derived_tables_counted() {
        let s = parse("SELECT * FROM (SELECT a FROM t) x JOIN (SELECT b FROM u) y ON x.a = y.b");
        assert_eq!(s.derived_tables, 2);
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.subquery_depth, 1);
    }

    #[test]
    fn write_targets_feed_lineage() {
        let ins = parse("INSERT INTO sink SELECT * FROM src1 JOIN src2 ON src1.k = src2.k");
        let lin = ins.lineage();
        assert_eq!(lin.writes, vec!["sink"]);
        assert_eq!(lin.reads, vec!["src1", "src2"]);

        let view = parse("CREATE VIEW recent AS SELECT * FROM events WHERE ts > 0");
        let vlin = view.lineage();
        assert_eq!(vlin.views, vec!["recent"]);
        assert_eq!(vlin.reads, vec!["events"]);

        let ctas = parse("CREATE TABLE copy1 AS WITH c AS (SELECT * FROM base) SELECT * FROM c");
        let clin = ctas.lineage();
        assert_eq!(clin.writes, vec!["copy1"]);
        assert_eq!(clin.reads, vec!["base"]);
    }

    #[test]
    fn tsql_top_sets_limit() {
        let s = parse_query("SELECT TOP 10 * FROM t ORDER BY a", Dialect::TSql);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn simple_select_shape() {
        let s = parse("SELECT a, b FROM t WHERE a = 1 AND b > 2.5");
        assert_eq!(s.kind, Some(StatementKind::Select));
        assert_eq!(s.tables.len(), 1);
        assert_eq!(s.tables[0].name, "t");
        assert_eq!(s.projections, 2);
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].op, CmpOp::Eq);
        assert_eq!(s.predicates[0].rhs, Rhs::Number(1.0));
        assert_eq!(s.predicates[1].op, CmpOp::Gt);
    }

    #[test]
    fn aliases_resolve() {
        let s = parse("SELECT l.l_quantity FROM lineitem l WHERE l.l_tax < 0.05");
        assert_eq!(s.tables[0].alias.as_deref(), Some("l"));
        assert_eq!(s.resolve_table("l"), Some("lineitem"));
        let p = &s.predicates[0];
        assert_eq!(p.column().unwrap().qualifier.as_deref(), Some("l"));
    }

    #[test]
    fn implicit_join_in_where() {
        let s = parse(
            "SELECT * FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 100",
        );
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].left.column, "c_custkey");
        assert_eq!(s.joins[0].right.column, "o_custkey");
        assert_eq!(s.predicates.len(), 1);
    }

    #[test]
    fn explicit_join_on() {
        let s = parse(
            "SELECT * FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey LEFT OUTER JOIN nation n ON c.c_nationkey = n.n_nationkey WHERE n.n_name = 'FRANCE'",
        );
        assert_eq!(s.tables.len(), 3);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.predicates.len(), 1);
        assert_eq!(s.predicates[0].rhs, Rhs::Str("FRANCE".into()));
    }

    #[test]
    fn join_using() {
        let s = parse("SELECT * FROM a JOIN b USING (k)");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].left.column, "k");
    }

    #[test]
    fn between_and_in_and_like() {
        let s = parse(
            "SELECT * FROM t WHERE a BETWEEN 5 AND 10 AND b IN (1, 2, 3) AND c LIKE '%x%' AND d NOT IN (4,5)",
        );
        assert_eq!(s.predicates.len(), 4);
        assert_eq!(s.predicates[0].op, CmpOp::Between);
        assert_eq!(s.predicates[0].rhs, Rhs::Number(5.0));
        assert_eq!(s.predicates[0].rhs2, Some(Rhs::Number(10.0)));
        assert_eq!(s.predicates[1].op, CmpOp::In);
        assert_eq!(s.predicates[1].rhs, Rhs::List(3));
        assert_eq!(s.predicates[2].op, CmpOp::Like);
        assert!(s.predicates[3].negated);
    }

    #[test]
    fn or_marks_non_sargable() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2");
        assert_eq!(s.predicates.len(), 2);
        assert!(s.predicates.iter().all(|p| p.in_or));
        assert!(s.predicates.iter().all(|p| !p.sargable()));
        let s2 = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        let c_pred = s2
            .predicates
            .iter()
            .find(|p| p.column().unwrap().column == "c")
            .unwrap();
        assert!(!c_pred.in_or);
        assert!(c_pred.sargable());
    }

    #[test]
    fn group_by_having_order_by() {
        let s = parse(
            "SELECT l_returnflag, sum(l_quantity) FROM lineitem GROUP BY l_returnflag HAVING sum(l_quantity) > 300 ORDER BY l_returnflag DESC",
        );
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.group_by[0].column, "l_returnflag");
        assert_eq!(s.having.len(), 1);
        match &s.having[0].lhs {
            Lhs::Agg { func, column } => {
                assert_eq!(func, "sum");
                assert_eq!(column.as_ref().unwrap().column, "l_quantity");
            }
            other => panic!("expected agg lhs, got {other:?}"),
        }
        assert_eq!(s.having[0].rhs, Rhs::Number(300.0));
        assert_eq!(s.order_by.len(), 1);
        assert_eq!(s.aggregates.len(), 1);
    }

    #[test]
    fn date_arithmetic_folds_to_days() {
        let s = parse(
            "SELECT * FROM lineitem WHERE l_shipdate <= date '1998-12-01' - interval '90' day",
        );
        assert_eq!(s.predicates.len(), 1);
        let expected = crate::ast::date_to_days("1998-12-01").unwrap() - 90.0;
        assert_eq!(s.predicates[0].rhs, Rhs::Number(expected));
    }

    #[test]
    fn plain_date_literal_stays_string_but_numeric_works() {
        let s = parse("SELECT * FROM orders WHERE o_orderdate >= date '1995-01-01'");
        let rhs = &s.predicates[0].rhs;
        assert_eq!(rhs.numeric(), crate::ast::date_to_days("1995-01-01"));
    }

    #[test]
    fn subquery_depth_and_tables() {
        let s = parse(
            "SELECT * FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > 300)",
        );
        assert_eq!(s.subquery_depth, 1);
        assert!(s.table_names().contains(&"lineitem"));
        assert!(s.table_names().contains(&"orders"));
        let inp = s
            .predicates
            .iter()
            .find(|p| p.op == CmpOp::In)
            .expect("IN predicate");
        assert_eq!(inp.rhs, Rhs::Subquery);
        // The subquery's HAVING is merged.
        assert_eq!(s.having.len(), 1);
    }

    #[test]
    fn nested_subqueries_deepen() {
        let s = parse("SELECT * FROM a WHERE x IN (SELECT y FROM b WHERE z IN (SELECT w FROM c))");
        assert_eq!(s.subquery_depth, 2);
        assert_eq!(s.table_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn exists_predicate() {
        let s = parse("SELECT * FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.k = a.k)");
        assert!(s.predicates.iter().any(|p| p.op == CmpOp::Exists));
        assert!(s.joins.iter().any(|j| j.left.column == "k"));
    }

    #[test]
    fn set_operations_counted() {
        let s = parse("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v");
        assert_eq!(s.set_ops, 2);
        assert_eq!(s.table_names(), vec!["t", "u", "v"]);
    }

    #[test]
    fn cte_structure_merged() {
        let s = parse(
            "WITH r AS (SELECT o_custkey, count(*) c FROM orders GROUP BY o_custkey) SELECT * FROM r WHERE c > 5",
        );
        assert_eq!(s.kind, Some(StatementKind::Select));
        assert!(s.table_names().contains(&"orders"));
        assert!(s.aggregates.iter().any(|a| a.func == "count"));
    }

    #[test]
    fn dml_kinds() {
        assert_eq!(
            parse("INSERT INTO t VALUES (1, 2)").kind,
            Some(StatementKind::Insert)
        );
        let u = parse("UPDATE t SET a = 1 WHERE b = 2");
        assert_eq!(u.kind, Some(StatementKind::Update));
        assert_eq!(u.predicates.len(), 1);
        let d = parse("DELETE FROM t WHERE a < 10");
        assert_eq!(d.kind, Some(StatementKind::Delete));
        assert_eq!(d.predicates.len(), 1);
        assert_eq!(parse("DROP TABLE t").kind, Some(StatementKind::Drop));
        assert_eq!(
            parse("CREATE TABLE t (a int, b text)").kind,
            Some(StatementKind::CreateTable)
        );
        assert_eq!(parse("SHOW TABLES").kind, Some(StatementKind::Show));
    }

    #[test]
    fn limit_variants() {
        assert_eq!(parse("SELECT a FROM t LIMIT 10").limit, Some(10));
        assert_eq!(parse("SELECT TOP 5 a FROM t").limit, Some(5));
        assert_eq!(
            parse("SELECT a FROM t ORDER BY a FETCH FIRST 7 ROWS ONLY").limit,
            Some(7)
        );
    }

    #[test]
    fn distinct_flag() {
        assert!(parse("SELECT DISTINCT a FROM t").distinct);
        assert!(!parse("SELECT a FROM t").distinct);
    }

    #[test]
    fn qualified_table_paths() {
        let s = parse("SELECT * FROM tpch.public.orders o");
        assert_eq!(s.tables[0].name, "orders");
        assert_eq!(s.tables[0].path, "tpch.public.orders");
        assert_eq!(s.tables[0].alias.as_deref(), Some("o"));
    }

    #[test]
    fn tpch_q3_full_shape() {
        let q3 = "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
                  o_orderdate, o_shippriority \
                  from customer, orders, lineitem \
                  where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
                  and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15' \
                  and l_shipdate > date '1995-03-15' \
                  group by l_orderkey, o_orderdate, o_shippriority \
                  order by revenue desc, o_orderdate limit 10";
        let s = parse(q3);
        assert_eq!(s.table_names(), vec!["customer", "lineitem", "orders"]);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.predicates.len(), 3);
        assert_eq!(s.group_by.len(), 3);
        assert_eq!(s.limit, Some(10));
        assert!(s.aggregates.iter().any(|a| a.func == "sum"));
    }

    #[test]
    fn tpch_q18_having_shape() {
        let q18 = "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) \
                   from customer, orders, lineitem \
                   where o_orderkey in (select l_orderkey from lineitem group by l_orderkey having sum(l_quantity) > 300) \
                   and c_custkey = o_custkey and o_orderkey = l_orderkey \
                   group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
                   order by o_totalprice desc, o_orderdate limit 100";
        let s = parse(q18);
        assert_eq!(s.subquery_depth, 1);
        assert_eq!(s.joins.len(), 2);
        assert!(s
            .having
            .iter()
            .any(|h| matches!(&h.lhs, Lhs::Agg { func, .. } if func == "sum")));
        assert_eq!(s.limit, Some(100));
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "",
            ";;;",
            "SELECT",
            "SELECT FROM WHERE",
            "FROM t SELECT a",
            ")(",
            "select * from",
            "where x = 1",
            "🙂 select 🙂 from 🙂",
            "select a from t where (((",
            "select case when then end from t",
        ] {
            let _ = parse(garbage);
        }
    }

    #[test]
    fn is_null_predicates() {
        let s = parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].op, CmpOp::IsNull);
        assert_eq!(s.predicates[1].op, CmpOp::IsNotNull);
    }

    #[test]
    fn flipped_comparison() {
        let s = parse("SELECT * FROM t WHERE 5 < x");
        assert_eq!(s.predicates.len(), 1);
        assert_eq!(s.predicates[0].op, CmpOp::Gt);
        assert_eq!(s.predicates[0].column().unwrap().column, "x");
    }

    #[test]
    fn params_as_rhs() {
        let s = parse("SELECT * FROM t WHERE a = ? AND b > :lim");
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].rhs, Rhs::Param);
        assert!(s.predicates[0].sargable());
    }
}
