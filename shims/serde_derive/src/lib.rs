//! Offline stand-in for `serde_derive`.
//!
//! The workspace vendors a minimal `serde` whose wire format is JSON and
//! whose traits are `Serialize { serialize_json }` / `Deserialize
//! { deserialize_json }`. These derives cover exactly the shapes the
//! workspace uses: structs with named fields and enums with unit
//! variants, no generics. Anything else is rejected with a compile
//! error so a future use fails loudly instead of mis-serializing.
//!
//! No `syn`/`quote`: the container is offline, so the input token stream
//! is walked by hand and the output is assembled as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: type name + field names in declaration order.
    Struct(String, Vec<String>),
    /// Enum of unit variants: type name + variant names.
    Enum(String, Vec<String>),
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter();
    let is_struct;
    let name;
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: consume its bracket group.
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    continue; // a following `(crate)` group is skipped below
                } else if s == "struct" || s == "enum" {
                    is_struct = s == "struct";
                    match iter.next() {
                        Some(TokenTree::Ident(n)) => {
                            name = n.to_string();
                            break;
                        }
                        other => panic!("serde shim derive: expected type name, got {other:?}"),
                    }
                } else {
                    panic!("serde shim derive: unexpected ident `{s}`");
                }
            }
            Some(TokenTree::Group(_)) => {} // `pub(crate)` visibility group
            other => panic!("serde shim derive: unexpected token {other:?}"),
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde shim derive: only braced (named-field / unit-variant) bodies are supported, got {other:?}"
        ),
    };
    if is_struct {
        Shape::Struct(name, parse_fields(body.stream()))
    } else {
        Shape::Enum(name, parse_variants(body.stream()))
    }
}

/// Field names of a named-field struct body, skipping attributes,
/// visibility, and type tokens (angle-bracket depth tracked so commas in
/// `HashMap<K, V>` don't split fields).
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field start: attributes, then visibility, then `name : Type ,`
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        let _ = iter.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde shim derive: unexpected field token {other:?}"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type until a top-level comma.
        let mut angle = 0i32;
        loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Variant names of a unit-variant enum body.
fn parse_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter();
    loop {
        match iter.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            Some(TokenTree::Group(_)) => {
                panic!("serde shim derive: only unit enum variants are supported")
            }
            other => panic!("serde shim derive: unexpected enum token {other:?}"),
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n fn serialize_json(&self, out: &mut ::std::string::String) {{\n {body}\n }}\n}}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n fn serialize_json(&self, out: &mut ::std::string::String) {{\n match self {{ {arms} }}\n }}\n}}"
            )
        }
    };
    out.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::deserialize_json(v.field(\"{f}\")?)?,\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn deserialize_json(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n ::std::result::Result::Ok({name} {{ {inits} }})\n }}\n}}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn deserialize_json(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n match v.as_str()? {{ {arms} other => ::std::result::Result::Err(::serde::json::Error::msg(format!(\"unknown {name} variant {{other}}\"))) }}\n }}\n}}"
            )
        }
    };
    out.parse().unwrap()
}
