//! Workload summarization for index recommendation (paper §5.1) on the
//! simulated TPC-H testbed.
//!
//! Compares three paths into the tuning advisor under the same time
//! budget: the full workload, an embedding-based summary (the paper's
//! method), and the classical syntactic K-medoids baseline.
//!
//! Run with: `cargo run --release --example index_advisor`

use querc::apps::summarize::{summarize_workload, SummaryConfig, SummaryMethod};
use querc_dbsim::{workload_runtime, Advisor, AdvisorConfig, Catalog};
use querc_embed::{Doc2Vec, Doc2VecConfig, VocabConfig};
use querc_workloads::TpchWorkload;

fn main() {
    // A TPC-H-style workload: 22 templates × 12 instances.
    let workload = TpchWorkload::generate(12, 42);
    let sqls = workload.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());

    let baseline = workload_runtime(&sqls, &catalog, &[]);
    println!(
        "workload: {} queries, no-index runtime {baseline:.0} s (simulated)",
        sqls.len()
    );

    // Train an embedder on the workload text itself.
    let corpus: Vec<Vec<String>> = sqls.iter().map(|s| querc_embed::sql_tokens(s)).collect();
    let embedder = Doc2Vec::train(
        &corpus,
        Doc2VecConfig {
            dim: 32,
            epochs: 15,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 5000,
                hash_buckets: 128,
            },
            ..Default::default()
        },
    );

    let cfg = SummaryConfig {
        k: None,
        k_min: 8,
        k_max: 30,
        plateau: 0.01,
        seed: 7,
    };
    let budget = 360.0; // a generous six-minute budget for every method

    for (name, input_indices) in [
        ("full workload", (0..sqls.len()).collect::<Vec<_>>()),
        (
            "embedding summary (Querc)",
            summarize_workload(&sqls, &SummaryMethod::Embedding(&embedder), &cfg),
        ),
        (
            "syntactic K-medoids baseline",
            summarize_workload(
                &sqls,
                &SummaryMethod::SyntacticKMedoids,
                &SummaryConfig {
                    k: Some(20),
                    ..SummaryConfig::default()
                },
            ),
        ),
    ] {
        let input: Vec<&str> = input_indices.iter().map(|&i| sqls[i]).collect();
        let report = advisor.recommend(&input, budget);
        let runtime = workload_runtime(&sqls, &catalog, &report.indexes);
        println!(
            "\n{name}: {} queries to advisor, consumed {:.0} s of budget",
            input.len(),
            report.consumed_secs
        );
        println!(
            "  {} indexes ({} dropped by validation): {}",
            report.indexes.len(),
            report.dropped.len(),
            report
                .indexes
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  full-workload runtime with these indexes: {runtime:.0} s ({:+.1}% vs no index)",
            100.0 * (runtime - baseline) / baseline
        );
    }
}
