//! Persistence-plane glue: the JSON section payloads stored inside a
//! `querc-persist` snapshot, and the shared validation helpers restore
//! paths use.
//!
//! The container (`querc_persist::Snapshot`) guarantees sections arrive
//! byte-identical or not at all (per-section CRCs); everything *inside*
//! a section is still untrusted once parsed — a stale or hand-edited
//! snapshot can carry shapes the serving hot paths would index-panic
//! on. Every restore helper here therefore validates against the live
//! configuration (embedder dims, arena bounds, matrix shapes) and
//! reports [`QuercError::Corrupt`] instead.

use crate::apps::{
    AuditApp, DynWorkloadApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp,
};
use crate::classifier::LabelerState;
use crate::error::{QuercError, Result};
use crate::registry::RegistryEvent;
use querc_embed::Embedder;
use querc_learn::{ClassifierState, ForestState, TreeState};
use std::collections::HashMap;
use std::sync::Arc;

/// Build a [`QuercError::Corrupt`] with a formatted detail message.
pub(crate) fn corrupt(detail: impl Into<String>) -> QuercError {
    QuercError::Corrupt {
        detail: detail.into(),
    }
}

/// Serialize a section payload. `None` only if the shim serializer
/// fails, which no exported state does.
pub(crate) fn to_json<T: serde::Serialize>(value: &T) -> Option<String> {
    serde_json::to_string(value).ok()
}

/// Parse a section payload, mapping any schema mismatch to
/// [`QuercError::Corrupt`] tagged with the section being read.
pub(crate) fn from_json<T: serde::de::DeserializeOwned>(json: &str, what: &str) -> Result<T> {
    serde_json::from_str(json).map_err(|e| corrupt(format!("{what}: {e}")))
}

/// Decode an embed-cache section — `[[ns, fp, [f32, ...]], ...]` — with
/// a single-pass streaming parser instead of the generic shim path.
///
/// The warm set dominates snapshot bytes (100k × 64-float vectors ≈
/// 30 MB), and the generic path pays for it twice: a `json::Value` tree
/// with one heap `String` per number (~6.6M allocations), then a second
/// walk parsing each. This decoder goes straight from payload bytes to
/// `(u64, u64, Vec<f32>)` triples. It accepts exactly what the shim
/// serializer emits (plus interstitial whitespace and `null` → NaN, the
/// shim's float convention); on *any* shape surprise it falls back to
/// [`from_json`], so error reporting and schema tolerance are unchanged.
pub(crate) fn parse_embed_cache(json: &str, what: &str) -> Result<Vec<(u64, u64, Vec<f32>)>> {
    match fast_embed_cache(json) {
        Some(entries) => Ok(entries),
        None => from_json(json, what),
    }
}

fn fast_embed_cache(json: &str) -> Option<Vec<(u64, u64, Vec<f32>)>> {
    let b = json.as_bytes();
    let mut p = 0usize;
    let skip_ws = |p: &mut usize| {
        while matches!(b.get(*p), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            *p += 1;
        }
    };
    let eat = |p: &mut usize, c: u8| -> Option<()> { (b.get(*p) == Some(&c)).then(|| *p += 1) };
    // Scan one number token; boundaries are ASCII so the str slice is
    // always valid.
    fn number<'a>(json: &'a str, p: &mut usize) -> Option<&'a str> {
        let b = json.as_bytes();
        let start = *p;
        while matches!(
            b.get(*p),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            *p += 1;
        }
        (*p > start).then(|| &json[start..*p])
    }

    skip_ws(&mut p);
    eat(&mut p, b'[')?;
    skip_ws(&mut p);
    // Size the output from the entry-open count so the big Vec never
    // reallocates mid-parse.
    let mut out = Vec::with_capacity(json.matches("[[").count().max(1));
    if eat(&mut p, b']').is_none() {
        loop {
            skip_ws(&mut p);
            eat(&mut p, b'[')?;
            skip_ws(&mut p);
            let ns = number(json, &mut p)?.parse::<u64>().ok()?;
            skip_ws(&mut p);
            eat(&mut p, b',')?;
            skip_ws(&mut p);
            let fp = number(json, &mut p)?.parse::<u64>().ok()?;
            skip_ws(&mut p);
            eat(&mut p, b',')?;
            skip_ws(&mut p);
            eat(&mut p, b'[')?;
            // Vectors in one section share a dim; reuse the last length
            // as the capacity hint.
            let mut v: Vec<f32> = Vec::with_capacity(
                out.last()
                    .map_or(0, |(_, _, prev): &(_, _, Vec<f32>)| prev.len()),
            );
            skip_ws(&mut p);
            if eat(&mut p, b']').is_none() {
                loop {
                    skip_ws(&mut p);
                    if b[p..].starts_with(b"null") {
                        p += 4;
                        v.push(f32::NAN);
                    } else {
                        v.push(number(json, &mut p)?.parse::<f32>().ok()?);
                    }
                    skip_ws(&mut p);
                    if eat(&mut p, b',').is_some() {
                        continue;
                    }
                    eat(&mut p, b']')?;
                    break;
                }
            }
            skip_ws(&mut p);
            eat(&mut p, b']')?;
            out.push((ns, fp, v));
            skip_ws(&mut p);
            if eat(&mut p, b',').is_some() {
                continue;
            }
            eat(&mut p, b']')?;
            break;
        }
    }
    skip_ws(&mut p);
    (p == b.len()).then_some(out)
}

/// Decode a section's bytes as UTF-8 (all payloads are JSON text).
pub(crate) fn utf8<'a>(bytes: &'a [u8], what: &str) -> Result<&'a str> {
    std::str::from_utf8(bytes).map_err(|_| corrupt(format!("{what}: payload is not UTF-8")))
}

/// Map a `querc-learn` restore failure into [`QuercError::Corrupt`].
pub(crate) fn bad_learn_state(e: querc_learn::LearnError) -> QuercError {
    corrupt(e.to_string())
}

/// Reject any tree that splits on a feature column past `dim` — the
/// inference path indexes `v[feature]` unchecked.
pub(crate) fn check_tree(tree: &TreeState, dim: usize) -> Result<()> {
    for n in &tree.nodes {
        if !n.leaf && n.feature >= dim {
            return Err(corrupt(format!(
                "tree splits on feature {} but vectors have dim {dim}",
                n.feature
            )));
        }
    }
    Ok(())
}

/// [`check_tree`] over every tree of a forest.
pub(crate) fn check_forest(forest: &ForestState, dim: usize) -> Result<()> {
    forest.trees.iter().try_for_each(|t| check_tree(t, dim))
}

/// Validate a classifier snapshot against the dimensionality its owner
/// will feed it. (Shape *consistency* — weight lengths, arena indices —
/// is `querc-learn`'s job on `from_state`; this checks the one thing
/// only the owner knows: the input width.)
pub(crate) fn check_classifier_dim(state: &ClassifierState, dim: usize) -> Result<()> {
    match state {
        ClassifierState::Forest(f) => check_forest(f, dim),
        ClassifierState::Tree(t) => check_tree(t, dim),
        ClassifierState::Knn(k) => {
            // dim == 0 marks an empty training set: nothing to scan, any
            // probe width is safely answered by the majority class.
            if k.dim == 0 || k.dim == dim {
                Ok(())
            } else {
                Err(corrupt(format!(
                    "knn trained at dim {} but vectors have dim {dim}",
                    k.dim
                )))
            }
        }
        ClassifierState::Softmax(s) => {
            if s.cols == dim + 1 {
                Ok(())
            } else {
                Err(corrupt(format!(
                    "softmax has {} columns but vectors have dim {dim} (want dim+1)",
                    s.cols
                )))
            }
        }
    }
}

/// The `manifest` section: what the snapshot claims to contain, used to
/// detect sections lost to truncation-with-a-rewritten-footer.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct ManifestState {
    /// Names of the `app:<name>` sections written.
    pub(crate) apps: Vec<String>,
    /// Names of the registry deployments serialized.
    pub(crate) classifiers: Vec<String>,
}

/// One serialized registry deployment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct DeploymentState {
    /// Registry key.
    pub(crate) name: String,
    /// Pinned version number at checkpoint time.
    pub(crate) version: u64,
    /// The label this classifier attaches.
    pub(crate) label_name: String,
    /// Embedder family tag (`querc_embed::io::restore_embedder` input).
    pub(crate) embedder_kind: String,
    /// Embedder weights, serialized.
    pub(crate) embedder_json: String,
    /// The labeler half.
    pub(crate) labeler: LabelerState,
}

/// The `registry` section: deployments plus the event history.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct RegistryState {
    /// Serializable deployments (non-persistable ones are skipped).
    pub(crate) deployments: Vec<DeploymentState>,
    /// Full deploy/undeploy history, oldest first.
    pub(crate) events: Vec<RegistryEvent>,
}

/// One `app:<name>` section: the app's embedder spec plus its fitted
/// model as produced by [`crate::apps::WorkloadApp::save_model`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct AppState {
    /// Registration key; must match the section's name suffix.
    pub(crate) app: String,
    /// Embedder family tag.
    pub(crate) embedder_kind: String,
    /// Embedder weights, serialized.
    pub(crate) embedder_json: String,
    /// The app's model payload (opaque to this layer).
    pub(crate) model_json: String,
}

/// One persisted per-tenant QoS policy override (see
/// [`crate::qos::TenantPolicy`]); `rate_per_sec`/`burst` are both
/// `None` for a tenant with no rate limit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct QosPolicyState {
    /// Routing key the policy applies to.
    pub(crate) tenant: String,
    /// DRR weight.
    pub(crate) weight: u32,
    /// Token-bucket sustained rate, if rate-limited.
    pub(crate) rate_per_sec: Option<f64>,
    /// Token-bucket burst capacity, if rate-limited.
    pub(crate) burst: Option<f64>,
}

/// The `qos` section: the tenant policy overrides installed at
/// checkpoint time. **Additive** — written only when QoS is enabled,
/// ignored by readers that predate it, and absent from pre-QoS
/// snapshots without failing restore (no format version bump).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct QosSectionState {
    /// Explicit per-tenant overrides, sorted by tenant.
    pub(crate) policies: Vec<QosPolicyState>,
}

/// Restores embedders from `(kind, json)` specs, deduplicating by spec
/// so apps and classifiers that shared one embedder at checkpoint time
/// share one `Arc` (and one cache namespace's memory) after restore.
#[derive(Default)]
pub(crate) struct EmbedderCache {
    map: HashMap<(String, String), Arc<dyn Embedder>>,
}

impl EmbedderCache {
    pub(crate) fn restore(&mut self, kind: &str, json: &str) -> Result<Arc<dyn Embedder>> {
        let key = (kind.to_string(), json.to_string());
        if let Some(e) = self.map.get(&key) {
            return Ok(Arc::clone(e));
        }
        let e = querc_embed::io::restore_embedder(kind, json)
            .map_err(|err| corrupt(format!("embedder {kind:?}: {err}")))?;
        self.map.insert(key, Arc::clone(&e));
        Ok(e)
    }
}

/// Rebuild the app *configuration* for a snapshot section. Label-time
/// knobs (audit thresholds, routing confidence floors) live inside the
/// serialized **model**, so the default-constructed app is behaviorally
/// complete once `load_model` runs; fit-only knobs (tree counts, k)
/// don't matter to a restored model and stay at their defaults.
pub(crate) fn restore_app(
    name: &str,
    embedder: Arc<dyn Embedder>,
) -> Result<Box<dyn DynWorkloadApp>> {
    Ok(match name {
        "audit" => Box::new(AuditApp::new(embedder)),
        "errors" => Box::new(ErrorsApp::new(embedder)),
        "recommend" => Box::new(RecommendApp::new(embedder)),
        "resources" => Box::new(ResourcesApp::new(embedder)),
        "routing" => Box::new(RoutingApp::new(embedder)),
        "summarize" => Box::new(SummarizeApp::new(embedder)),
        other => return Err(corrupt(format!("unknown app in snapshot: {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: &Vec<(u64, u64, Vec<f32>)>) {
        let json = to_json(entries).unwrap();
        let fast = fast_embed_cache(&json).expect("writer output takes the fast path");
        let generic: Vec<(u64, u64, Vec<f32>)> = from_json(&json, "t").unwrap();
        assert_eq!(fast.len(), generic.len());
        for ((fa, fb, fv), (ga, gb, gv)) in fast.iter().zip(&generic) {
            assert_eq!((fa, fb), (ga, gb));
            // Bit-compare so NaN round-trips count as equal too.
            let f_bits: Vec<u32> = fv.iter().map(|x| x.to_bits()).collect();
            let g_bits: Vec<u32> = gv.iter().map(|x| x.to_bits()).collect();
            assert_eq!(f_bits, g_bits);
        }
    }

    #[test]
    fn fast_embed_cache_matches_generic_parser() {
        roundtrip(&vec![]);
        roundtrip(&vec![(0, u64::MAX, vec![])]);
        roundtrip(&vec![
            (1, 2, vec![0.0, -0.0, 1.5, -3.25e-7, f32::MIN, f32::MAX]),
            (u64::MAX, 0, vec![f32::NAN, 0.3]),
            (42, 7, (0..64).map(|i| (i as f32 * 0.1).sin()).collect()),
        ]);
    }

    #[test]
    fn fast_embed_cache_accepts_whitespace_and_rejects_junk() {
        let spaced = " [ [1 , 2 , [0.5, null] ] ,\n[3,4,[]] ] ";
        let v = fast_embed_cache(spaced).expect("whitespace tolerated");
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].0, v[0].1), (1, 2));
        assert!(v[0].2[1].is_nan());
        // Shape surprises must decline (→ generic fallback), not panic.
        for junk in [
            "",
            "{}",
            "[[1,2,[0.5]]",
            "[[1,2,[0.5]]] trailing",
            r#"[["a",2,[0.5]]]"#,
            "[[1,2,[true]]]",
            "[[1,2,0.5]]",
            "[[1,2,[0.5],9]]",
        ] {
            assert!(fast_embed_cache(junk).is_none(), "accepted {junk:?}");
        }
    }
}
