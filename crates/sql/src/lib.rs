//! # querc-sql
//!
//! Dialect-tolerant SQL lexing, normalization, lightweight parsing and the
//! classical hand-engineered feature extractor for the Querc reproduction.
//!
//! Querc's thesis (Jain et al., CIDR 2019) is that *learned* features over
//! raw query text can replace per-dialect syntactic feature engineering.
//! This crate supplies both sides of that comparison:
//!
//! * [`lexer`] + [`normalize`] produce the token streams the embedders in
//!   `querc-embed` consume. The lexer never fails: unknown bytes become
//!   [`token::TokenKind::Other`] tokens, because a workload manager must
//!   accept whatever text a client sends.
//! * [`parser`] extracts a best-effort [`ast::QueryShape`] (tables, join
//!   graph, predicates, group-by, aggregates) used by the database
//!   simulator's optimizer and by the baseline features.
//! * [`features`] is the specialized feature engineering the paper argues
//!   against — join/group-by structure counts à la Chaudhuri et al. — kept
//!   as an ablation baseline.

#![deny(missing_docs)]

pub mod ast;
pub mod dialect;
pub mod features;
pub mod fingerprint;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod token;

pub use ast::{JoinEdge, Predicate, QueryShape, StatementKind};
pub use dialect::Dialect;
pub use fingerprint::{fingerprint_tokens, template_fingerprint};
pub use lexer::{lex_calls_this_thread, tokenize};
pub use normalize::{normalize_tokens, normalized_text};
pub use parser::parse_query;
pub use token::{Token, TokenKind};
