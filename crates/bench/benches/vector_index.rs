//! Vector search plane benchmark: exact blocked scan vs IVF ANN.
//!
//! Two corpus sizes (10k / 100k vectors of clustered data — the shape
//! of an embedded templated workload), a recall@10 sweep over `nprobe`,
//! and a timed flat-vs-IVF comparison at the smallest `nprobe` that
//! holds recall@10 ≥ 0.95. Before timing, the harness asserts the
//! recall floor and that the IVF index scans ≤ ⅓ of the candidates the
//! exact scan does — the deterministic work-reduction that produces the
//! ≥ 3× wall-clock win on the 100k corpus (`cargo bench` prints the
//! measured speedup; under `cargo test --benches` smoke the corpus is
//! shrunk and each body runs once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use querc_index::{FlatIndex, IvfConfig, IvfIndex, Metric, VectorIndex, VectorStore};
use querc_linalg::Pcg32;
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

const K: usize = 10;
const N_QUERIES: usize = 64;
const RECALL_FLOOR: f64 = 0.95;

/// Gaussian blobs: `centers` clusters of `dim`-d points, `n` total.
fn clustered(n: usize, centers: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    let mut pts = Vec::with_capacity(n);
    let centroids: Vec<Vec<f32>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.normal() * 10.0).collect())
        .collect();
    for i in 0..n {
        let c = &centroids[i % centers];
        pts.push(c.iter().map(|v| v + rng.normal() * 0.6).collect());
    }
    pts
}

/// Serving-shaped queries: perturbed corpus points.
fn queries(corpus: &[Vec<f32>], n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|_| {
            let base = &corpus[rng.below_usize(corpus.len())];
            base.iter().map(|v| v + rng.normal() * 0.3).collect()
        })
        .collect()
}

fn mean_recall(ivf: &IvfIndex, flat: &FlatIndex, qs: &[Vec<f32>]) -> f64 {
    let mut total = 0.0;
    for q in qs {
        let truth: HashSet<u32> = flat.search(q, K).iter().map(|h| h.0).collect();
        let got = ivf.search(q, K);
        total += got.iter().filter(|h| truth.contains(&h.0)).count() as f64 / truth.len() as f64;
    }
    total / qs.len() as f64
}

fn bench_vector_index(c: &mut Criterion) {
    // Full sizes per the issue under `cargo bench` (release profile);
    // the CI smoke compiles benches under the unoptimized test profile
    // (debug_assertions on) and gets a corpus it can index fast.
    let test_mode = std::env::args().any(|a| a == "--test") || cfg!(debug_assertions);
    let sizes: &[usize] = if test_mode {
        &[2_000]
    } else {
        &[10_000, 100_000]
    };
    let dim = 32;

    for &n in sizes {
        let corpus = clustered(n, (n as f64).sqrt() as usize / 2, dim, 0x1dab + n as u64);
        let qs = queries(&corpus, N_QUERIES, 0x9e1);
        let store = VectorStore::from_rows(&corpus);
        let flat = FlatIndex::new(store.clone(), Metric::Euclidean);

        // Recall@10 sweep over nprobe: pick the cheapest setting that
        // holds the floor, and report the whole curve.
        let mut ivf = IvfIndex::build(
            store,
            Metric::Euclidean,
            &IvfConfig {
                nlist: 0, // auto √n
                nprobe: 1,
                train_iters: if test_mode { 4 } else { 10 },
                ..Default::default()
            },
        );
        println!(
            "\nvector_index: n={n} dim={dim} nlist={} (recall@{K} sweep)",
            ivf.nlist()
        );
        let mut chosen = None;
        for nprobe in [1usize, 2, 4, 8, 16, 32, 64] {
            if nprobe > ivf.nlist() {
                break;
            }
            ivf.set_nprobe(nprobe);
            let r = mean_recall(&ivf, &flat, &qs);
            println!("  nprobe={nprobe:>3}  recall@{K}={r:.3}");
            if r >= RECALL_FLOOR {
                chosen = Some(nprobe);
                break;
            }
        }
        // A recall regression must fail AS a recall regression, not as
        // a confusing work-ratio failure at full probe downstream.
        let chosen = chosen.unwrap_or_else(|| {
            panic!("no swept nprobe reached recall@{K} ≥ {RECALL_FLOOR} on clustered data (n={n})")
        });
        ivf.set_nprobe(chosen);
        let r = mean_recall(&ivf, &flat, &qs);

        // Deterministic work bound behind the wall-clock claim: at the
        // chosen nprobe the ANN scan touches ≤ ⅓ of what flat scans.
        let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
        let flat_before = flat.stats().candidates;
        let t0 = Instant::now();
        black_box(flat.search_batch(&refs, K));
        let flat_elapsed = t0.elapsed();
        let flat_work = flat.stats().candidates - flat_before;
        let ivf_before = ivf.stats().candidates;
        let t0 = Instant::now();
        black_box(ivf.search_batch(&refs, K));
        let ivf_elapsed = t0.elapsed();
        let ivf_work = ivf.stats().candidates - ivf_before;
        println!(
            "  chosen nprobe={chosen}: recall@{K}={r:.3}, candidates/query {} vs {} \
             ({:.1}× less work), batch wall-clock {:?} vs {:?} ({:.1}× speedup)",
            ivf_work / N_QUERIES as u64,
            flat_work / N_QUERIES as u64,
            flat_work as f64 / ivf_work as f64,
            ivf_elapsed,
            flat_elapsed,
            flat_elapsed.as_secs_f64() / ivf_elapsed.as_secs_f64().max(1e-9),
        );
        assert!(
            ivf_work * 3 <= flat_work,
            "IVF at recall ≥ {RECALL_FLOOR} must scan ≤ 1/3 of the flat candidates: {ivf_work} vs {flat_work}"
        );

        let mut g = c.benchmark_group(format!("vector_index/{n}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(N_QUERIES as u64));
        g.bench_function(BenchmarkId::new("flat", n), |b| {
            b.iter(|| black_box(flat.search_batch(&refs, K)))
        });
        g.bench_function(BenchmarkId::new(format!("ivf_nprobe{chosen}"), n), |b| {
            b.iter(|| black_box(ivf.search_batch(&refs, K)))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vector_index
}
criterion_main!(benches);
