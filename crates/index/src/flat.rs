//! Exact nearest-neighbor search by blocked linear scan.

use crate::metric::Metric;
use crate::store::VectorStore;
use crate::{simd, Hit, IndexStats, TopK, VectorIndex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows per scan block. Batched queries revisit each block while it is
/// hot in L1/L2: the store is walked once per *block*, not once per
/// query, which is what makes `search_batch` faster than k independent
/// scans even though the arithmetic is identical.
const SCAN_BLOCK: usize = 256;

/// Exact k-NN over a [`VectorStore`] — the correctness baseline every
/// approximate index is measured against.
///
/// Distances are computed by the fused [`crate::simd`] block kernels
/// (one query against a whole contiguous block, no per-row call
/// overhead), dispatched at runtime between the AVX2 arm and the
/// `querc_linalg::ops` scalar reference. The arms are bit-identical, so
/// results (values *and* bits) still match the historical row-by-row
/// brute force; only the selection rule is newly deterministic
/// (`(distance, id)` total order, see the crate docs).
#[derive(Debug)]
pub struct FlatIndex {
    store: VectorStore,
    metric: Metric,
    searches: AtomicU64,
    candidates: AtomicU64,
}

impl FlatIndex {
    /// Index an existing store under `metric`.
    pub fn new(store: VectorStore, metric: Metric) -> FlatIndex {
        FlatIndex {
            store,
            metric,
            searches: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
        }
    }

    /// Bulk-build from row data (see [`VectorStore::from_rows`]).
    ///
    /// # Panics
    /// If `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f32>], metric: Metric) -> FlatIndex {
        FlatIndex::new(VectorStore::from_rows(rows), metric)
    }

    /// The indexed store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The index's metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Distances from `query` to rows `[block_start, block_end)`,
    /// written to `buf[..block_end - block_start]`.
    #[inline]
    fn scan_block(&self, query: &[f32], block_start: usize, block_end: usize, buf: &mut [f32]) {
        let stride = self.store.stride();
        let data = &self.store.data()[block_start * stride..block_end * stride];
        self.metric
            .distance_block(query, data, stride, &mut buf[..block_end - block_start]);
    }
}

impl VectorIndex for FlatIndex {
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.candidates
            .fetch_add(self.store.len() as u64, Ordering::Relaxed);
        let n = self.store.len();
        let mut top = TopK::new(k);
        let mut buf = [0.0f32; SCAN_BLOCK];
        let mut block_start = 0usize;
        while block_start < n {
            let block_end = (block_start + SCAN_BLOCK).min(n);
            self.scan_block(query, block_start, block_end, &mut buf);
            top.push_block(block_start as u32, &buf[..block_end - block_start]);
            block_start = block_end;
        }
        top.into_sorted()
    }

    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Hit>> {
        self.searches
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.candidates
            .fetch_add((queries.len() * self.store.len()) as u64, Ordering::Relaxed);
        let mut tops: Vec<TopK> = queries.iter().map(|_| TopK::new(k)).collect();
        let n = self.store.len();
        let mut buf = [0.0f32; SCAN_BLOCK];
        let mut block_start = 0usize;
        while block_start < n {
            let block_end = (block_start + SCAN_BLOCK).min(n);
            for (q, top) in queries.iter().zip(tops.iter_mut()) {
                self.scan_block(q, block_start, block_end, &mut buf);
                top.push_block(block_start as u32, &buf[..block_end - block_start]);
            }
            block_start = block_end;
        }
        tops.into_iter().map(TopK::into_sorted).collect()
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn stats(&self) -> IndexStats {
        let searches = self.searches.load(Ordering::Relaxed);
        IndexStats {
            searches,
            probes: searches,
            candidates: self.candidates.load(Ordering::Relaxed),
            partitions: 1,
            exact: true,
            backend: "flat",
            kernel: simd::kernel_name(),
            resident_bytes: self.store.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec<f32>> {
        (0..20).map(|i| vec![i as f32, 0.0]).collect()
    }

    #[test]
    fn search_finds_exact_neighbors_in_order() {
        let ix = FlatIndex::from_rows(&grid(), Metric::Euclidean);
        let hits = ix.search(&[7.2, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![7, 8, 6]);
        assert!(hits[0].1 <= hits[1].1 && hits[1].1 <= hits[2].1);
    }

    #[test]
    fn batch_matches_single_and_spans_blocks() {
        // More rows than one scan block, to exercise block boundaries.
        let rows: Vec<Vec<f32>> = (0..(SCAN_BLOCK * 2 + 17))
            .map(|i| vec![(i as f32).sin(), (i as f32).cos()])
            .collect();
        let ix = FlatIndex::from_rows(&rows, Metric::Euclidean);
        let queries: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32 * 0.3, 0.5]).collect();
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let batched = ix.search_batch(&refs, 4);
        for (q, hits) in refs.iter().zip(&batched) {
            assert_eq!(*hits, ix.search(q, 4));
        }
    }

    #[test]
    fn k_clamps_to_len_and_empty_k() {
        let ix = FlatIndex::from_rows(&grid(), Metric::Euclidean);
        assert_eq!(ix.search(&[0.0, 0.0], 100).len(), 20);
        assert_eq!(ix.search(&[0.0, 0.0], 0).len(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let ix = FlatIndex::from_rows(&grid(), Metric::Euclidean);
        let _ = ix.search(&[1.0, 0.0], 2);
        let q = [[2.0f32, 0.0], [3.0, 0.0]];
        let refs: Vec<&[f32]> = q.iter().map(|v| v.as_slice()).collect();
        let _ = ix.search_batch(&refs, 2);
        let s = ix.stats();
        assert_eq!(s.searches, 3);
        assert_eq!(s.probes, 3);
        assert_eq!(s.candidates, 60, "3 searches × 20 rows");
        assert!(s.exact);
        assert_eq!(s.partitions, 1);
        assert_eq!(s.candidates_per_search(), 20.0);
        assert_eq!(s.backend, "flat");
        assert_eq!(s.kernel, simd::kernel_name());
        assert_eq!(s.resident_bytes, ix.store().memory_bytes());
    }

    #[test]
    fn cosine_metric_is_supported() {
        let rows = vec![vec![1.0f32, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]];
        let ix = FlatIndex::from_rows(&rows, Metric::Cosine);
        let hits = ix.search(&[10.0, 0.1], 1);
        assert_eq!(hits[0].0, 0, "cosine ignores magnitude");
    }
}
