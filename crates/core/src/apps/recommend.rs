//! Next-query recommendation (paper §4, "Query recommendation").
//!
//! Model: cluster the embedding space, learn a per-user first-order
//! Markov chain over cluster transitions from session history, and
//! recommend the witness query of the most likely next cluster. Simple,
//! but exactly the structure SnipSuggest-style systems refine — and built
//! entirely from generic embeddings, no query-fragment engineering.

use querc_cluster::{kmeans, KMeansConfig};
use querc_embed::Embedder;
use querc_linalg::Pcg32;
use std::sync::Arc;

/// A trained next-query recommender.
pub struct QueryRecommender {
    embedder: Arc<dyn Embedder>,
    centroids: Vec<Vec<f32>>,
    /// Witness SQL per cluster.
    witnesses: Vec<String>,
    /// `transitions[from][to]` = observed count + 1 (Laplace smoothing).
    transitions: Vec<Vec<f64>>,
}

impl QueryRecommender {
    /// Train from per-user ordered query histories.
    pub fn train(
        histories: &[Vec<String>],
        embedder: Arc<dyn Embedder>,
        k: usize,
        seed: u64,
    ) -> QueryRecommender {
        let all: Vec<&str> = histories
            .iter()
            .flat_map(|h| h.iter().map(String::as_str))
            .collect();
        assert!(!all.is_empty(), "need at least one query");
        let points: Vec<Vec<f32>> = all.iter().map(|s| embedder.embed_sql(s)).collect();
        let mut rng = Pcg32::with_stream(seed, 0x4ec0);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: k.min(points.len()),
                ..Default::default()
            },
            &mut rng,
        );
        let witnesses: Vec<String> = result
            .witnesses(&points)
            .into_iter()
            .map(|i| all[i].to_string())
            .collect();
        let kk = result.centroids.len();
        let mut transitions = vec![vec![1.0f64; kk]; kk];
        // Re-embed per history to track positions.
        let mut cursor = 0usize;
        for h in histories {
            let assigns: Vec<usize> =
                (0..h.len()).map(|j| result.assignments[cursor + j]).collect();
            cursor += h.len();
            for w in assigns.windows(2) {
                transitions[w[0]][w[1]] += 1.0;
            }
        }
        QueryRecommender {
            embedder,
            centroids: result.centroids,
            witnesses,
            transitions,
        }
    }

    /// Cluster id of a query.
    pub fn cluster_of(&self, sql: &str) -> usize {
        let v = self.embedder.embed_sql(sql);
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (c, cent) in self.centroids.iter().enumerate() {
            let d = querc_linalg::ops::sq_dist(&v, cent);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Recommend the most likely next query given the last one.
    pub fn recommend(&self, last_sql: &str) -> &str {
        let from = self.cluster_of(last_sql);
        let row = &self.transitions[from];
        let to = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(from);
        &self.witnesses[to]
    }

    /// Top-n next-cluster witnesses, most likely first.
    pub fn recommend_n(&self, last_sql: &str, n: usize) -> Vec<&str> {
        let from = self.cluster_of(last_sql);
        let mut ranked: Vec<(usize, f64)> = self.transitions[from]
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
            .into_iter()
            .take(n)
            .map(|(i, _)| self.witnesses[i].as_str())
            .collect()
    }

    /// Held-out hit rate: fraction of consecutive pairs where the true
    /// next cluster is the recommended one.
    pub fn holdout_hit_rate(&self, histories: &[Vec<String>]) -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for h in histories {
            for w in h.windows(2) {
                let rec = self.recommend(&w[0]);
                if self.cluster_of(rec) == self.cluster_of(&w[1]) {
                    hits += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    /// Users alternate deterministically: lookup → aggregate → lookup …
    fn histories(n_users: usize, len: usize) -> Vec<Vec<String>> {
        (0..n_users)
            .map(|u| {
                (0..len)
                    .map(|i| {
                        if i % 2 == 0 {
                            format!("select v from point_lookup where k = {}", u * 100 + i)
                        } else {
                            format!("select g, sum(v) from rollup_facts group by g -- {u}")
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn recommender() -> QueryRecommender {
        QueryRecommender::train(
            &histories(5, 20),
            Arc::new(BagOfTokens::new(64, true)),
            2,
            7,
        )
    }

    #[test]
    fn learns_the_alternating_pattern() {
        let r = recommender();
        let after_lookup = r.recommend("select v from point_lookup where k = 999");
        assert!(
            after_lookup.contains("group by"),
            "after a lookup, recommend the rollup: {after_lookup}"
        );
        let after_rollup = r.recommend("select g, sum(v) from rollup_facts group by g -- x");
        assert!(
            after_rollup.contains("point_lookup"),
            "after a rollup, recommend the lookup: {after_rollup}"
        );
    }

    #[test]
    fn holdout_hit_rate_beats_chance() {
        let r = recommender();
        let held = histories(3, 12);
        let rate = r.holdout_hit_rate(&held);
        assert!(rate > 0.8, "alternation is deterministic; got {rate}");
    }

    #[test]
    fn recommend_n_is_ranked_and_bounded() {
        let r = recommender();
        let recs = r.recommend_n("select v from point_lookup where k = 1", 5);
        assert!(!recs.is_empty() && recs.len() <= 2, "only 2 clusters exist");
    }

    #[test]
    fn single_history_single_cluster() {
        let h = vec![vec!["select 1".to_string(), "select 1".to_string()]];
        let r = QueryRecommender::train(&h, Arc::new(BagOfTokens::new(16, false)), 1, 3);
        assert_eq!(r.recommend("select 1"), "select 1");
    }
}
