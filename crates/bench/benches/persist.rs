//! Persistence-plane benchmark: checkpoint/restore wall time and
//! snapshot size as the warm embed cache grows (10k and 100k vectors).
//!
//! The snapshot payload is dominated by the cached template vectors
//! (64 floats each here); models and registry state are a fixed few
//! kilobytes. Alongside the criterion timings, the harness writes
//! `BENCH_persist.json` at the repo root — absolute wall-times and
//! byte counts per cache size — so the perf trajectory is tracked
//! across PRs. A delta append of 1k fresh vectors is timed too: it
//! must not scale with the size of the existing snapshot's warm set.

use criterion::{criterion_group, criterion_main, Criterion};
use querc::apps::{ResourcesApp, TrainCorpus};
use querc::{LabeledQuery, WorkloadManager, WorkloadManagerConfig};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::QueryRecord;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn training_corpus() -> TrainCorpus {
    let records: Vec<QueryRecord> = (0..64u64)
        .map(|i| QueryRecord {
            sql: format!("select v from kv_store where k = {i}"),
            user: format!("acct/u{}", i % 4),
            account: "acct".into(),
            cluster: "c0".into(),
            dialect: "generic".into(),
            runtime_ms: [5.0, 300.0, 2000.0][(i % 3) as usize],
            mem_mb: 10.0,
            error_code: None,
            timestamp: i,
        })
        .collect();
    TrainCorpus::from_records(records, 0xbe7c)
}

/// One distinct template per `i` — each lands one vector in the cache.
fn distinct_template(i: usize) -> LabeledQuery {
    LabeledQuery::new(format!("select c0, c1 from table_{i} where x = 1"))
}

/// A manager whose embed cache holds exactly `vectors` warm entries.
fn warm_manager(corpus: &TrainCorpus, vectors: usize) -> WorkloadManager {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 256,
        embed_cache_capacity: 1 << 17,
        ..Default::default()
    });
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
    mgr.register(ResourcesApp::new(shared), corpus).unwrap();
    let mut i = 0;
    while i < vectors {
        let chunk = (vectors - i).min(2048);
        mgr.submit_batch("resources", (i..i + chunk).map(distinct_template))
            .unwrap();
        i += chunk;
    }
    mgr
}

struct Measured {
    vectors: usize,
    snapshot_bytes: u64,
    checkpoint_ms: f64,
    restore_ms: f64,
    delta_append_ms: f64,
    delta_bytes: u64,
}

fn measure(corpus: &TrainCorpus, vectors: usize, path: &PathBuf) -> Measured {
    let mgr = warm_manager(corpus, vectors);

    let t = Instant::now();
    mgr.checkpoint(path).unwrap();
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = std::fs::metadata(path).unwrap().len();

    // A tenth of the warm set arrives as fresh templates after the full
    // snapshot → delta append must cost ~that tenth, not the whole set.
    let delta_n = (vectors / 10).max(16);
    mgr.submit_batch(
        "resources",
        (0..delta_n).map(|i| distinct_template(vectors + i)),
    )
    .unwrap();
    let t = Instant::now();
    mgr.checkpoint_delta(path).unwrap();
    let delta_append_ms = t.elapsed().as_secs_f64() * 1e3;
    let delta_bytes = std::fs::metadata(path).unwrap().len() - snapshot_bytes;
    drop(mgr.drain());

    let t = Instant::now();
    let restored = WorkloadManager::restore(
        path,
        WorkloadManagerConfig {
            embed_cache_capacity: 1 << 17,
            ..Default::default()
        },
    )
    .unwrap();
    let restore_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(restored.drain());

    Measured {
        vectors,
        snapshot_bytes,
        checkpoint_ms,
        restore_ms,
        delta_append_ms,
        delta_bytes,
    }
}

fn write_report(rows: &[Measured]) {
    let mut out =
        String::from("{\n  \"bench\": \"persist\",\n  \"unit\": \"ms\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"vectors\": {}, \"snapshot_bytes\": {}, \"checkpoint_ms\": {:.2}, \"restore_ms\": {:.2}, \"delta_append_ms\": {:.2}, \"delta_bytes\": {}}}{}\n",
            r.vectors,
            r.snapshot_bytes,
            r.checkpoint_ms,
            r.restore_ms,
            r.delta_append_ms,
            r.delta_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let dest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_persist.json");
    std::fs::write(&dest, out).unwrap();
    println!("wrote {}", dest.display());
}

fn bench_persist(c: &mut Criterion) {
    // Smoke mode covers both `--test` runs and the CI bench-smoke step
    // (`cargo test --benches` runs harness-less benches under the test
    // profile, where debug_assertions are on): tiny sizes, and the
    // committed trajectory report is left alone — only a real
    // `cargo bench` run may rewrite BENCH_persist.json.
    let test_mode = std::env::args().any(|a| a == "--test") || cfg!(debug_assertions);
    let corpus = training_corpus();
    let snap =
        std::env::temp_dir().join(format!("querc_bench_persist_{}.snap", std::process::id()));

    let sizes: &[usize] = if test_mode {
        &[256]
    } else {
        &[10_000, 100_000]
    };
    let rows: Vec<Measured> = sizes.iter().map(|&n| measure(&corpus, n, &snap)).collect();
    for r in &rows {
        assert!(r.snapshot_bytes > 0);
        assert!(
            r.delta_bytes < r.snapshot_bytes,
            "a 1k-vector delta must be smaller than the full snapshot"
        );
    }
    if !test_mode {
        write_report(&rows);
    }

    // Criterion timings at the small size: steady-state checkpoint and
    // restore latency, snapshot reused across iterations.
    let mgr = warm_manager(&corpus, sizes[0]);
    let mut g = c.benchmark_group("persist");
    g.sample_size(10);
    g.bench_function("checkpoint_10k", |b| {
        b.iter(|| {
            mgr.checkpoint(&snap).unwrap();
            black_box(());
        })
    });
    mgr.checkpoint(&snap).unwrap();
    g.bench_function("restore_10k", |b| {
        b.iter(|| {
            let m = WorkloadManager::restore(&snap, WorkloadManagerConfig::default()).unwrap();
            black_box(m.app_names().len());
        })
    });
    g.finish();
    drop(mgr.drain());
    let _ = std::fs::remove_file(&snap);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_persist
}
criterion_main!(benches);
