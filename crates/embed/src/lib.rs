//! # querc-embed
//!
//! Learned vector representations for SQL queries — the core technical
//! contribution of *Database-Agnostic Workload Management* (Jain et al.,
//! CIDR 2019), implemented from scratch on `querc-linalg`.
//!
//! The paper evaluates two embedders (its §3):
//!
//! * [`doc2vec::Doc2Vec`] — context-prediction paragraph vectors (PV-DM and
//!   PV-DBOW variants of Le & Mikolov) with negative sampling;
//! * [`lstm::LstmAutoencoder`] — a sequence-to-sequence LSTM autoencoder
//!   whose final encoder hidden state is the query embedding (paper Fig 2).
//!
//! Both implement the [`Embedder`] trait consumed by `querc`'s classifiers
//! and by the offline summarization pipeline. A hashed bag-of-tokens
//! embedder ([`bow::BagOfTokens`]) is included as a cheap non-neural
//! baseline for ablations, alongside the hand-engineered features in
//! `querc-sql::features`.
//!
//! All embedders consume *normalized token streams* from
//! [`querc_sql::normalize`]: literals are collapsed to placeholders but
//! identifiers survive, which is what lets a generic model pick up schema
//! vocabulary (the mechanism behind the paper's near-perfect account
//! labeling).

#![deny(missing_docs)]

pub mod bow;
pub mod doc2vec;
pub mod embedder;
pub mod io;
pub mod lstm;
pub mod vocab;

pub use bow::BagOfTokens;
pub use doc2vec::{Doc2Vec, Doc2VecConfig, Doc2VecMode};
pub use embedder::{embed_corpus, Embedder};
pub use lstm::{LstmAutoencoder, LstmConfig};
pub use vocab::{Vocab, VocabConfig};

/// Tokenize + normalize SQL text the way every embedder in this crate
/// expects. Uses the Generic dialect so any tenant's SQL is accepted.
pub fn sql_tokens(sql: &str) -> Vec<String> {
    querc_sql::normalize::normalize_sql(sql, querc_sql::Dialect::Generic)
}
