//! Query normalization for representation learning.
//!
//! The embedders in `querc-embed` consume *normalized token streams*, the
//! same preprocessing Jain et al. apply before Doc2Vec / LSTM training:
//!
//! * keywords and identifiers lowercased (identifiers are **kept**, not
//!   masked — schema vocabulary is precisely the signal that makes account
//!   prediction work in the paper's §5.2);
//! * literals collapsed to class placeholders (`<num>`, `<str>`) so the
//!   embedding reflects query *shape*, not parameter values;
//! * bind parameters collapsed to `<param>`;
//! * comments dropped, punctuation and operators kept as their own tokens.

use crate::dialect::Dialect;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Placeholder token for numeric literals.
pub const NUM: &str = "<num>";
/// Placeholder token for string literals.
pub const STR: &str = "<str>";
/// Placeholder token for bind parameters.
pub const PARAM: &str = "<param>";

/// Normalize an already-lexed token stream into embedder tokens.
pub fn normalize_tokens(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        match t.kind {
            TokenKind::Keyword | TokenKind::Ident => out.push(t.text.to_ascii_lowercase()),
            TokenKind::QuotedIdent => out.push(t.ident_name().to_ascii_lowercase()),
            TokenKind::Number => out.push(NUM.to_string()),
            TokenKind::StringLit => out.push(STR.to_string()),
            TokenKind::Param => out.push(PARAM.to_string()),
            TokenKind::Operator | TokenKind::Punct => out.push(t.text.clone()),
            TokenKind::Comment => {}
            TokenKind::Other => out.push("<other>".to_string()),
        }
    }
    out
}

/// Lex and normalize in one step.
pub fn normalize_sql(sql: &str, dialect: Dialect) -> Vec<String> {
    normalize_tokens(&tokenize(sql, dialect))
}

/// Canonical single-line text form of a normalized query (tokens joined by
/// single spaces). Two queries with the same shape and schema references
/// have identical normalized text, which is how the security-audit
/// experiment detects verbatim-identical queries across users.
pub fn normalized_text(sql: &str, dialect: Dialect) -> String {
    normalize_sql(sql, dialect).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_become_placeholders() {
        let toks = normalize_sql(
            "SELECT * FROM orders WHERE o_totalprice > 100.5 AND o_comment = 'x'",
            Dialect::Generic,
        );
        assert!(toks.contains(&NUM.to_string()));
        assert!(toks.contains(&STR.to_string()));
        assert!(!toks.iter().any(|t| t == "100.5" || t == "'x'"));
    }

    #[test]
    fn identifiers_survive_lowercased() {
        let toks = normalize_sql("SELECT C_Name FROM Customer", Dialect::Generic);
        assert_eq!(toks, ["select", "c_name", "from", "customer"]);
    }

    #[test]
    fn params_unify_across_dialect_markers() {
        let a = normalized_text("select * from t where x = ?", Dialect::Generic);
        let b = normalized_text("select * from t where x = $1", Dialect::Postgres);
        let c = normalized_text("select * from t where x = @p", Dialect::TSql);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn same_shape_different_literals_normalize_identically() {
        let a = normalized_text(
            "select o_orderkey from orders where o_totalprice > 100",
            Dialect::Generic,
        );
        let b = normalized_text(
            "SELECT o_orderkey FROM orders WHERE o_totalprice > 99999",
            Dialect::Generic,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn quoted_identifiers_unquoted_and_folded() {
        let t = normalized_text("select \"My Col\" from [My Table]", Dialect::Generic);
        assert_eq!(t, "select my col from my table");
    }

    #[test]
    fn comments_removed() {
        let t = normalized_text("select 1 -- hi\n from t", Dialect::Generic);
        assert_eq!(t, "select <num> from t");
    }

    #[test]
    fn normalization_is_idempotent_on_its_own_output() {
        let once = normalized_text(
            "SELECT a, b FROM t WHERE a = 5 AND b LIKE 'x%'",
            Dialect::Generic,
        );
        let twice = normalized_text(&once, Dialect::Generic);
        // `<num>` style placeholders re-lex as operator '<' etc., so exact
        // idempotence needs the placeholders to survive. They do not re-lex
        // to themselves, so we instead require stability of the alphabetic
        // skeleton — the property the embedders rely on.
        let skeleton = |s: &str| {
            s.split_whitespace()
                .filter(|w| w.chars().all(|c| c.is_ascii_alphabetic() || c == '_'))
                // Re-lexed placeholder fragments (`<num>` → `num`) are not
                // part of the alphabetic skeleton either.
                .filter(|w| !matches!(*w, "num" | "str" | "param" | "other"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(skeleton(&once), skeleton(&twice));
    }

    #[test]
    fn empty_input() {
        assert!(normalize_sql("", Dialect::Generic).is_empty());
        assert_eq!(normalized_text("", Dialect::Generic), "");
    }
}
