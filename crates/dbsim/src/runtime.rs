//! Workload execution simulation.
//!
//! Replays a workload of SQL texts under an index configuration: each
//! query is parsed, planned (by estimated cost) and charged its *true*
//! cost. Returns per-query seconds — the data behind Figures 3 and 4.

use crate::catalog::Catalog;
use crate::index::Index;
use crate::optimizer::plan_query;
use querc_sql::{parse_query, Dialect};

/// Result of replaying one workload.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// True execution seconds per query, in input order.
    pub per_query_secs: Vec<f64>,
    /// Sum of `per_query_secs`.
    pub total_secs: f64,
}

/// Replay `sqls` under `indexes`.
pub fn run_workload(sqls: &[&str], catalog: &Catalog, indexes: &[Index]) -> WorkloadRun {
    let per_query_secs: Vec<f64> = sqls
        .iter()
        .map(|sql| {
            let shape = parse_query(sql, Dialect::Generic);
            plan_query(&shape, catalog, indexes).true_cost
        })
        .collect();
    let total_secs = per_query_secs.iter().sum();
    WorkloadRun {
        per_query_secs,
        total_secs,
    }
}

/// Total workload runtime only.
pub fn workload_runtime(sqls: &[&str], catalog: &Catalog, indexes: &[Index]) -> f64 {
    run_workload(sqls, catalog, indexes).total_secs
}

/// Estimated (optimizer-believed) total cost — what the advisor optimizes.
pub fn workload_estimate(sqls: &[&str], catalog: &Catalog, indexes: &[Index]) -> f64 {
    sqls.iter()
        .map(|sql| {
            let shape = parse_query(sql, Dialect::Generic);
            plan_query(&shape, catalog, indexes).est_cost
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_workloads::TpchWorkload;

    #[test]
    fn per_query_matches_total() {
        let w = TpchWorkload::generate(2, 1);
        let cat = Catalog::tpch_sf1();
        let run = run_workload(&w.sql(), &cat, &[]);
        assert_eq!(run.per_query_secs.len(), 44);
        let sum: f64 = run.per_query_secs.iter().sum();
        assert!((sum - run.total_secs).abs() < 1e-9);
        assert!(run.per_query_secs.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn baseline_tpch_runtime_is_in_paper_ballpark() {
        // The paper's no-index plateau is ~1200 s for ~840 queries. We only
        // need the right order of magnitude for the shape to carry over.
        let w = TpchWorkload::generate(38, 7);
        let cat = Catalog::tpch_sf1();
        let total = workload_runtime(&w.sql(), &cat, &[]);
        assert!(
            (300.0..4000.0).contains(&total),
            "no-index total {total} out of range"
        );
    }

    #[test]
    fn good_indexes_reduce_total_runtime() {
        let w = TpchWorkload::generate(8, 3);
        let cat = Catalog::tpch_sf1();
        let base = workload_runtime(&w.sql(), &cat, &[]);
        let good = [
            Index::new("lineitem", &["l_shipdate"]),
            Index::new("orders", &["o_orderdate"]),
        ];
        let with = workload_runtime(&w.sql(), &cat, &good);
        assert!(with < base, "date indexes should help: {with} vs {base}");
    }

    #[test]
    fn estimate_and_truth_agree_without_wedge_queries() {
        let sqls = [
            "select * from region",
            "select * from nation where n_name = 'FRANCE'",
        ];
        let cat = Catalog::tpch_sf1();
        let est = workload_estimate(&sqls, &cat, &[]);
        let tru = workload_runtime(&sqls, &cat, &[]);
        assert!((est - tru).abs() / tru < 0.01);
    }
}
