//! Query-routing policy checking (paper §4, "Enforcing query routing
//! policies").
//!
//! Routing policies (SLAs, isolation, audit requirements) assign queries
//! to clusters; in practice they are hand-maintained and drift. Under the
//! paper's hypothesis that queries governed by one policy look alike,
//! a classifier trained on historical (query → cluster) assignments can
//! flag queries whose predicted cluster disagrees with the assigned one —
//! surfacing policy misconfigurations without parsing a single rule.

use super::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
use crate::classifier::TrainedLabeler;
use crate::enriched::EnrichedQuery;
use crate::error::Result;
use querc_embed::Embedder;
use querc_learn::{Classifier, ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::sync::Arc;

/// One suspected misrouting.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingAnomaly {
    /// Index into the checked batch.
    pub index: usize,
    /// The cluster the routing policy actually assigned.
    pub assigned_cluster: String,
    /// The cluster the learned model expected.
    pub predicted_cluster: String,
    /// Classifier confidence in the predicted cluster (mean tree vote).
    pub confidence: f64,
}

/// A trained routing-policy checker.
pub struct RoutingChecker {
    embedder: Arc<dyn Embedder>,
    model: RandomForest,
    labels: crate::classifier::LabelMap,
    /// Only disagreements at or above this confidence are reported.
    pub min_confidence: f64,
}

impl RoutingChecker {
    /// Learn historical routing from labeled records.
    pub fn train(
        records: &[QueryRecord],
        embedder: Arc<dyn Embedder>,
        min_confidence: f64,
        seed: u64,
    ) -> RoutingChecker {
        let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
        let vectors = embedder.embed_batch(&docs);
        let (labels, ids) =
            crate::classifier::LabelMap::from_labels(records.iter().map(|r| r.cluster.as_str()));
        let mut model = RandomForest::new(ForestConfig::extra_trees(40));
        let mut rng = Pcg32::with_stream(seed, 0x4072);
        model.fit(&vectors, &ids, labels.len().max(1), &mut rng);
        RoutingChecker {
            embedder,
            model,
            labels,
            min_confidence,
        }
    }

    /// Check a batch of assignments; returns suspected misroutings.
    /// Embeds through the batched path.
    pub fn check(&self, records: &[QueryRecord]) -> Vec<RoutingAnomaly> {
        let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
        self.predict_batch(&docs)
            .into_iter()
            .zip(records)
            .enumerate()
            .filter_map(|(index, ((predicted, confidence), r))| {
                (predicted != r.cluster && confidence >= self.min_confidence).then_some(
                    RoutingAnomaly {
                        index,
                        assigned_cluster: r.cluster.clone(),
                        predicted_cluster: predicted,
                        confidence,
                    },
                )
            })
            .collect()
    }

    /// Predict the policy cluster for a brand-new query.
    pub fn predict(&self, sql: &str) -> String {
        self.predict_vector(&self.embedder.embed_sql(sql)).0
    }

    /// Predict `(cluster, confidence)` from a precomputed embedding
    /// vector — the single decision rule shared by the SQL-level,
    /// batched, and serving paths.
    pub fn predict_vector(&self, v: &[f32]) -> (String, f64) {
        let proba = self.model.proba(v);
        match querc_linalg::stats::argmax(&proba) {
            Some(best) => (
                self.labels
                    .name(best as u32)
                    .unwrap_or("<unknown>")
                    .to_string(),
                proba[best] as f64,
            ),
            None => ("<unknown>".to_string(), 0.0),
        }
    }

    /// Predict `(cluster, confidence)` for a chunk of pre-tokenized
    /// queries through the embedder's batched path.
    pub fn predict_batch(&self, docs: &[Vec<String>]) -> Vec<(String, f64)> {
        self.embedder
            .embed_batch(docs)
            .iter()
            .map(|v| self.predict_vector(v))
            .collect()
    }

    /// Distinct clusters seen at training time.
    pub fn known_clusters(&self) -> usize {
        self.labels.len()
    }
}

/// [`RoutingChecker`] behind the uniform [`WorkloadApp`] interface.
///
/// Labels attached per query: `predicted_cluster`,
/// `routing_confidence`, plus `routing_anomaly=true` when the query
/// carries a `cluster` label that disagrees with a confident
/// prediction.
pub struct RoutingApp {
    embedder: Arc<dyn Embedder>,
    /// Disagreements below this confidence are not flagged.
    pub min_confidence: f64,
}

impl RoutingApp {
    /// A routing-check app over `embedder` with the default confidence
    /// threshold.
    pub fn new(embedder: Arc<dyn Embedder>) -> RoutingApp {
        RoutingApp {
            embedder,
            min_confidence: 0.6,
        }
    }

    /// Override the minimum confidence for flagging a disagreement.
    pub fn with_min_confidence(mut self, min_confidence: f64) -> RoutingApp {
        self.min_confidence = min_confidence;
        self
    }
}

/// A fitted routing model plus its training size.
pub struct RoutingModel {
    /// The underlying trained checker (bespoke entry point).
    pub checker: RoutingChecker,
    trained_queries: usize,
}

impl WorkloadApp for RoutingApp {
    type Model = RoutingModel;

    fn name(&self) -> &'static str {
        "routing"
    }

    fn task(&self) -> &'static str {
        "learn historical query routing; flag assignments the model contradicts"
    }

    fn fit(&self, corpus: &TrainCorpus) -> Result<RoutingModel> {
        corpus.require_records("routing.fit")?;
        Ok(RoutingModel {
            checker: RoutingChecker::train(
                &corpus.records,
                Arc::clone(&self.embedder),
                self.min_confidence,
                corpus.seed ^ 0x4072,
            ),
            trained_queries: corpus.len(),
        })
    }

    fn label_batch(&self, model: &RoutingModel, batch: &[EnrichedQuery]) -> Result<Vec<AppOutput>> {
        let vectors = EnrichedQuery::vectors(batch, model.checker.embedder.as_ref());
        Ok(batch
            .iter()
            .zip(vectors)
            .map(|(q, v)| {
                let (cluster, confidence) = model.checker.predict_vector(&v);
                let mut out = AppOutput::new();
                if let Some(assigned) = q.get("cluster") {
                    let anomalous =
                        assigned != cluster && confidence >= model.checker.min_confidence;
                    out.set("routing_anomaly", anomalous.to_string());
                }
                out.set("predicted_cluster", cluster);
                out.set("routing_confidence", format!("{confidence:.3}"));
                out
            })
            .collect())
    }

    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        Some(Arc::clone(&self.embedder))
    }

    fn report(&self, model: &RoutingModel) -> AppReport {
        AppReport {
            app: self.name().to_string(),
            task: self.task().to_string(),
            trained_queries: model.trained_queries,
            detail: vec![
                (
                    "embedder".to_string(),
                    model.checker.embedder.name().to_string(),
                ),
                (
                    "clusters".to_string(),
                    model.checker.known_clusters().to_string(),
                ),
                (
                    "min_confidence".to_string(),
                    format!("{:.2}", model.checker.min_confidence),
                ),
            ],
        }
    }

    fn save_model(&self, model: &RoutingModel) -> Option<String> {
        crate::persist::to_json(&RoutingState {
            forest: model.checker.model.to_state(),
            labels: model.checker.labels.names().to_vec(),
            min_confidence: model.checker.min_confidence,
            trained_queries: model.trained_queries,
        })
    }

    fn load_model(&self, json: &str) -> Result<RoutingModel> {
        let state: RoutingState = crate::persist::from_json(json, "routing model")?;
        crate::persist::check_forest(&state.forest, self.embedder.dim())?;
        let model =
            RandomForest::from_state(state.forest).map_err(crate::persist::bad_learn_state)?;
        let labels = crate::classifier::LabelMap::from_names(&state.labels)
            .ok_or_else(|| crate::persist::corrupt("routing model: duplicate cluster names"))?;
        Ok(RoutingModel {
            checker: RoutingChecker {
                embedder: Arc::clone(&self.embedder),
                model,
                labels,
                min_confidence: state.min_confidence,
            },
            trained_queries: state.trained_queries,
        })
    }
}

/// Serialized form of a [`RoutingModel`]: the forest, the cluster
/// vocabulary in class-id order, and the label-time confidence floor.
#[derive(serde::Serialize, serde::Deserialize)]
struct RoutingState {
    forest: querc_learn::ForestState,
    labels: Vec<String>,
    min_confidence: f64,
    trained_queries: usize,
}

/// Convenience: a plain (embedder, labeler) cluster classifier for use in
/// the generic labeling pipeline.
pub fn train_cluster_labeler(
    records: &[QueryRecord],
    embedder: &Arc<dyn Embedder>,
    seed: u64,
) -> TrainedLabeler {
    let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
    let vectors = embedder.embed_batch(&docs);
    let names: Vec<&str> = records.iter().map(|r| r.cluster.as_str()).collect();
    let mut rng = Pcg32::with_stream(seed, 0x4073);
    TrainedLabeler::train(
        RandomForest::new(ForestConfig::extra_trees(40)),
        &vectors,
        &names,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn records() -> Vec<QueryRecord> {
        (0..60)
            .map(|i| {
                let (cluster, sql) = if i % 2 == 0 {
                    (
                        "etl-cluster",
                        format!("insert into lake_events select * from staging_{}", i % 3),
                    )
                } else {
                    (
                        "bi-cluster",
                        format!("select sum(x) from finance_cube group by dim{}", i % 4),
                    )
                };
                QueryRecord {
                    sql,
                    user: "u".into(),
                    account: "a".into(),
                    cluster: cluster.into(),
                    dialect: "generic".into(),
                    runtime_ms: 1.0,
                    mem_mb: 1.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect()
    }

    #[test]
    fn consistent_routing_raises_no_anomalies() {
        let recs = records();
        let checker = RoutingChecker::train(&recs, Arc::new(BagOfTokens::new(64, true)), 0.6, 1);
        let anomalies = checker.check(&recs);
        assert!(
            anomalies.len() <= recs.len() / 10,
            "clean assignments flagged: {anomalies:?}"
        );
    }

    #[test]
    fn misrouted_query_is_detected() {
        let mut recs = records();
        // A BI query somehow routed to the ETL cluster.
        recs[1].cluster = "etl-cluster".into();
        let checker = RoutingChecker::train(
            &records(), // train on CLEAN history
            Arc::new(BagOfTokens::new(64, true)),
            0.6,
            2,
        );
        let anomalies = checker.check(&recs);
        assert!(anomalies.iter().any(|a| a.index == 1), "{anomalies:?}");
        let a = anomalies.iter().find(|a| a.index == 1).unwrap();
        assert_eq!(a.predicted_cluster, "bi-cluster");
        assert_eq!(a.assigned_cluster, "etl-cluster");
    }

    #[test]
    fn confidence_threshold_suppresses_weak_flags() {
        let recs = records();
        let strict = RoutingChecker::train(
            &recs,
            Arc::new(BagOfTokens::new(64, true)),
            1.01, // impossible confidence
            3,
        );
        assert!(strict.check(&recs).is_empty());
    }

    #[test]
    fn routing_app_implements_workload_app() {
        let corpus = TrainCorpus::from_records(records(), 2);
        let app = RoutingApp::new(Arc::new(BagOfTokens::new(64, true))).with_min_confidence(0.6);
        let model = app.fit(&corpus).unwrap();
        // A BI query mislabeled as routed to the ETL cluster.
        let mut misrouted =
            EnrichedQuery::from_sql("select sum(x) from finance_cube group by dim1");
        misrouted.set("cluster", "etl-cluster");
        let clean = EnrichedQuery::from_sql("insert into lake_events select * from staging_1");
        let out = app.label_batch(&model, &[misrouted, clean]).unwrap();
        assert_eq!(out[0].get("predicted_cluster"), Some("bi-cluster"));
        assert_eq!(out[0].get("routing_anomaly"), Some("true"));
        assert_eq!(out[1].get("predicted_cluster"), Some("etl-cluster"));
        assert_eq!(out[1].get("routing_anomaly"), None);
        let report = app.report(&model);
        assert_eq!(report.app, "routing");
        assert_eq!(report.trained_queries, 60);
    }

    #[test]
    fn model_round_trips_through_save_load() {
        let corpus = TrainCorpus::from_records(records(), 5);
        let app = RoutingApp::new(Arc::new(BagOfTokens::new(64, true))).with_min_confidence(0.55);
        let model = app.fit(&corpus).unwrap();
        let json = app.save_model(&model).expect("forest is persistable");
        let restored = app.load_model(&json).unwrap();
        let mut misrouted =
            EnrichedQuery::from_sql("select sum(x) from finance_cube group by dim1");
        misrouted.set("cluster", "etl-cluster");
        let clean = EnrichedQuery::from_sql("insert into lake_events select * from staging_1");
        let batch = [misrouted, clean];
        assert_eq!(
            app.label_batch(&model, &batch).unwrap(),
            app.label_batch(&restored, &batch).unwrap()
        );
        // The confidence floor is model state, not app state.
        assert!((restored.checker.min_confidence - 0.55).abs() < 1e-12);
        assert_eq!(restored.checker.known_clusters(), 2);
    }

    #[test]
    fn predict_routes_new_queries() {
        let checker =
            RoutingChecker::train(&records(), Arc::new(BagOfTokens::new(64, true)), 0.5, 4);
        assert_eq!(
            checker.predict("select sum(y) from finance_cube group by dim9"),
            "bi-cluster"
        );
        assert_eq!(
            checker.predict("insert into lake_events select * from staging_9"),
            "etl-cluster"
        );
    }
}
