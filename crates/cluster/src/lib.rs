//! # querc-cluster
//!
//! Unsupervised building blocks for offline workload analysis.
//!
//! The paper's workload-summarization pipeline (§5.1) is: embed every
//! query, run K-means with K chosen by the elbow method, and keep the
//! query nearest each centroid as the summary. This crate supplies that
//! ([`mod@kmeans`], [`elbow`]) plus the classical comparator — K-medoids
//! with a pluggable distance function, the Chaudhuri-et-al.-style approach
//! the paper argues requires custom per-workload distance engineering
//! ([`mod@kmedoids`]) — and [`silhouette`] scores for diagnostics.

pub mod elbow;
pub mod kmeans;
pub mod kmedoids;
pub mod silhouette;

pub use elbow::{choose_k_elbow, sse_curve};
pub use kmeans::{kmeans, nearest_centroid, try_nearest_centroid, KMeansConfig, KMeansResult};
pub use kmedoids::{kmedoids, KMedoidsResult};
pub use silhouette::mean_silhouette;
