//! K-medoids (PAM) with a pluggable distance — the classical comparator.
//!
//! Chaudhuri et al. summarize workloads by clustering with *custom,
//! per-application distance functions* and keeping a witness query per
//! cluster. This module implements that strategy generically: callers
//! supply any pairwise distance over their query representation (syntactic
//! features, edit distance over templates, …). The paper's claim is that
//! K-means over learned embeddings makes this distance engineering
//! unnecessary — benchmarked head-to-head in the summarization ablation.

use querc_linalg::Pcg32;

/// Result of a K-medoids run.
#[derive(Debug, Clone)]
pub struct KMedoidsResult {
    /// Indices of the chosen medoids (these ARE the summary).
    pub medoids: Vec<usize>,
    /// Medoid-slot assignment per input point.
    pub assignments: Vec<usize>,
    /// Total distance of points to their medoids.
    pub cost: f64,
}

/// PAM-style K-medoids over an arbitrary distance function.
///
/// Uses BUILD (greedy) initialization followed by SWAP passes until no
/// single medoid↔non-medoid exchange improves the cost. `O(k·n²)` per
/// pass — fine at workload-summarization scale (hundreds of queries).
pub fn kmedoids<D>(n: usize, k: usize, dist: D, rng: &mut Pcg32) -> KMedoidsResult
where
    D: Fn(usize, usize) -> f32,
{
    assert!(n > 0, "kmedoids on empty input");
    assert!(k > 0, "k must be positive");
    let k = k.min(n);
    let _ = rng; // deterministic BUILD needs no randomness; kept for API parity

    // BUILD: first medoid minimizes total distance; each next greedily
    // maximizes cost reduction.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|j| dist(a, j) as f64).sum();
            let cb: f64 = (0..n).map(|j| dist(b, j) as f64).sum();
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    medoids.push(first);
    let mut nearest: Vec<f32> = (0..n).map(|j| dist(first, j)).collect();
    while medoids.len() < k {
        let mut best_gain = f64::NEG_INFINITY;
        let mut best = None;
        for cand in 0..n {
            if medoids.contains(&cand) {
                continue;
            }
            let gain: f64 = (0..n)
                .map(|j| (nearest[j] - dist(cand, j)).max(0.0) as f64)
                .sum();
            if gain > best_gain {
                best_gain = gain;
                best = Some(cand);
            }
        }
        let Some(m) = best else { break };
        medoids.push(m);
        for (j, near) in nearest.iter_mut().enumerate() {
            *near = near.min(dist(m, j));
        }
    }

    // SWAP: steepest-descent exchanges.
    let mut improved = true;
    let mut guard = 0;
    while improved && guard < 50 {
        improved = false;
        guard += 1;
        let current_cost = total_cost(n, &medoids, &dist);
        let mut best_cost = current_cost;
        let mut best_swap: Option<(usize, usize)> = None;
        for mi in 0..medoids.len() {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[mi] = cand;
                let c = total_cost(n, &trial, &dist);
                if c < best_cost - 1e-9 {
                    best_cost = c;
                    best_swap = Some((mi, cand));
                }
            }
        }
        if let Some((mi, cand)) = best_swap {
            medoids[mi] = cand;
            improved = true;
        }
    }

    // Final assignment.
    let mut assignments = vec![0usize; n];
    let mut cost = 0.0f64;
    for (j, assignment) in assignments.iter_mut().enumerate() {
        let (slot, d) = medoids
            .iter()
            .enumerate()
            .map(|(s, &m)| (s, dist(m, j)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("k >= 1");
        *assignment = slot;
        cost += d as f64;
    }
    KMedoidsResult {
        medoids,
        assignments,
        cost,
    }
}

fn total_cost<D: Fn(usize, usize) -> f32>(n: usize, medoids: &[usize], dist: &D) -> f64 {
    (0..n)
        .map(|j| {
            medoids
                .iter()
                .map(|&m| dist(m, j))
                .fold(f32::INFINITY, f32::min) as f64
        })
        .sum()
}

/// Convenience: K-medoids over points with Euclidean distance.
pub fn kmedoids_euclidean(points: &[Vec<f32>], k: usize, rng: &mut Pcg32) -> KMedoidsResult {
    kmedoids(
        points.len(),
        k,
        |a, b| querc_linalg::ops::dist(&points[a], &points[b]),
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_line_clusters() {
        // Points on a line: {0,1,2} and {10,11,12}.
        let xs = [0.0f32, 1.0, 2.0, 10.0, 11.0, 12.0];
        let res = kmedoids(6, 2, |a, b| (xs[a] - xs[b]).abs(), &mut Pcg32::new(1));
        assert_eq!(res.medoids.len(), 2);
        // Medoids are the middles of each cluster.
        let mut ms: Vec<f32> = res.medoids.iter().map(|&m| xs[m]).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ms, vec![1.0, 11.0]);
        // Assignments split 3/3.
        assert_eq!(res.assignments[0], res.assignments[2]);
        assert_eq!(res.assignments[3], res.assignments[5]);
        assert_ne!(res.assignments[0], res.assignments[3]);
    }

    #[test]
    fn medoids_are_actual_points() {
        let pts: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![i as f32, (i * i % 7) as f32])
            .collect();
        let res = kmedoids_euclidean(&pts, 4, &mut Pcg32::new(2));
        for &m in &res.medoids {
            assert!(m < pts.len());
        }
        // Medoids are distinct.
        let set: std::collections::HashSet<_> = res.medoids.iter().collect();
        assert_eq!(set.len(), res.medoids.len());
    }

    #[test]
    fn cost_zero_when_k_equals_n() {
        let xs = [3.0f32, 7.0, 9.0];
        let res = kmedoids(3, 3, |a, b| (xs[a] - xs[b]).abs(), &mut Pcg32::new(3));
        assert!(res.cost < 1e-9);
    }

    #[test]
    fn custom_distance_is_respected() {
        // A distance that makes index parity the only structure.
        let res = kmedoids(
            10,
            2,
            |a, b| if (a % 2) == (b % 2) { 0.0 } else { 1.0 },
            &mut Pcg32::new(4),
        );
        assert!(res.cost < 1e-9, "parity clusters have zero cost");
        let m0 = res.medoids[0] % 2;
        let m1 = res.medoids[1] % 2;
        assert_ne!(m0, m1, "one medoid per parity class");
    }

    #[test]
    fn swap_improves_over_bad_build() {
        // Regardless of init, final cost must be within 5% of optimum for
        // this simple instance (brute-force check).
        let xs = [0.0f32, 0.5, 1.0, 5.0, 5.5, 6.0, 20.0];
        let res = kmedoids(7, 3, |a, b| (xs[a] - xs[b]).abs(), &mut Pcg32::new(5));
        // Optimal: medoids at 0.5, 5.5, 20 → cost = 1 + 1 + 0 = 2.
        assert!(res.cost <= 2.0 + 1e-6, "cost {}", res.cost);
    }
}
