//! LSTM autoencoder embedder (paper §3, Figure 2).
//!
//! A single-layer LSTM encoder reads the normalized token sequence; its
//! final hidden state initializes a single-layer LSTM decoder trained to
//! reproduce the sequence (teacher forcing, sampled-softmax reconstruction
//! loss). Once trained, **the final encoder hidden state is the query
//! embedding** — exactly the construction in the paper.
//!
//! Everything is implemented from scratch: the LSTM cell forward pass,
//! backpropagation through time across both halves of the autoencoder,
//! sampled softmax against the unigram^0.75 noise distribution, sparse
//! SGD on the (large) embedding/output tables and Adam on the (small)
//! recurrent weights. A finite-difference gradient check in the test
//! module pins the backward pass to the forward pass.

use crate::embedder::Embedder;
use crate::vocab::{Vocab, VocabConfig};
use querc_linalg::{kernel, ops, AliasTable, ComputePool, Matrix, Optimizer, Pcg32};
use serde::{Deserialize, Serialize};

/// LSTM autoencoder hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Token embedding width fed to the LSTMs.
    pub embed_dim: usize,
    /// Hidden-state width — also the output embedding dimensionality.
    pub hidden: usize,
    /// Sequences are truncated to this many tokens.
    pub max_len: usize,
    /// Negative samples per reconstruction step (sampled softmax).
    pub negative: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate for recurrent weights; embedding/output tables
    /// use plain SGD at the same rate.
    pub lr: f32,
    /// Per-tensor gradient L2-norm clip.
    pub clip: f32,
    /// Vocabulary construction parameters.
    pub vocab: VocabConfig,
    /// RNG seed for initialization and negative sampling.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            embed_dim: 32,
            hidden: 64,
            max_len: 96,
            negative: 5,
            epochs: 3,
            lr: 0.01,
            clip: 5.0,
            vocab: VocabConfig::default(),
            seed: 0x15f3,
        }
    }
}

/// One LSTM cell's parameters. Gate order inside the stacked `4H` axis:
/// input `i`, forget `f`, candidate `g`, output `o`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct LstmCell {
    /// Input weights, `4H × E`.
    pub(crate) wx: Matrix,
    /// Recurrent weights, `4H × H`.
    pub(crate) wh: Matrix,
    /// Bias, `4H` (forget-gate slice initialized to 1).
    pub(crate) b: Vec<f32>,
}

impl LstmCell {
    fn new(embed_dim: usize, hidden: usize, rng: &mut Pcg32) -> Self {
        let mut b = vec![0.0f32; 4 * hidden];
        // Standard trick: positive forget bias keeps early gradients alive.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmCell {
            wx: querc_linalg::init::xavier(4 * hidden, embed_dim, rng),
            wh: querc_linalg::init::xavier(4 * hidden, hidden, rng),
            b,
        }
    }
}

/// Per-timestep forward cache needed by the backward pass.
struct StepCache {
    /// Gate activations, each of width H.
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    tanh_c: Vec<f32>,
    h: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
}

/// Gradients for one cell.
#[derive(Debug, Clone)]
struct CellGrads {
    wx: Matrix,
    wh: Matrix,
    b: Vec<f32>,
}

impl CellGrads {
    fn zeros(embed_dim: usize, hidden: usize) -> Self {
        CellGrads {
            wx: Matrix::zeros(4 * hidden, embed_dim),
            wh: Matrix::zeros(4 * hidden, hidden),
            b: vec![0.0; 4 * hidden],
        }
    }
}

/// All gradients produced by one training sequence.
struct SeqGrads {
    enc: CellGrads,
    dec: CellGrads,
    /// Sparse embedding-table gradients: (row, grad).
    emb: Vec<(usize, Vec<f32>)>,
    /// Sparse output-table gradients: (row, grad).
    out: Vec<(usize, Vec<f32>)>,
}

/// A trained LSTM autoencoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmAutoencoder {
    cfg: LstmConfig,
    vocab: Vocab,
    /// Token embeddings, `(vocab.size() + 1) × E`; the extra row is the
    /// beginning-of-sequence symbol fed to the decoder at step 0.
    emb: Matrix,
    enc: LstmCell,
    dec: LstmCell,
    /// Output projection rows, `vocab.size() × H` (sampled softmax).
    out: Matrix,
}

impl LstmAutoencoder {
    /// Train an autoencoder over a corpus of normalized token sequences.
    pub fn train(corpus: &[Vec<String>], cfg: LstmConfig) -> LstmAutoencoder {
        assert!(cfg.hidden > 0 && cfg.embed_dim > 0 && cfg.max_len > 0);
        let vocab = Vocab::build(corpus.iter().map(|d| d.as_slice()), &cfg.vocab);
        let mut rng = Pcg32::with_stream(cfg.seed, 0x157a);
        let mut model = LstmAutoencoder {
            emb: querc_linalg::init::embedding(vocab.size() + 1, cfg.embed_dim, &mut rng),
            enc: LstmCell::new(cfg.embed_dim, cfg.hidden, &mut rng),
            dec: LstmCell::new(cfg.embed_dim, cfg.hidden, &mut rng),
            out: Matrix::zeros(vocab.size(), cfg.hidden),
            vocab,
            cfg,
        };
        model.fit(corpus, &mut rng);
        model
    }

    /// Continue training on (more) data — used by the training module for
    /// periodic refreshes.
    pub fn fit(&mut self, corpus: &[Vec<String>], rng: &mut Pcg32) {
        let cfg = self.cfg.clone();
        let noise = AliasTable::from_counts_pow(&self.vocab.noise_counts(), 0.75);
        let encoded: Vec<Vec<usize>> = corpus
            .iter()
            .map(|d| {
                let mut ids = self.vocab.encode(d);
                ids.truncate(cfg.max_len);
                ids
            })
            .collect();

        // Adam over the recurrent tensors; sparse SGD over the tables.
        let mut adam = querc_linalg::Adam::new(cfg.lr);
        let s_enc_wx = adam.register(self.enc.wx.as_slice().len());
        let s_enc_wh = adam.register(self.enc.wh.as_slice().len());
        let s_enc_b = adam.register(self.enc.b.len());
        let s_dec_wx = adam.register(self.dec.wx.as_slice().len());
        let s_dec_wh = adam.register(self.dec.wh.as_slice().len());
        let s_dec_b = adam.register(self.dec.b.len());

        let mut order: Vec<usize> = (0..encoded.len()).collect();
        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &idx in &order {
                let ids = &encoded[idx];
                if ids.is_empty() {
                    continue;
                }
                let negs = sample_negatives(ids, cfg.negative, &noise, rng);
                let (_loss, mut grads) = self.sequence_grads(ids, &negs);
                // Clip and apply.
                ops::clip_norm(grads.enc.wx.as_mut_slice(), cfg.clip);
                ops::clip_norm(grads.enc.wh.as_mut_slice(), cfg.clip);
                ops::clip_norm(&mut grads.enc.b, cfg.clip);
                ops::clip_norm(grads.dec.wx.as_mut_slice(), cfg.clip);
                ops::clip_norm(grads.dec.wh.as_mut_slice(), cfg.clip);
                ops::clip_norm(&mut grads.dec.b, cfg.clip);
                adam.step(
                    s_enc_wx,
                    self.enc.wx.as_mut_slice(),
                    grads.enc.wx.as_slice(),
                );
                adam.step(
                    s_enc_wh,
                    self.enc.wh.as_mut_slice(),
                    grads.enc.wh.as_slice(),
                );
                adam.step(s_enc_b, &mut self.enc.b, &grads.enc.b);
                adam.step(
                    s_dec_wx,
                    self.dec.wx.as_mut_slice(),
                    grads.dec.wx.as_slice(),
                );
                adam.step(
                    s_dec_wh,
                    self.dec.wh.as_mut_slice(),
                    grads.dec.wh.as_slice(),
                );
                adam.step(s_dec_b, &mut self.dec.b, &grads.dec.b);
                for (row, mut g) in grads.emb {
                    ops::clip_norm(&mut g, cfg.clip);
                    kernel::axpy(-cfg.lr, &g, self.emb.row_mut(row));
                }
                for (row, mut g) in grads.out {
                    ops::clip_norm(&mut g, cfg.clip);
                    kernel::axpy(-cfg.lr, &g, self.out.row_mut(row));
                }
            }
        }
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Id of the decoder's beginning-of-sequence pseudo-token.
    fn bos(&self) -> usize {
        self.vocab.size()
    }

    /// Inference-only encoder pass into caller-provided buffers.
    ///
    /// Computes the same arithmetic as [`cell_forward`] (same operation
    /// order, so results are bit-identical) but keeps no per-step caches
    /// and allocates nothing — `scratch` is reused across the queries of
    /// a batch. On return `scratch.h`/`scratch.c` hold the final state.
    fn encode_into(&self, ids: &[usize], scratch: &mut EncodeScratch) {
        let hdim = self.cfg.hidden;
        scratch.h.iter_mut().for_each(|v| *v = 0.0);
        scratch.c.iter_mut().for_each(|v| *v = 0.0);
        for &id in ids.iter().rev() {
            self.enc.wx.matvec_into(self.emb.row(id), &mut scratch.z);
            self.enc.wh.matvec_into(&scratch.h, &mut scratch.zh);
            for k in 0..scratch.z.len() {
                scratch.z[k] += scratch.zh[k] + self.enc.b[k];
            }
            for k in 0..hdim {
                let i = ops::sigmoid(scratch.z[k]);
                let f = ops::sigmoid(scratch.z[hdim + k]);
                let g = scratch.z[2 * hdim + k].tanh();
                let o = ops::sigmoid(scratch.z[3 * hdim + k]);
                // In-place state update: each lane only reads its own k.
                scratch.c[k] = f * scratch.c[k] + i * g;
                scratch.h[k] = o * scratch.c[k].tanh();
            }
        }
    }

    /// Encoder-only forward pass; returns the full per-step caches plus
    /// the final (h, c).
    ///
    /// The encoder reads the sequence REVERSED (Sutskever et al. 2014's
    /// standard seq2seq trick): the tokens that open a SQL statement —
    /// verb, projection, FROM tables — end up adjacent to the final state
    /// instead of 50 decay steps away from it.
    fn encode_steps(&self, ids: &[usize]) -> (Vec<StepCache>, Vec<f32>, Vec<f32>) {
        let hdim = self.cfg.hidden;
        let mut h = vec![0.0f32; hdim];
        let mut c = vec![0.0f32; hdim];
        let mut caches = Vec::with_capacity(ids.len());
        for &id in ids.iter().rev() {
            let cache = cell_forward(&self.enc, self.emb.row(id), &h, &c);
            h = cache.h.clone();
            c = cache.c.clone();
            caches.push(cache);
        }
        (caches, h, c)
    }

    /// Forward + backward over one sequence with externally-chosen
    /// negatives (one `Vec<usize>` per decoder step). Pure in the model
    /// parameters; returns (total loss, gradients).
    fn sequence_grads(&self, ids: &[usize], negs: &[Vec<usize>]) -> (f32, SeqGrads) {
        let hdim = self.cfg.hidden;
        let n = ids.len();
        debug_assert_eq!(negs.len(), n);

        // ---- forward ----
        let (enc_caches, h_t, c_t) = self.encode_steps(ids);
        // Decoder inputs: BOS then the shifted target sequence.
        let dec_inputs: Vec<usize> = std::iter::once(self.bos())
            .chain(ids[..n - 1].iter().copied())
            .collect();
        let mut dec_caches = Vec::with_capacity(n);
        let mut h = h_t.clone();
        let mut c = c_t.clone();
        for &id in &dec_inputs {
            let cache = cell_forward(&self.dec, self.emb.row(id), &h, &c);
            h = cache.h.clone();
            c = cache.c.clone();
            dec_caches.push(cache);
        }

        // ---- loss + output-side gradients ----
        let mut loss = 0.0f32;
        let mut grads = SeqGrads {
            enc: CellGrads::zeros(self.cfg.embed_dim, hdim),
            dec: CellGrads::zeros(self.cfg.embed_dim, hdim),
            emb: Vec::new(),
            out: Vec::new(),
        };
        // dh per decoder step from the sampled softmax. `self.out` is
        // frozen for the whole backward pass, so the target + negative
        // logits of a step batch into one gathered-dot kernel call; the
        // per-pair updates then run in the historical order, which keeps
        // loss accumulation and gradients bit-identical to the
        // interleaved loop.
        let kern = kernel::active_kernel();
        let mut dh_steps: Vec<Vec<f32>> = vec![vec![0.0; hdim]; n];
        let mut gather_ids: Vec<usize> = Vec::new();
        let mut gather_scores: Vec<f32> = Vec::new();
        for t in 0..n {
            let h_t = &dec_caches[t].h;
            let target = ids[t];
            gather_ids.clear();
            gather_ids.push(target);
            gather_ids.extend(negs[t].iter().copied().filter(|&neg| neg != target));
            gather_scores.resize(gather_ids.len(), 0.0);
            kernel::dot_gather_with(
                kern,
                h_t,
                self.out.as_slice(),
                self.out.cols(),
                &gather_ids,
                &mut gather_scores,
            );
            for (slot, (&row, &raw)) in gather_ids.iter().zip(&gather_scores).enumerate() {
                let f = ops::sigmoid(raw);
                let g = if slot == 0 {
                    loss -= (f.max(1e-7)).ln();
                    f - 1.0 // d loss / d (o_target · h)
                } else {
                    loss -= (1.0 - f).max(1e-7).ln();
                    f // label 0
                };
                kernel::axpy_with(kern, g, self.out.row(row), &mut dh_steps[t]);
                let mut d_out_row = vec![0.0f32; hdim];
                kernel::axpy_with(kern, g, h_t, &mut d_out_row);
                grads.out.push((row, d_out_row));
            }
        }

        // ---- decoder BPTT ----
        let mut dh = vec![0.0f32; hdim];
        let mut dc = vec![0.0f32; hdim];
        for t in (0..n).rev() {
            kernel::axpy_with(kern, 1.0, &dh_steps[t], &mut dh);
            let (dx, dh_prev, dc_prev) = cell_backward(
                &self.dec,
                &dec_caches[t],
                &dh,
                &dc,
                &mut grads.dec,
                self.emb.row(dec_inputs[t]),
            );
            grads.emb.push((dec_inputs[t], dx));
            dh = dh_prev;
            dc = dc_prev;
        }

        // ---- encoder BPTT (seeded by the decoder's initial-state grads) --
        // Cache k was produced from ids[n-1-k] (reversed read), so walk the
        // caches backwards and index ids accordingly.
        for k in (0..n).rev() {
            let id = ids[n - 1 - k];
            let (dx, dh_prev, dc_prev) = cell_backward(
                &self.enc,
                &enc_caches[k],
                &dh,
                &dc,
                &mut grads.enc,
                self.emb.row(id),
            );
            grads.emb.push((id, dx));
            dh = dh_prev;
            dc = dc_prev;
        }

        (loss, grads)
    }

    /// Reconstruction loss of a sequence under fixed negatives (forward
    /// only) — used by the gradient-check tests and by perplexity-style
    /// diagnostics.
    fn sequence_loss(&self, ids: &[usize], negs: &[Vec<usize>]) -> f32 {
        self.sequence_grads(ids, negs).0
    }

    /// Average reconstruction loss per token over a corpus, with
    /// deterministic negatives. Lower = better fit.
    pub fn avg_loss(&self, corpus: &[Vec<String>], seed: u64) -> f32 {
        let noise = AliasTable::from_counts_pow(&self.vocab.noise_counts(), 0.75);
        let mut rng = Pcg32::with_stream(seed, 0x70ce);
        let mut total = 0.0f64;
        let mut tokens = 0usize;
        for doc in corpus {
            let mut ids = self.vocab.encode(doc);
            ids.truncate(self.cfg.max_len);
            if ids.is_empty() {
                continue;
            }
            let negs = sample_negatives(&ids, self.cfg.negative, &noise, &mut rng);
            total += self.sequence_loss(&ids, &negs) as f64;
            tokens += ids.len();
        }
        if tokens == 0 {
            0.0
        } else {
            (total / tokens as f64) as f32
        }
    }
}

/// Reusable buffers for the inference-only encoder pass.
struct EncodeScratch {
    h: Vec<f32>,
    c: Vec<f32>,
    /// Stacked gate pre-activations, `4H`.
    z: Vec<f32>,
    zh: Vec<f32>,
}

impl EncodeScratch {
    fn new(hidden: usize) -> EncodeScratch {
        EncodeScratch {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
            z: vec![0.0; 4 * hidden],
            zh: vec![0.0; 4 * hidden],
        }
    }
}

/// One LSTM cell step.
fn cell_forward(cell: &LstmCell, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> StepCache {
    let hdim = h_prev.len();
    let mut z = cell.wx.matvec(x);
    let zh = cell.wh.matvec(h_prev);
    for k in 0..z.len() {
        z[k] += zh[k] + cell.b[k];
    }
    let mut i = vec![0.0f32; hdim];
    let mut f = vec![0.0f32; hdim];
    let mut g = vec![0.0f32; hdim];
    let mut o = vec![0.0f32; hdim];
    for k in 0..hdim {
        i[k] = ops::sigmoid(z[k]);
        f[k] = ops::sigmoid(z[hdim + k]);
        g[k] = z[2 * hdim + k].tanh();
        o[k] = ops::sigmoid(z[3 * hdim + k]);
    }
    let mut c = vec![0.0f32; hdim];
    let mut tanh_c = vec![0.0f32; hdim];
    let mut h = vec![0.0f32; hdim];
    for k in 0..hdim {
        c[k] = f[k] * c_prev[k] + i[k] * g[k];
        tanh_c[k] = c[k].tanh();
        h[k] = o[k] * tanh_c[k];
    }
    StepCache {
        i,
        f,
        g,
        o,
        c,
        tanh_c,
        h,
        h_prev: h_prev.to_vec(),
        c_prev: c_prev.to_vec(),
    }
}

/// One LSTM cell backward step. Accumulates parameter grads into `grads`
/// and returns `(dx, dh_prev, dc_prev)`.
fn cell_backward(
    cell: &LstmCell,
    cache: &StepCache,
    dh: &[f32],
    dc_in: &[f32],
    grads: &mut CellGrads,
    x: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let hdim = dh.len();
    let mut dz = vec![0.0f32; 4 * hdim];
    let mut dc_prev = vec![0.0f32; hdim];
    for k in 0..hdim {
        let do_ = dh[k] * cache.tanh_c[k];
        let dc = dc_in[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
        let di = dc * cache.g[k];
        let df = dc * cache.c_prev[k];
        let dg = dc * cache.i[k];
        dc_prev[k] = dc * cache.f[k];
        dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
        dz[hdim + k] = df * cache.f[k] * (1.0 - cache.f[k]);
        dz[2 * hdim + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
        dz[3 * hdim + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
    }
    // Parameter gradients: dWx += dz ⊗ x, dWh += dz ⊗ h_prev, db += dz.
    let kern = kernel::active_kernel();
    for (r, &dzr) in dz.iter().enumerate() {
        if dzr != 0.0 {
            kernel::axpy_with(kern, dzr, x, grads.wx.row_mut(r));
            kernel::axpy_with(kern, dzr, &cache.h_prev, grads.wh.row_mut(r));
        }
        grads.b[r] += dzr;
    }
    let dx = cell.wx.matvec_t(&dz);
    let dh_prev = cell.wh.matvec_t(&dz);
    (dx, dh_prev, dc_prev)
}

/// Draw `negative` noise tokens per step, avoiding the step's target.
fn sample_negatives(
    ids: &[usize],
    negative: usize,
    noise: &AliasTable,
    rng: &mut Pcg32,
) -> Vec<Vec<usize>> {
    ids.iter()
        .map(|&target| {
            (0..negative)
                .filter_map(|_| {
                    let mut j = noise.sample(rng);
                    let mut tries = 0;
                    while j == target && tries < 4 {
                        j = noise.sample(rng);
                        tries += 1;
                    }
                    (j != target).then_some(j)
                })
                .collect()
        })
        .collect()
}

impl Embedder for LstmAutoencoder {
    fn dim(&self) -> usize {
        2 * self.cfg.hidden
    }

    /// The state of the final encoder LSTM cell — the output gate's hidden
    /// vector concatenated with the cell state — from a pure forward pass,
    /// hence deterministic. Including the cell state matters: it is where
    /// the LSTM retains long-range information (schema tokens early in the
    /// query), while `h` is dominated by the sequence tail.
    fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let mut scratch = EncodeScratch::new(self.cfg.hidden);
        self.embed_with_scratch(tokens, &mut scratch)
    }

    fn name(&self) -> &'static str {
        "lstm"
    }

    /// Folds trained-model identity — seed, vocabulary size, and
    /// checksums of every matrix the encoder reads (token embeddings,
    /// input and recurrent weights) — on top of the (name, dim) default,
    /// so two separately-trained autoencoders of the same width never
    /// share vector-cache entries.
    fn cache_namespace(&self) -> u64 {
        use crate::embedder::{namespace_fold, namespace_of, weights_checksum};
        let mut h = namespace_fold(namespace_of(self.name()), self.dim() as u64);
        h = namespace_fold(h, self.cfg.seed);
        h = namespace_fold(h, self.vocab.size() as u64);
        h = namespace_fold(h, weights_checksum(self.emb.as_slice()));
        h = namespace_fold(h, weights_checksum(self.enc.wx.as_slice()));
        namespace_fold(h, weights_checksum(self.enc.wh.as_slice()))
    }

    fn export_spec(&self) -> Option<(&'static str, String)> {
        crate::io::to_json(self).ok().map(|j| (self.name(), j))
    }

    /// Batched path: fixed-size chunks fan out across the compute pool,
    /// each with its own gate/state scratch (allocated once per chunk
    /// instead of per step per query). Every embedding is a pure
    /// function of its document, so the merged output is bit-identical
    /// to the sequential loop at any thread count.
    fn embed_batch(&self, docs: &[Vec<String>]) -> Vec<Vec<f32>> {
        const CHUNK: usize = 32;
        let n_chunks = docs.len().div_ceil(CHUNK);
        let parts = ComputePool::current().map(n_chunks, |chunk| {
            let lo = chunk * CHUNK;
            let hi = (lo + CHUNK).min(docs.len());
            let mut scratch = EncodeScratch::new(self.cfg.hidden);
            docs[lo..hi]
                .iter()
                .map(|doc| self.embed_with_scratch(doc, &mut scratch))
                .collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }
}

impl LstmAutoencoder {
    fn embed_with_scratch(&self, tokens: &[String], scratch: &mut EncodeScratch) -> Vec<f32> {
        let mut ids = self.vocab.encode(tokens);
        ids.truncate(self.cfg.max_len);
        if ids.is_empty() {
            return vec![0.0; 2 * self.cfg.hidden];
        }
        self.encode_into(&ids, scratch);
        let mut out = scratch.h.clone();
        out.extend_from_slice(&scratch.c);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_linalg::ops::cosine;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tiny_cfg() -> LstmConfig {
        LstmConfig {
            embed_dim: 8,
            hidden: 10,
            max_len: 16,
            negative: 3,
            epochs: 20,
            lr: 0.02,
            clip: 5.0,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 100,
                hash_buckets: 8,
            },
            seed: 3,
        }
    }

    fn tiny_corpus() -> Vec<Vec<String>> {
        let mut corpus = Vec::new();
        for i in 0..20 {
            corpus.push(toks(&format!(
                "select col{} from orders where total > <num>",
                i % 4
            )));
            corpus.push(toks(&format!("insert into logs values <str> ev{}", i % 3)));
        }
        corpus
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Tiny model, fixed negatives → the analytic gradient must match
        // central finite differences on every parameter tensor we probe.
        let corpus = vec![toks("a b c d"), toks("c d e f")];
        let cfg = LstmConfig {
            embed_dim: 5,
            hidden: 6,
            max_len: 8,
            negative: 2,
            epochs: 1,
            lr: 0.0,
            clip: 1e9,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 50,
                hash_buckets: 4,
            },
            seed: 11,
        };
        let mut model = LstmAutoencoder::train(&corpus, cfg);
        let ids = model.vocab.encode(&toks("a b c d e"));
        let negs: Vec<Vec<usize>> = ids
            .iter()
            .enumerate()
            .map(|(t, _)| vec![(t + 1) % model.vocab.size(), (t + 3) % model.vocab.size()])
            .collect();
        let (_, grads) = model.sequence_grads(&ids, &negs);

        let eps = 1e-3f32;
        // Probe several coordinates in each dense tensor.
        let probes: Vec<(&str, usize)> = vec![
            ("enc_wx", 3),
            ("enc_wx", 17),
            ("enc_wh", 5),
            ("enc_b", 2),
            ("dec_wx", 7),
            ("dec_wh", 11),
            ("dec_b", 9),
        ];
        for (tensor, idx) in probes {
            let analytic = match tensor {
                "enc_wx" => grads.enc.wx.as_slice()[idx],
                "enc_wh" => grads.enc.wh.as_slice()[idx],
                "enc_b" => grads.enc.b[idx],
                "dec_wx" => grads.dec.wx.as_slice()[idx],
                "dec_wh" => grads.dec.wh.as_slice()[idx],
                "dec_b" => grads.dec.b[idx],
                _ => unreachable!(),
            };
            let slot: &mut f32 = match tensor {
                "enc_wx" => &mut model.enc.wx.as_mut_slice()[idx],
                "enc_wh" => &mut model.enc.wh.as_mut_slice()[idx],
                "enc_b" => &mut model.enc.b[idx],
                "dec_wx" => &mut model.dec.wx.as_mut_slice()[idx],
                "dec_wh" => &mut model.dec.wh.as_mut_slice()[idx],
                "dec_b" => &mut model.dec.b[idx],
                _ => unreachable!(),
            };
            let orig = *slot;
            *slot = orig + eps;
            let up = model.sequence_loss(&ids, &negs);
            // Re-borrow after the immutable call.
            let slot: &mut f32 = match tensor {
                "enc_wx" => &mut model.enc.wx.as_mut_slice()[idx],
                "enc_wh" => &mut model.enc.wh.as_mut_slice()[idx],
                "enc_b" => &mut model.enc.b[idx],
                "dec_wx" => &mut model.dec.wx.as_mut_slice()[idx],
                "dec_wh" => &mut model.dec.wh.as_mut_slice()[idx],
                "dec_b" => &mut model.dec.b[idx],
                _ => unreachable!(),
            };
            *slot = orig - eps;
            let down = model.sequence_loss(&ids, &negs);
            let slot: &mut f32 = match tensor {
                "enc_wx" => &mut model.enc.wx.as_mut_slice()[idx],
                "enc_wh" => &mut model.enc.wh.as_mut_slice()[idx],
                "enc_b" => &mut model.enc.b[idx],
                "dec_wx" => &mut model.dec.wx.as_mut_slice()[idx],
                "dec_wh" => &mut model.dec.wh.as_mut_slice()[idx],
                "dec_b" => &mut model.dec.b[idx],
                _ => unreachable!(),
            };
            *slot = orig;
            let numeric = (up - down) / (2.0 * eps);
            let denom = analytic.abs().max(numeric.abs()).max(1e-4);
            assert!(
                (analytic - numeric).abs() / denom < 0.05,
                "{tensor}[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn embedding_gradient_check() {
        let corpus = vec![toks("a b c"), toks("b c d")];
        let cfg = LstmConfig {
            embed_dim: 4,
            hidden: 5,
            max_len: 8,
            negative: 2,
            epochs: 1,
            lr: 0.0,
            clip: 1e9,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 20,
                hash_buckets: 4,
            },
            seed: 5,
        };
        let mut model = LstmAutoencoder::train(&corpus, cfg);
        let ids = model.vocab.encode(&toks("a b c d"));
        let negs: Vec<Vec<usize>> = ids.iter().map(|_| vec![0, 1]).collect();
        let (_, grads) = model.sequence_grads(&ids, &negs);

        // Sum all sparse contributions to one embedding coordinate.
        let probe_row = ids[1];
        let probe_col = 2usize;
        let analytic: f32 = grads
            .emb
            .iter()
            .filter(|(r, _)| *r == probe_row)
            .map(|(_, g)| g[probe_col])
            .sum();
        let eps = 1e-3f32;
        let e = model.cfg.embed_dim;
        let flat = probe_row * e + probe_col;
        let orig = model.emb.as_slice()[flat];
        model.emb.as_mut_slice()[flat] = orig + eps;
        let up = model.sequence_loss(&ids, &negs);
        model.emb.as_mut_slice()[flat] = orig - eps;
        let down = model.sequence_loss(&ids, &negs);
        model.emb.as_mut_slice()[flat] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let denom = analytic.abs().max(numeric.abs()).max(1e-4);
        assert!(
            (analytic - numeric).abs() / denom < 0.05,
            "emb[{probe_row},{probe_col}]: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn output_table_gradient_check() {
        let corpus = vec![toks("a b c"), toks("b c d")];
        let cfg = LstmConfig {
            embed_dim: 4,
            hidden: 5,
            max_len: 8,
            negative: 1,
            epochs: 2,
            lr: 0.01,
            clip: 1e9,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 20,
                hash_buckets: 4,
            },
            seed: 9,
        };
        let mut model = LstmAutoencoder::train(&corpus, cfg);
        let ids = model.vocab.encode(&toks("a b c"));
        let negs: Vec<Vec<usize>> = ids.iter().map(|_| vec![3]).collect();
        let (_, grads) = model.sequence_grads(&ids, &negs);
        let probe_row = ids[0];
        let probe_col = 1usize;
        let analytic: f32 = grads
            .out
            .iter()
            .filter(|(r, _)| *r == probe_row)
            .map(|(_, g)| g[probe_col])
            .sum();
        let eps = 1e-3f32;
        let h = model.cfg.hidden;
        let flat = probe_row * h + probe_col;
        let orig = model.out.as_slice()[flat];
        model.out.as_mut_slice()[flat] = orig + eps;
        let up = model.sequence_loss(&ids, &negs);
        model.out.as_mut_slice()[flat] = orig - eps;
        let down = model.sequence_loss(&ids, &negs);
        model.out.as_mut_slice()[flat] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let denom = analytic.abs().max(numeric.abs()).max(1e-4);
        assert!(
            (analytic - numeric).abs() / denom < 0.05,
            "out[{probe_row},{probe_col}]: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let corpus = tiny_corpus();
        let mut cfg = tiny_cfg();
        cfg.epochs = 1;
        let barely = LstmAutoencoder::train(&corpus, cfg.clone());
        cfg.epochs = 25;
        let trained = LstmAutoencoder::train(&corpus, cfg);
        let l_barely = barely.avg_loss(&corpus, 42);
        let l_trained = trained.avg_loss(&corpus, 42);
        assert!(
            l_trained < l_barely,
            "training should reduce loss: {l_trained} vs {l_barely}"
        );
    }

    #[test]
    fn embeddings_separate_query_families() {
        let corpus = tiny_corpus();
        let model = LstmAutoencoder::train(&corpus, tiny_cfg());
        let sel1 = model.embed(&toks("select col1 from orders where total > <num>"));
        let sel2 = model.embed(&toks("select col2 from orders where total > <num>"));
        let ins = model.embed(&toks("insert into logs values <str> ev1"));
        assert!(cosine(&sel1, &sel2) > cosine(&sel1, &ins));
    }

    #[test]
    fn embed_is_deterministic_and_correct_dim() {
        let corpus = tiny_corpus();
        let model = LstmAutoencoder::train(&corpus, tiny_cfg());
        let q = toks("select col1 from orders");
        let a = model.embed(&q);
        let b = model.embed(&q);
        assert_eq!(a, b);
        assert_eq!(a.len(), model.dim());
        assert!(a.iter().all(|v| v.is_finite()));
    }

    /// The scratch-buffer inference pass must agree bit-for-bit with the
    /// cache-building training forward ([`cell_forward`]) and with itself
    /// across batch boundaries.
    #[test]
    fn embed_batch_matches_embed_and_cell_forward() {
        let corpus = tiny_corpus();
        let model = LstmAutoencoder::train(&corpus, tiny_cfg());
        let docs = vec![
            toks("select col1 from orders"),
            toks(""),
            toks("insert into audit_log values <num>"),
        ];
        let batch = model.embed_batch(&docs);
        for (doc, v) in docs.iter().zip(&batch) {
            assert_eq!(*v, model.embed(doc), "batch diverged on {doc:?}");
        }
        // Cross-check one query against the cache-building forward pass.
        let mut ids = model.vocab.encode(&docs[0]);
        ids.truncate(model.cfg.max_len);
        let (_caches, h, c) = model.encode_steps(&ids);
        let mut reference = h;
        reference.extend_from_slice(&c);
        assert_eq!(batch[0], reference);
    }

    #[test]
    fn empty_and_oov_inputs() {
        let corpus = tiny_corpus();
        let model = LstmAutoencoder::train(&corpus, tiny_cfg());
        assert_eq!(model.embed(&[]), vec![0.0; model.dim()]);
        let v = model.embed(&toks("zzz yyy xxx never seen"));
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn long_sequences_truncated_not_crashed() {
        let corpus = tiny_corpus();
        let model = LstmAutoencoder::train(&corpus, tiny_cfg());
        let long: Vec<String> = (0..500).map(|i| format!("tok{i}")).collect();
        let v = model.embed(&long);
        assert_eq!(v.len(), model.dim());
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let corpus = tiny_corpus();
        let m1 = LstmAutoencoder::train(&corpus, tiny_cfg());
        let m2 = LstmAutoencoder::train(&corpus, tiny_cfg());
        let q = toks("select col1 from orders where total > <num>");
        assert_eq!(m1.embed(&q), m2.embed(&q));
    }
}
