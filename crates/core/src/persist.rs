//! Persistence-plane glue: the JSON section payloads stored inside a
//! `querc-persist` snapshot, and the shared validation helpers restore
//! paths use.
//!
//! The container (`querc_persist::Snapshot`) guarantees sections arrive
//! byte-identical or not at all (per-section CRCs); everything *inside*
//! a section is still untrusted once parsed — a stale or hand-edited
//! snapshot can carry shapes the serving hot paths would index-panic
//! on. Every restore helper here therefore validates against the live
//! configuration (embedder dims, arena bounds, matrix shapes) and
//! reports [`QuercError::Corrupt`] instead.

use crate::apps::{
    AuditApp, DynWorkloadApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp,
};
use crate::classifier::LabelerState;
use crate::error::{QuercError, Result};
use crate::registry::RegistryEvent;
use querc_embed::Embedder;
use querc_learn::{ClassifierState, ForestState, TreeState};
use std::collections::HashMap;
use std::sync::Arc;

/// Build a [`QuercError::Corrupt`] with a formatted detail message.
pub(crate) fn corrupt(detail: impl Into<String>) -> QuercError {
    QuercError::Corrupt {
        detail: detail.into(),
    }
}

/// Serialize a section payload. `None` only if the shim serializer
/// fails, which no exported state does.
pub(crate) fn to_json<T: serde::Serialize>(value: &T) -> Option<String> {
    serde_json::to_string(value).ok()
}

/// Parse a section payload, mapping any schema mismatch to
/// [`QuercError::Corrupt`] tagged with the section being read.
pub(crate) fn from_json<T: serde::de::DeserializeOwned>(json: &str, what: &str) -> Result<T> {
    serde_json::from_str(json).map_err(|e| corrupt(format!("{what}: {e}")))
}

/// Decode a section's bytes as UTF-8 (all payloads are JSON text).
pub(crate) fn utf8<'a>(bytes: &'a [u8], what: &str) -> Result<&'a str> {
    std::str::from_utf8(bytes).map_err(|_| corrupt(format!("{what}: payload is not UTF-8")))
}

/// Map a `querc-learn` restore failure into [`QuercError::Corrupt`].
pub(crate) fn bad_learn_state(e: querc_learn::LearnError) -> QuercError {
    corrupt(e.to_string())
}

/// Reject any tree that splits on a feature column past `dim` — the
/// inference path indexes `v[feature]` unchecked.
pub(crate) fn check_tree(tree: &TreeState, dim: usize) -> Result<()> {
    for n in &tree.nodes {
        if !n.leaf && n.feature >= dim {
            return Err(corrupt(format!(
                "tree splits on feature {} but vectors have dim {dim}",
                n.feature
            )));
        }
    }
    Ok(())
}

/// [`check_tree`] over every tree of a forest.
pub(crate) fn check_forest(forest: &ForestState, dim: usize) -> Result<()> {
    forest.trees.iter().try_for_each(|t| check_tree(t, dim))
}

/// Validate a classifier snapshot against the dimensionality its owner
/// will feed it. (Shape *consistency* — weight lengths, arena indices —
/// is `querc-learn`'s job on `from_state`; this checks the one thing
/// only the owner knows: the input width.)
pub(crate) fn check_classifier_dim(state: &ClassifierState, dim: usize) -> Result<()> {
    match state {
        ClassifierState::Forest(f) => check_forest(f, dim),
        ClassifierState::Tree(t) => check_tree(t, dim),
        ClassifierState::Knn(k) => {
            // dim == 0 marks an empty training set: nothing to scan, any
            // probe width is safely answered by the majority class.
            if k.dim == 0 || k.dim == dim {
                Ok(())
            } else {
                Err(corrupt(format!(
                    "knn trained at dim {} but vectors have dim {dim}",
                    k.dim
                )))
            }
        }
        ClassifierState::Softmax(s) => {
            if s.cols == dim + 1 {
                Ok(())
            } else {
                Err(corrupt(format!(
                    "softmax has {} columns but vectors have dim {dim} (want dim+1)",
                    s.cols
                )))
            }
        }
    }
}

/// The `manifest` section: what the snapshot claims to contain, used to
/// detect sections lost to truncation-with-a-rewritten-footer.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct ManifestState {
    /// Names of the `app:<name>` sections written.
    pub(crate) apps: Vec<String>,
    /// Names of the registry deployments serialized.
    pub(crate) classifiers: Vec<String>,
}

/// One serialized registry deployment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct DeploymentState {
    /// Registry key.
    pub(crate) name: String,
    /// Pinned version number at checkpoint time.
    pub(crate) version: u64,
    /// The label this classifier attaches.
    pub(crate) label_name: String,
    /// Embedder family tag (`querc_embed::io::restore_embedder` input).
    pub(crate) embedder_kind: String,
    /// Embedder weights, serialized.
    pub(crate) embedder_json: String,
    /// The labeler half.
    pub(crate) labeler: LabelerState,
}

/// The `registry` section: deployments plus the event history.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct RegistryState {
    /// Serializable deployments (non-persistable ones are skipped).
    pub(crate) deployments: Vec<DeploymentState>,
    /// Full deploy/undeploy history, oldest first.
    pub(crate) events: Vec<RegistryEvent>,
}

/// One `app:<name>` section: the app's embedder spec plus its fitted
/// model as produced by [`crate::apps::WorkloadApp::save_model`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct AppState {
    /// Registration key; must match the section's name suffix.
    pub(crate) app: String,
    /// Embedder family tag.
    pub(crate) embedder_kind: String,
    /// Embedder weights, serialized.
    pub(crate) embedder_json: String,
    /// The app's model payload (opaque to this layer).
    pub(crate) model_json: String,
}

/// One persisted per-tenant QoS policy override (see
/// [`crate::qos::TenantPolicy`]); `rate_per_sec`/`burst` are both
/// `None` for a tenant with no rate limit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct QosPolicyState {
    /// Routing key the policy applies to.
    pub(crate) tenant: String,
    /// DRR weight.
    pub(crate) weight: u32,
    /// Token-bucket sustained rate, if rate-limited.
    pub(crate) rate_per_sec: Option<f64>,
    /// Token-bucket burst capacity, if rate-limited.
    pub(crate) burst: Option<f64>,
}

/// The `qos` section: the tenant policy overrides installed at
/// checkpoint time. **Additive** — written only when QoS is enabled,
/// ignored by readers that predate it, and absent from pre-QoS
/// snapshots without failing restore (no format version bump).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct QosSectionState {
    /// Explicit per-tenant overrides, sorted by tenant.
    pub(crate) policies: Vec<QosPolicyState>,
}

/// Restores embedders from `(kind, json)` specs, deduplicating by spec
/// so apps and classifiers that shared one embedder at checkpoint time
/// share one `Arc` (and one cache namespace's memory) after restore.
#[derive(Default)]
pub(crate) struct EmbedderCache {
    map: HashMap<(String, String), Arc<dyn Embedder>>,
}

impl EmbedderCache {
    pub(crate) fn restore(&mut self, kind: &str, json: &str) -> Result<Arc<dyn Embedder>> {
        let key = (kind.to_string(), json.to_string());
        if let Some(e) = self.map.get(&key) {
            return Ok(Arc::clone(e));
        }
        let e = querc_embed::io::restore_embedder(kind, json)
            .map_err(|err| corrupt(format!("embedder {kind:?}: {err}")))?;
        self.map.insert(key, Arc::clone(&e));
        Ok(e)
    }
}

/// Rebuild the app *configuration* for a snapshot section. Label-time
/// knobs (audit thresholds, routing confidence floors) live inside the
/// serialized **model**, so the default-constructed app is behaviorally
/// complete once `load_model` runs; fit-only knobs (tree counts, k)
/// don't matter to a restored model and stay at their defaults.
pub(crate) fn restore_app(
    name: &str,
    embedder: Arc<dyn Embedder>,
) -> Result<Box<dyn DynWorkloadApp>> {
    Ok(match name {
        "audit" => Box::new(AuditApp::new(embedder)),
        "errors" => Box::new(ErrorsApp::new(embedder)),
        "recommend" => Box::new(RecommendApp::new(embedder)),
        "resources" => Box::new(ResourcesApp::new(embedder)),
        "routing" => Box::new(RoutingApp::new(embedder)),
        "summarize" => Box::new(SummarizeApp::new(embedder)),
        other => return Err(corrupt(format!("unknown app in snapshot: {other:?}"))),
    })
}
