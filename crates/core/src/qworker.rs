//! Qworkers — the per-application serving processes of Fig 1.
//!
//! A Qworker consumes a stream of queries, runs its classifiers to attach
//! labels, and forwards the labeled query onward: to the database sink,
//! to the central training module, or both. In *forked* mode (paper §2:
//! "Querc may not be in the critical path") queries are only mirrored to
//! training and never forwarded to the database.
//!
//! Qworkers hold no heavyweight state — classifiers are `Arc`s resolved
//! from the registry — so they can be replicated and load-balanced.

use crate::classifier::QueryClassifier;
use crate::labeled::LabeledQuery;
use crossbeam::channel::{Receiver, Sender};
use std::sync::Arc;

/// Where the Qworker forwards labeled queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QworkerMode {
    /// In the critical path: forward to the database AND the trainer.
    Inline,
    /// Off the critical path: mirror to the trainer only.
    Forked,
}

/// A per-application worker applying (embedder, labeler) classifiers.
pub struct Qworker {
    /// Application name (e.g. `app-X`), attached as a label.
    pub application: String,
    classifiers: Vec<Arc<QueryClassifier>>,
    mode: QworkerMode,
}

impl Qworker {
    pub fn new(
        application: impl Into<String>,
        classifiers: Vec<Arc<QueryClassifier>>,
        mode: QworkerMode,
    ) -> Self {
        Qworker {
            application: application.into(),
            classifiers,
            mode,
        }
    }

    /// Label one query with every classifier.
    pub fn process(&self, mut lq: LabeledQuery) -> LabeledQuery {
        lq.set("application", &self.application);
        // Tokenize once; every classifier shares the normalized stream.
        let tokens = lq.tokens();
        for clf in &self.classifiers {
            let value = clf.label_tokens(&tokens);
            lq.set(format!("predicted_{}", clf.label_name), value);
        }
        lq
    }

    /// Drain a stream until it closes, forwarding per the mode. Returns
    /// the number of queries processed. Run this on a thread per
    /// application; all channels are crossbeam MPMC so workers can be
    /// replicated on the same stream.
    pub fn run(
        &self,
        input: Receiver<LabeledQuery>,
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        let mut processed = 0usize;
        for lq in input.iter() {
            let labeled = self.process(lq);
            if self.mode == QworkerMode::Inline {
                // The sink may have hung up (tests, shutdown); labeling
                // continues because the training mirror matters more.
                let _ = database.send(labeled.clone());
            }
            let _ = trainer.send(labeled);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainedLabeler;
    use crossbeam::channel::unbounded;
    use querc_embed::{BagOfTokens, Embedder};
    use querc_learn::{ForestConfig, RandomForest};
    use querc_linalg::Pcg32;

    fn team_classifier() -> Arc<QueryClassifier> {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
        let sqls: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    format!("select a{} from warehouse_facts", i)
                } else {
                    format!("insert into event_log values ({i})")
                }
            })
            .collect();
        let labels: Vec<&str> = (0..20)
            .map(|i| if i % 2 == 0 { "analytics" } else { "ingest" })
            .collect();
        let vectors: Vec<Vec<f32>> = sqls.iter().map(|s| embedder.embed_sql(s)).collect();
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(10)),
            &vectors,
            &labels,
            &mut Pcg32::new(5),
        );
        Arc::new(QueryClassifier::new("workload_class", embedder, labeler))
    }

    #[test]
    fn process_attaches_application_and_predictions() {
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        let out = worker.process(LabeledQuery::new("select a2 from warehouse_facts"));
        assert_eq!(out.get("application"), Some("app-X"));
        assert_eq!(out.get("predicted_workload_class"), Some("analytics"));
    }

    #[test]
    fn inline_mode_forwards_to_database_and_trainer() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        for i in 0..5 {
            in_tx
                .send(LabeledQuery::new(format!("insert into event_log values ({i})")))
                .unwrap();
        }
        drop(in_tx);
        let n = worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(n, 5);
        assert_eq!(db_rx.iter().count(), 5);
        assert_eq!(tr_rx.iter().count(), 5);
    }

    #[test]
    fn forked_mode_skips_database() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-Y", vec![team_classifier()], QworkerMode::Forked);
        in_tx.send(LabeledQuery::new("select 1")).unwrap();
        drop(in_tx);
        worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(db_rx.iter().count(), 0, "forked mode mirrors only");
        assert_eq!(tr_rx.iter().count(), 1);
    }

    #[test]
    fn replicated_workers_share_a_stream() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, _db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let mut handles = Vec::new();
        for w in 0..3 {
            let rx = in_rx.clone();
            let db = db_tx.clone();
            let tr = tr_tx.clone();
            let clf = team_classifier();
            handles.push(std::thread::spawn(move || {
                let worker =
                    Qworker::new(format!("app-{w}"), vec![clf], QworkerMode::Forked);
                worker.run(rx, db, tr)
            }));
        }
        drop(db_tx);
        drop(tr_tx);
        for i in 0..60 {
            in_tx
                .send(LabeledQuery::new(format!("select {i} from warehouse_facts")))
                .unwrap();
        }
        drop(in_tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 60, "every query processed exactly once");
        assert_eq!(tr_rx.iter().count(), 60);
    }

    #[test]
    fn hung_up_database_does_not_stop_labeling() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        drop(db_rx); // database sink gone
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        in_tx.send(LabeledQuery::new("select 1")).unwrap();
        drop(in_tx);
        let n = worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(n, 1);
        assert_eq!(tr_rx.iter().count(), 1);
    }
}
