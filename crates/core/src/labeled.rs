//! The labeled-query message — Querc's single inter-component data model.
//!
//! Paper §2: "The only messages passed between components are labeled
//! queries. A labeled query is a tuple (Q, c1, c2, c3, …) where ci is a
//! label." Labels are named here (`user=alice`) so multiple classifiers
//! can attach labels without positional coordination.

use serde::{Deserialize, Serialize};

/// A query plus an ordered list of named labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledQuery {
    /// The raw SQL text as received from the client.
    pub sql: String,
    /// `(label name, value)` pairs in attachment order.
    pub labels: Vec<(String, String)>,
}

impl LabeledQuery {
    /// A fresh, unlabeled query.
    pub fn new(sql: impl Into<String>) -> Self {
        LabeledQuery {
            sql: sql.into(),
            labels: Vec::new(),
        }
    }

    /// Build from a workload log record, importing its metadata labels.
    pub fn from_record(r: &querc_workloads::QueryRecord) -> Self {
        let mut lq = LabeledQuery::new(r.sql.clone());
        lq.set("user", &r.user);
        lq.set("account", &r.account);
        lq.set("cluster", &r.cluster);
        lq.set("dialect", &r.dialect);
        lq.set("timestamp", r.timestamp.to_string());
        if let Some(code) = r.error_code {
            lq.set("error", code.to_string());
        }
        lq
    }

    /// First value of a label, if attached.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attach or replace a label.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match self.labels.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.labels.push((name, value)),
        }
    }

    /// Normalized token stream of the SQL (embedder input).
    pub fn tokens(&self) -> Vec<String> {
        querc_embed::sql_tokens(&self.sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut lq = LabeledQuery::new("select 1");
        assert_eq!(lq.get("user"), None);
        lq.set("user", "alice");
        lq.set("cluster", "c1");
        assert_eq!(lq.get("user"), Some("alice"));
        lq.set("user", "bob");
        assert_eq!(lq.get("user"), Some("bob"));
        assert_eq!(lq.labels.len(), 2, "replace must not duplicate");
    }

    #[test]
    fn from_record_imports_metadata() {
        let r = querc_workloads::QueryRecord {
            sql: "select 1".into(),
            user: "a/u1".into(),
            account: "a".into(),
            cluster: "c2".into(),
            dialect: "generic".into(),
            runtime_ms: 5.0,
            mem_mb: 10.0,
            error_code: Some(604),
            timestamp: 99,
        };
        let lq = LabeledQuery::from_record(&r);
        assert_eq!(lq.get("user"), Some("a/u1"));
        assert_eq!(lq.get("error"), Some("604"));
        assert_eq!(lq.get("timestamp"), Some("99"));
    }

    #[test]
    fn tokens_are_normalized() {
        let lq = LabeledQuery::new("SELECT X FROM T WHERE y = 5");
        assert_eq!(
            lq.tokens(),
            vec!["select", "x", "from", "t", "where", "y", "=", "<num>"]
        );
    }
}
