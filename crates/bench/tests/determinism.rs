//! Compute-plane determinism suite: the `training_threads` knob and
//! the kernel arm must never change a model, only its wall-clock.
//!
//! Every learner in the workspace fits through `querc_linalg`'s
//! `ComputePool` + kernel plane, whose contract is *fixed-order
//! reduction over a thread-count-independent decomposition*. These
//! tests witness the contract end to end: each learner is fitted under
//! `training_threads ∈ {1, 2, 4}` across fuzzed corpus sizes
//! (including the empty and one-document edges) and the exported model
//! state is compared bit for bit. The serialized form compares floats
//! through their shortest-roundtrip decimal rendering, which is
//! injective on f32 — equal strings ⇔ equal bits.
//!
//! The thread override is process-global, so every sweep holds a
//! mutex; the arm tests piggyback on the same lock.

use querc_cluster::{kmeans, KMeansConfig};
use querc_embed::{
    BagOfTokens, Doc2Vec, Doc2VecConfig, Embedder, LstmAutoencoder, LstmConfig, VocabConfig,
};
use querc_learn::{Classifier, ForestConfig, Knn, KnnMetric, RandomForest, SoftmaxRegression};
use querc_linalg::{pool, Pcg32};
use std::sync::Mutex;

static THREAD_KNOB: Mutex<()> = Mutex::new(());

const SWEEP: [usize; 3] = [1, 2, 4];

/// Run `f` with the process-wide training-thread count pinned to `n`,
/// restoring the ambient setting afterwards.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    pool::set_training_threads(Some(n));
    let out = f();
    pool::set_training_threads(None);
    out
}

/// Pseudo-random token documents: sizes fuzz the sharding/chunking
/// boundaries, content fuzzes vocabulary shape.
fn synth_docs(n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|_| {
            let len = 3 + rng.below_usize(12);
            (0..len)
                .map(|_| format!("tok{}", rng.below_usize(40)))
                .collect()
        })
        .collect()
}

fn blobs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.normal()).collect())
        .collect()
}

fn labels(n: usize, classes: usize) -> Vec<u32> {
    (0..n).map(|i| (i % classes) as u32).collect()
}

#[test]
fn doc2vec_fit_is_thread_count_invariant() {
    let _g = THREAD_KNOB.lock().unwrap();
    // 700 documents split into many shards; 0/1 exercise the no-work
    // and single-shard edges.
    for n in [0usize, 1, 5, 37, 130, 700] {
        let docs = synth_docs(n, 0xd0c + n as u64);
        let cfg = Doc2VecConfig {
            dim: 16,
            epochs: 2,
            negative: 3,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 500,
                hash_buckets: 32,
            },
            ..Default::default()
        };
        let want = with_threads(1, || {
            serde_json::to_string(&Doc2Vec::train(&docs, cfg.clone())).unwrap()
        });
        for t in [2usize, 4] {
            let got = with_threads(t, || {
                serde_json::to_string(&Doc2Vec::train(&docs, cfg.clone())).unwrap()
            });
            assert_eq!(
                got, want,
                "doc2vec n={n} threads={t} diverged from 1-thread"
            );
        }
    }
}

#[test]
fn lstm_fit_is_thread_count_invariant() {
    let _g = THREAD_KNOB.lock().unwrap();
    for n in [0usize, 1, 9] {
        let docs = synth_docs(n, 0x157 + n as u64);
        let cfg = LstmConfig {
            embed_dim: 8,
            hidden: 16,
            max_len: 12,
            epochs: 1,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 200,
                hash_buckets: 16,
            },
            ..Default::default()
        };
        let want = with_threads(1, || {
            serde_json::to_string(&LstmAutoencoder::train(&docs, cfg.clone())).unwrap()
        });
        for t in [2usize, 4] {
            let got = with_threads(t, || {
                serde_json::to_string(&LstmAutoencoder::train(&docs, cfg.clone())).unwrap()
            });
            assert_eq!(got, want, "lstm n={n} threads={t} diverged from 1-thread");
        }
    }
}

#[test]
fn kmeans_fit_is_thread_count_invariant() {
    let _g = THREAD_KNOB.lock().unwrap();
    // 1500 points crosses the fixed 1024-point assignment chunk; 1/2
    // exercise the degenerate ends (k clamps to n).
    for n in [1usize, 2, 65, 1500] {
        let points = blobs(n, 24, 0x1237 + n as u64);
        let cfg = KMeansConfig {
            k: 8,
            max_iters: 6,
            ..Default::default()
        };
        let (want_assign, want_centroids) = with_threads(1, || {
            let r = kmeans(&points, &cfg, &mut Pcg32::new(5));
            (r.assignments, r.centroids)
        });
        for t in [2usize, 4] {
            let (assign, centroids) = with_threads(t, || {
                let r = kmeans(&points, &cfg, &mut Pcg32::new(5));
                (r.assignments, r.centroids)
            });
            assert_eq!(assign, want_assign, "kmeans n={n} threads={t} assignments");
            assert_eq!(centroids.len(), want_centroids.len());
            for (c, w) in centroids.iter().zip(&want_centroids) {
                for (a, b) in c.iter().zip(w) {
                    assert_eq!(a.to_bits(), b.to_bits(), "kmeans n={n} threads={t}");
                }
            }
        }
    }
}

/// Fit a classifier at a given thread count and export its serialized
/// state.
fn fit_state<C: Classifier>(
    mut model: C,
    threads: usize,
    x: &[Vec<f32>],
    y: &[u32],
    classes: usize,
) -> String {
    with_threads(threads, || {
        model.fit(x, y, classes, &mut Pcg32::new(0xf17));
        serde_json::to_string(&model.export_state().expect("state-exporting classifier")).unwrap()
    })
}

#[test]
fn forest_fit_is_thread_count_invariant() {
    let _g = THREAD_KNOB.lock().unwrap();
    for n in [1usize, 2, 40, 300] {
        let classes = 3.min(n);
        let x = blobs(n, 8, 0xf0f + n as u64);
        let y = labels(n, classes);
        let mk = || RandomForest::new(ForestConfig::extra_trees(9));
        let want = fit_state(mk(), 1, &x, &y, classes);
        for t in [2usize, 4] {
            let got = fit_state(mk(), t, &x, &y, classes);
            assert_eq!(got, want, "forest n={n} threads={t} diverged from 1-thread");
        }
    }
}

#[test]
fn softmax_and_knn_fit_are_thread_count_invariant() {
    let _g = THREAD_KNOB.lock().unwrap();
    for n in [1usize, 2, 120] {
        let classes = 3.min(n);
        let x = blobs(n, 8, 0x50f + n as u64);
        let y = labels(n, classes);
        let want_s = fit_state(SoftmaxRegression::new(4, 0.1, 1e-4), 1, &x, &y, classes);
        let want_k = fit_state(Knn::new(3, KnnMetric::Euclidean), 1, &x, &y, classes);
        for t in [2usize, 4] {
            let got_s = fit_state(SoftmaxRegression::new(4, 0.1, 1e-4), t, &x, &y, classes);
            let got_k = fit_state(Knn::new(3, KnnMetric::Euclidean), t, &x, &y, classes);
            assert_eq!(got_s, want_s, "softmax n={n} threads={t}");
            assert_eq!(got_k, want_k, "knn n={n} threads={t}");
        }
    }
}

/// The serving miss path (`embed_batch`) must be bit-identical to
/// per-query `embed`, at every thread count, for every embedder — the
/// EmbedPlane caches whichever one ran first, so a mismatch would make
/// cache state depend on arrival batching.
#[test]
fn embed_batch_matches_per_query_embed_at_every_thread_count() {
    let _g = THREAD_KNOB.lock().unwrap();
    let train = synth_docs(24, 0xe3bed);
    let vocab = VocabConfig {
        min_count: 1,
        max_size: 300,
        hash_buckets: 32,
    };
    let d2v = Doc2Vec::train(
        &train,
        Doc2VecConfig {
            dim: 16,
            epochs: 1,
            vocab: vocab.clone(),
            ..Default::default()
        },
    );
    let lstm = LstmAutoencoder::train(
        &train,
        LstmConfig {
            embed_dim: 8,
            hidden: 16,
            max_len: 12,
            epochs: 1,
            vocab,
            ..Default::default()
        },
    );
    let bow = BagOfTokens::new(32, true);
    let embedders: [&dyn Embedder; 3] = [&bow, &d2v, &lstm];
    // 70 queries: spans two parallel chunks plus a partial third;
    // empty and single-query batches cover the edges.
    for batch in [0usize, 1, 70] {
        let docs = synth_docs(batch, 0xba7c4 + batch as u64);
        for e in embedders {
            let per_query: Vec<Vec<f32>> =
                with_threads(1, || docs.iter().map(|d| e.embed(d)).collect());
            for t in SWEEP {
                let batched = with_threads(t, || e.embed_batch(&docs));
                assert_eq!(batched.len(), docs.len());
                for (j, (b, w)) in batched.iter().zip(&per_query).enumerate() {
                    assert_eq!(b.len(), w.len());
                    for (x, y) in b.iter().zip(w) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} batch={batch} threads={t} doc={j}",
                            e.name()
                        );
                    }
                }
            }
        }
    }
}
