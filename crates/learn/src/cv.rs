//! Stratified k-fold cross-validation.
//!
//! The paper's Table 1 reports "10-fold cross validation score"; this
//! module reproduces that protocol: folds preserve per-class proportions,
//! each fold serves once as the test set, and the reported score is the
//! pooled accuracy over all held-out predictions.

use crate::metrics::accuracy;
use crate::Classifier;
use querc_linalg::Pcg32;

/// Split `0..labels.len()` into `k` folds whose class proportions match
/// the full set (round-robin within each shuffled class bucket).
pub fn stratified_folds(labels: &[u32], k: usize, rng: &mut Pcg32) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    let mut by_class: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, &y) in labels.iter().enumerate() {
        by_class.entry(y).or_default().push(i);
    }
    let mut folds = vec![Vec::new(); k];
    for (_, mut idxs) in by_class {
        rng.shuffle(&mut idxs);
        for (j, i) in idxs.into_iter().enumerate() {
            folds[j % k].push(i);
        }
    }
    folds
}

/// Run k-fold CV with a classifier factory; returns the pooled held-out
/// accuracy (the paper's "cross validation score") and per-fold accuracies.
pub fn cross_val_accuracy<C, F>(
    x: &[Vec<f32>],
    y: &[u32],
    n_classes: usize,
    k: usize,
    rng: &mut Pcg32,
    make: F,
) -> (f64, Vec<f64>)
where
    C: Classifier,
    F: Fn() -> C,
{
    assert_eq!(x.len(), y.len());
    let folds = stratified_folds(y, k, rng);
    let mut all_pred = Vec::with_capacity(y.len());
    let mut all_true = Vec::with_capacity(y.len());
    let mut per_fold = Vec::with_capacity(k);
    for (f, test_idx) in folds.iter().enumerate() {
        if test_idx.is_empty() {
            continue;
        }
        let test_set: std::collections::HashSet<usize> = test_idx.iter().copied().collect();
        let mut train_x = Vec::with_capacity(x.len() - test_idx.len());
        let mut train_y = Vec::with_capacity(x.len() - test_idx.len());
        for i in 0..x.len() {
            if !test_set.contains(&i) {
                train_x.push(x[i].clone());
                train_y.push(y[i]);
            }
        }
        let mut model = make();
        let mut fold_rng = rng.split(f as u64 + 100);
        model.fit(&train_x, &train_y, n_classes, &mut fold_rng);
        let mut fold_pred = Vec::with_capacity(test_idx.len());
        let mut fold_true = Vec::with_capacity(test_idx.len());
        for &i in test_idx {
            fold_pred.push(model.predict(&x[i]));
            fold_true.push(y[i]);
        }
        per_fold.push(accuracy(&fold_pred, &fold_true));
        all_pred.extend(fold_pred);
        all_true.extend(fold_true);
    }
    (accuracy(&all_pred, &all_true), per_fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestConfig, RandomForest};

    #[test]
    fn folds_partition_all_indices() {
        let labels: Vec<u32> = (0..100).map(|i| (i % 3) as u32).collect();
        let folds = stratified_folds(&labels, 10, &mut Pcg32::new(1));
        assert_eq!(folds.len(), 10);
        let mut seen: Vec<usize> = folds.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 80 of class 0, 20 of class 1 → every fold of 10 should hold 8/2.
        let labels: Vec<u32> = (0..100).map(|i| u32::from(i >= 80)).collect();
        let folds = stratified_folds(&labels, 10, &mut Pcg32::new(2));
        for f in &folds {
            let ones = f.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(ones, 2, "fold should carry 2 of the minority class");
        }
    }

    #[test]
    fn cv_on_separable_data_scores_high() {
        let mut rng = Pcg32::new(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..120 {
            let a = rng.range_f32(-1.0, 1.0);
            let b = rng.range_f32(-1.0, 1.0);
            x.push(vec![a, b]);
            y.push(u32::from(a > 0.0));
        }
        let (score, per_fold) = cross_val_accuracy(&x, &y, 2, 10, &mut Pcg32::new(4), || {
            RandomForest::new(ForestConfig::extra_trees(15))
        });
        assert_eq!(per_fold.len(), 10);
        assert!(score > 0.9, "cv score {score}");
    }

    #[test]
    fn cv_on_random_labels_is_near_chance() {
        let mut rng = Pcg32::new(5);
        let x: Vec<Vec<f32>> = (0..200).map(|_| vec![rng.f32(), rng.f32()]).collect();
        let y: Vec<u32> = (0..200).map(|_| rng.below(4)).collect();
        let (score, _) = cross_val_accuracy(&x, &y, 4, 5, &mut Pcg32::new(6), || {
            RandomForest::new(ForestConfig::extra_trees(10))
        });
        assert!(score < 0.45, "chance-level data scored {score}");
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k1_is_rejected() {
        stratified_folds(&[0, 1], 1, &mut Pcg32::new(7));
    }
}
