//! Qworkers — the per-application serving processes of Fig 1.
//!
//! A Qworker consumes a stream of queries, runs its classifiers (and,
//! when serving for a [`crate::service::WorkloadManager`], its
//! application's batched labeler) to attach labels, and forwards the
//! labeled query onward: to the database sink, to the central training
//! module, or both. In *forked* mode (paper §2: "Querc may not be in
//! the critical path") queries are only mirrored to training and never
//! forwarded to the database.
//!
//! The run loop drains its channel in **chunks**: one blocking `recv`
//! followed by non-blocking `try_recv` up to the batch size, so a busy
//! stream is labeled through [`querc_embed::Embedder::embed_batch`]
//! (amortizing embedder setup) while a trickle still flows query by
//! query with no added latency.
//!
//! Chunks are [`EnrichedQuery`]s: each query's normalized tokens are
//! lexed **at most once** (memoized — regression-tested against the
//! lexer's call counter) and embedding vectors attached upstream (the
//! manager's ingress embed plane) are reused by every classifier and
//! the app via [`QueryClassifier::label_vectors_batch`] instead of
//! re-embedding per consumer.
//!
//! Classifiers come in two flavors: a **pinned** list fixed at
//! construction, and **registry-resolved** labels
//! ([`Qworker::with_registry`]) that are re-resolved from the
//! [`crate::registry::ModelRegistry`] once per chunk — a concurrent
//! `deploy` hot-swaps the model *between* chunks, never mid-chunk, so
//! every chunk is labeled by exactly one model version.
//!
//! Qworkers hold no heavyweight state — classifiers and fitted apps are
//! `Arc`s — so they can be replicated and load-balanced over one MPMC
//! stream.

use crate::classifier::QueryClassifier;
use crate::enriched::EnrichedQuery;
use crate::histogram::LatencyHistogram;
use crate::labeled::LabeledQuery;
use crate::qos::{DrrScheduler, QosState};
use crate::registry::ModelRegistry;
use crate::service::{routing_key, AppCounters, FittedApp};
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Default maximum chunk a worker drains per iteration.
pub const DEFAULT_BATCH: usize = 32;

/// A query stamped with its submit time — the message type on sharded
/// manager streams, letting the consuming worker record client-
/// perceived submit→labeled latency into the app's
/// [`LatencyHistogram`]. Carries an [`EnrichedQuery`] so ingress-derived
/// artifacts (tokens, fingerprint, cached vectors) ride along to the
/// shard instead of being recomputed there.
#[derive(Debug, Clone)]
pub struct TimedQuery {
    /// The query being served, with its derived artifacts.
    pub query: EnrichedQuery,
    /// When the producer called `submit`/`submit_batch`. Stamped before
    /// ingress embedding and the (possibly blocking) send, so under
    /// backpressure the measured latency includes both the embed work
    /// and the wait for queue space — what a client would actually
    /// observe, not just time spent inside the queue.
    pub enqueued_at: Instant,
}

impl TimedQuery {
    /// Stamp `query` with the current time.
    pub fn now(query: impl Into<EnrichedQuery>) -> TimedQuery {
        TimedQuery {
            query: query.into(),
            enqueued_at: Instant::now(),
        }
    }

    /// Re-stamp an already-enriched query (the manager stamps before
    /// ingress embedding; see [`TimedQuery::enqueued_at`]).
    pub fn at(query: EnrichedQuery, enqueued_at: Instant) -> TimedQuery {
        TimedQuery { query, enqueued_at }
    }
}

/// Where the Qworker forwards labeled queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QworkerMode {
    /// In the critical path: forward to the database AND the trainer.
    Inline,
    /// Off the critical path: mirror to the trainer only.
    Forked,
}

/// A per-application worker applying (embedder, labeler) classifiers
/// and, optionally, one fitted [`crate::apps::WorkloadApp`].
pub struct Qworker {
    /// Application name (e.g. `app-X`), attached as a label.
    pub application: String,
    classifiers: Vec<Arc<QueryClassifier>>,
    registry: Option<(Arc<ModelRegistry>, Vec<String>)>,
    app: Option<Arc<FittedApp>>,
    mode: QworkerMode,
    batch: usize,
    counters: Option<Arc<AppCounters>>,
    histogram: Option<Arc<LatencyHistogram>>,
    qos: Option<Arc<QosState>>,
}

impl Qworker {
    /// A worker for `application` applying the given classifiers.
    pub fn new(
        application: impl Into<String>,
        classifiers: Vec<Arc<QueryClassifier>>,
        mode: QworkerMode,
    ) -> Self {
        Qworker {
            application: application.into(),
            classifiers,
            registry: None,
            app: None,
            mode,
            batch: DEFAULT_BATCH,
            counters: None,
            histogram: None,
            qos: None,
        }
    }

    /// Attach a fitted application whose `label_batch` runs on every
    /// chunk (the manager's serving path).
    pub fn with_app(mut self, app: Arc<FittedApp>) -> Self {
        self.app = Some(app);
        self
    }

    /// Additionally attach every `labels` classifier resolved from
    /// `registry`, re-resolved **once per chunk**: a concurrent
    /// [`ModelRegistry::deploy`] takes effect at the next chunk boundary
    /// (live hot-swap without re-registering the app), while each chunk
    /// is labeled by exactly one pinned model version — never a mid-chunk
    /// mix. A label that is currently undeployed is skipped for the whole
    /// chunk.
    pub fn with_registry(mut self, registry: Arc<ModelRegistry>, labels: Vec<String>) -> Self {
        self.registry = Some((registry, labels));
        self
    }

    /// Maximum chunk size drained per loop iteration (≥ 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Live throughput counters shared with the manager.
    pub fn with_counter(mut self, counters: Arc<AppCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Shared latency histogram; [`Qworker::run_timed`] records each
    /// query's enqueue→labeled latency into it.
    pub fn with_histogram(mut self, histogram: Arc<LatencyHistogram>) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// Attach the manager's QoS state: [`Qworker::run_timed`] then
    /// drains its shard through a per-tenant [`DrrScheduler`] (weights
    /// and quantum from `qos`) instead of the raw channel FIFO, and
    /// reports per-query completions into the per-tenant accounting.
    pub fn with_qos(mut self, qos: Arc<QosState>) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Label one query with every classifier (and the app, if any).
    pub fn process(&self, lq: LabeledQuery) -> LabeledQuery {
        self.process_chunk(vec![EnrichedQuery::new(lq)])
            .pop()
            .expect("one in, one out")
    }

    /// Label a chunk: each query is lexed at most once (memoized in its
    /// [`EnrichedQuery`]), each embedder in play embeds a query at most
    /// once (ingress-cached vectors are reused, worker-computed ones are
    /// memoized back onto the query), then every classifier and the
    /// fitted app label from the shared vectors. Output `i` corresponds
    /// to input `i`.
    pub fn process_chunk(&self, mut chunk: Vec<EnrichedQuery>) -> Vec<LabeledQuery> {
        if chunk.is_empty() {
            return Vec::new();
        }
        for q in &mut chunk {
            q.set("application", &self.application);
        }
        for clf in &self.classifiers {
            Self::apply_classifier(&mut chunk, clf);
        }
        if let Some((registry, labels)) = &self.registry {
            for label in labels {
                // Resolve once per chunk and hold the Arc until the whole
                // chunk is labeled: a concurrent deploy swaps model
                // versions at chunk boundaries, never inside one.
                if let Some(clf) = registry.get(label) {
                    Self::apply_classifier(&mut chunk, &clf);
                }
            }
        }
        if let Some(app) = &self.app {
            // Pre-fill the app embedder's vectors (memoized) so
            // `label_batch`, which sees the chunk immutably, finds them.
            if let Some(embedder) = app.embedder() {
                let _ = EnrichedQuery::vectors_memo(&mut chunk, embedder.as_ref());
            }
            match app.label_batch(&chunk) {
                Ok(outputs) => {
                    for (q, out) in chunk.iter_mut().zip(outputs) {
                        out.apply_to(q.labeled_mut());
                    }
                }
                Err(e) => {
                    // Serving must not die on one bad chunk: surface the
                    // failure as a label and keep the stream moving.
                    for q in &mut chunk {
                        q.set("app_error", e.to_string());
                    }
                }
            }
        }
        chunk.into_iter().map(EnrichedQuery::into_labeled).collect()
    }

    /// Attach one classifier's `predicted_<label>` to every query in the
    /// chunk, labeling from shared vectors: cached ones are reused, the
    /// rest are embedded in one batched call and memoized for the next
    /// consumer of the same embedder.
    fn apply_classifier(chunk: &mut [EnrichedQuery], clf: &QueryClassifier) {
        let vectors = EnrichedQuery::vectors_memo(chunk, clf.embedder().as_ref());
        let values = clf.label_vectors_batch(&vectors);
        for (q, value) in chunk.iter_mut().zip(values) {
            q.set(format!("predicted_{}", clf.label_name), value);
        }
    }

    /// Drain a stream until it closes, forwarding per the mode. Returns
    /// the number of queries processed. Run this on a thread per
    /// application; all channels are crossbeam MPMC so workers can be
    /// replicated on the same stream.
    pub fn run(
        &self,
        input: Receiver<LabeledQuery>,
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        self.run_loop(
            input,
            |lq| (EnrichedQuery::new(lq), None),
            database,
            trainer,
        )
    }

    /// [`Qworker::run`] over a stream of [`TimedQuery`]s — the sharded
    /// manager's per-shard loop. Each query's enqueue→labeled latency is
    /// recorded into the histogram installed by
    /// [`Qworker::with_histogram`]. With [`Qworker::with_qos`] attached,
    /// the shard is drained fairly: arrivals are parked in per-tenant
    /// subqueues and chunks are assembled by deficit round robin, so one
    /// tenant's backlog cannot monopolize the shard.
    pub fn run_timed(
        &self,
        input: Receiver<TimedQuery>,
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        if let Some(qos) = &self.qos {
            return self.run_drr(Arc::clone(qos), input, database, trainer);
        }
        self.run_loop(input, |t| (t.query, Some(t.enqueued_at)), database, trainer)
    }

    /// The QoS drain loop: pull every available arrival off the bounded
    /// channel into the per-tenant [`DrrScheduler`] (the channel stays
    /// short — the per-tenant admission cap is what bounds scheduler
    /// memory), then dequeue one fair chunk and label it. Per-tenant
    /// FIFO still holds end to end: the channel preserves arrival order
    /// and the scheduler only ever pops a tenant's subqueue from the
    /// front.
    fn run_drr(
        &self,
        qos: Arc<QosState>,
        input: Receiver<TimedQuery>,
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        let mut sched: DrrScheduler<TimedQuery> = DrrScheduler::new(qos.quantum());
        let mut open = true;
        let mut processed = 0usize;
        let enqueue = |sched: &mut DrrScheduler<TimedQuery>, t: TimedQuery| {
            let tenant = routing_key(t.query.labeled()).to_string();
            let weight = qos.weight_of(&tenant);
            sched.enqueue(&tenant, weight, t);
        };
        while open || !sched.is_empty() {
            if open && sched.is_empty() {
                // Nothing parked: block for the next arrival (or close).
                match input.recv() {
                    Ok(t) => enqueue(&mut sched, t),
                    Err(_) => {
                        open = false;
                        continue;
                    }
                }
            }
            // Greedily absorb everything already queued so the scheduler
            // sees the full cross-tenant picture before picking a chunk.
            while open {
                match input.try_recv() {
                    Ok(t) => enqueue(&mut sched, t),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => open = false,
                }
            }
            let timed = sched.dequeue_chunk(self.batch);
            if timed.is_empty() {
                continue;
            }
            let mut chunk = Vec::with_capacity(timed.len());
            let mut stamps = Vec::with_capacity(timed.len());
            let mut tenants = Vec::with_capacity(timed.len());
            for t in timed {
                tenants.push(routing_key(t.query.labeled()).to_string());
                stamps.push(t.enqueued_at);
                chunk.push(t.query);
            }
            let n = chunk.len();
            let labeled_chunk = self.process_chunk(chunk);
            let done = Instant::now();
            for (tenant, at) in tenants.iter().zip(&stamps) {
                let elapsed = done.duration_since(*at);
                if let Some(histogram) = &self.histogram {
                    histogram.record(elapsed);
                }
                qos.complete(tenant, Some(elapsed));
            }
            for labeled in labeled_chunk {
                if self.mode == QworkerMode::Inline {
                    let _ = database.send(labeled.clone());
                }
                let _ = trainer.send(labeled);
            }
            processed += n;
            if let Some(counters) = &self.counters {
                counters.processed.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
        processed
    }

    /// The chunked drain loop shared by [`Qworker::run`] and
    /// [`Qworker::run_timed`]: one blocking `recv` per chunk, greedy
    /// non-blocking fill up to the batch size, one `process_chunk`.
    fn run_loop<T>(
        &self,
        input: Receiver<T>,
        split: impl Fn(T) -> (EnrichedQuery, Option<Instant>),
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        let mut processed = 0usize;
        // Block for the first query of each chunk, then greedily fill it.
        while let Ok(first) = input.recv() {
            let mut chunk = Vec::with_capacity(self.batch);
            let mut stamps = Vec::with_capacity(self.batch);
            let (lq, at) = split(first);
            chunk.push(lq);
            stamps.push(at);
            while chunk.len() < self.batch {
                match input.try_recv() {
                    Ok(msg) => {
                        let (lq, at) = split(msg);
                        chunk.push(lq);
                        stamps.push(at);
                    }
                    Err(_) => break,
                }
            }
            let n = chunk.len();
            let labeled_chunk = self.process_chunk(chunk);
            if let Some(histogram) = &self.histogram {
                let done = Instant::now();
                for at in stamps.iter().flatten() {
                    histogram.record(done.duration_since(*at));
                }
            }
            for labeled in labeled_chunk {
                if self.mode == QworkerMode::Inline {
                    // The sink may have hung up (tests, shutdown); labeling
                    // continues because the training mirror matters more.
                    let _ = database.send(labeled.clone());
                }
                let _ = trainer.send(labeled);
            }
            processed += n;
            if let Some(counters) = &self.counters {
                counters.processed.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainedLabeler;
    use crossbeam::channel::unbounded;
    use querc_embed::{BagOfTokens, Embedder};
    use querc_learn::{ForestConfig, RandomForest};
    use querc_linalg::Pcg32;

    fn team_classifier() -> Arc<QueryClassifier> {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
        let sqls: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    format!("select a{} from warehouse_facts", i)
                } else {
                    format!("insert into event_log values ({i})")
                }
            })
            .collect();
        let labels: Vec<&str> = (0..20)
            .map(|i| if i % 2 == 0 { "analytics" } else { "ingest" })
            .collect();
        let vectors: Vec<Vec<f32>> = sqls.iter().map(|s| embedder.embed_sql(s)).collect();
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(10)),
            &vectors,
            &labels,
            &mut Pcg32::new(5),
        );
        Arc::new(QueryClassifier::new("workload_class", embedder, labeler))
    }

    #[test]
    fn process_attaches_application_and_predictions() {
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        let out = worker.process(LabeledQuery::new("select a2 from warehouse_facts"));
        assert_eq!(out.get("application"), Some("app-X"));
        assert_eq!(out.get("predicted_workload_class"), Some("analytics"));
    }

    #[test]
    fn process_chunk_matches_query_at_a_time() {
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        let sqls = [
            "select a4 from warehouse_facts",
            "insert into event_log values (9)",
            "select a8 from warehouse_facts",
        ];
        let chunk: Vec<EnrichedQuery> = sqls.iter().map(|s| EnrichedQuery::from_sql(*s)).collect();
        let batched = worker.process_chunk(chunk);
        for (sql, out) in sqls.iter().zip(&batched) {
            let single = worker.process(LabeledQuery::new(*sql));
            assert_eq!(*out, single, "chunked and single paths must agree");
        }
    }

    #[test]
    fn inline_mode_forwards_to_database_and_trainer() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        for i in 0..5 {
            in_tx
                .send(LabeledQuery::new(format!(
                    "insert into event_log values ({i})"
                )))
                .unwrap();
        }
        drop(in_tx);
        let n = worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(n, 5);
        assert_eq!(db_rx.iter().count(), 5);
        assert_eq!(tr_rx.iter().count(), 5);
    }

    #[test]
    fn forked_mode_skips_database() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-Y", vec![team_classifier()], QworkerMode::Forked);
        in_tx.send(LabeledQuery::new("select 1")).unwrap();
        drop(in_tx);
        worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(db_rx.iter().count(), 0, "forked mode mirrors only");
        assert_eq!(tr_rx.iter().count(), 1);
    }

    #[test]
    fn replicated_workers_share_a_stream() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, _db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let mut handles = Vec::new();
        for w in 0..3 {
            let rx = in_rx.clone();
            let db = db_tx.clone();
            let tr = tr_tx.clone();
            let clf = team_classifier();
            handles.push(std::thread::spawn(move || {
                let worker = Qworker::new(format!("app-{w}"), vec![clf], QworkerMode::Forked);
                worker.run(rx, db, tr)
            }));
        }
        drop(db_tx);
        drop(tr_tx);
        for i in 0..60 {
            in_tx
                .send(LabeledQuery::new(format!(
                    "select {i} from warehouse_facts"
                )))
                .unwrap();
        }
        drop(in_tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 60, "every query processed exactly once");
        assert_eq!(tr_rx.iter().count(), 60);
    }

    #[test]
    fn tiny_batch_size_still_processes_everything() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker =
            Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline).with_batch(1);
        for i in 0..7 {
            in_tx
                .send(LabeledQuery::new(format!(
                    "select a{i} from warehouse_facts"
                )))
                .unwrap();
        }
        drop(in_tx);
        assert_eq!(worker.run(in_rx, db_tx, tr_tx), 7);
        assert_eq!(db_rx.iter().count(), 7);
        assert_eq!(tr_rx.iter().count(), 7);
    }

    #[test]
    fn chunk_lexes_each_query_exactly_once() {
        use crate::apps::{ResourcesApp, TrainCorpus};
        use crate::service::FittedApp;
        use querc_workloads::QueryRecord;

        // Two classifiers with *distinct* embedder configs plus a fitted
        // app: before the EnrichedQuery memoization, each consumer
        // re-tokenized the chunk (4 lexes per query); now the OnceLock
        // serves every consumer from one lex.
        let records: Vec<QueryRecord> = (0..30)
            .map(|i| QueryRecord {
                sql: format!("select v from kv_store where k = {i}"),
                user: "u".into(),
                account: "a".into(),
                cluster: "c".into(),
                dialect: "generic".into(),
                runtime_ms: (i % 3) as f64 * 400.0,
                mem_mb: 1.0,
                error_code: None,
                timestamp: i,
            })
            .collect();
        let corpus = TrainCorpus::from_records(records, 3);
        let app = Arc::new(
            FittedApp::fit(
                ResourcesApp::new(Arc::new(BagOfTokens::new(32, false))),
                &corpus,
            )
            .unwrap(),
        );
        let worker = Qworker::new(
            "app-X",
            vec![team_classifier(), team_classifier()],
            QworkerMode::Inline,
        )
        .with_app(app);

        let chunk: Vec<EnrichedQuery> = (0..9)
            .map(|i| EnrichedQuery::from_sql(format!("select a{i} from warehouse_facts")))
            .collect();
        let before = querc_sql::lex_calls_this_thread();
        let labeled = worker.process_chunk(chunk);
        let lexes = querc_sql::lex_calls_this_thread() - before;
        assert_eq!(labeled.len(), 9);
        assert_eq!(
            lexes, 9,
            "2 classifiers + 1 app must share one lex per query, saw {lexes}"
        );
        for lq in &labeled {
            assert!(lq.get("predicted_workload_class").is_some());
            assert!(lq.get("resource_class").is_some());
        }
    }

    #[test]
    fn registry_hot_swap_is_never_mid_chunk() {
        use crate::registry::ModelRegistry;

        // A classifier whose every prediction is its version tag: train
        // a single-class labeler so predict() is constant.
        fn tagged(tag: &str) -> QueryClassifier {
            let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(16, false));
            let docs: Vec<Vec<String>> = (0..4)
                .map(|i| querc_embed::sql_tokens(&format!("select {i} from t")))
                .collect();
            let vectors = embedder.embed_batch(&docs);
            let labels: Vec<&str> = vec![tag; 4];
            let labeler = TrainedLabeler::train(
                RandomForest::new(ForestConfig::extra_trees(2)),
                &vectors,
                &labels,
                &mut Pcg32::new(9),
            );
            QueryClassifier::new("version", embedder, labeler)
        }

        let registry = Arc::new(ModelRegistry::new());
        registry.deploy("version", tagged("v0"));
        let worker = Qworker::new("app-X", Vec::new(), QworkerMode::Forked)
            .with_registry(Arc::clone(&registry), vec!["version".to_string()]);

        // Deployer thread: hot-swaps (and briefly undeploys) while the
        // main thread labels chunks.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let deployer = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::SeqCst) {
                    registry.deploy("version", tagged(&format!("v{v}")));
                    if v.is_multiple_of(7) {
                        registry.undeploy("version");
                        registry.deploy("version", tagged(&format!("v{v}")));
                    }
                    v += 1;
                    std::thread::yield_now();
                }
            })
        };

        for round in 0..300 {
            let chunk: Vec<EnrichedQuery> = (0..8)
                .map(|i| EnrichedQuery::from_sql(format!("select {i} from t where x = {round}")))
                .collect();
            let labeled = worker.process_chunk(chunk);
            // Consistency: within one chunk, every query saw the SAME
            // model version (one pinned Arc) — or, if the label was
            // undeployed at the chunk boundary, none did.
            let tags: std::collections::HashSet<Option<&str>> = labeled
                .iter()
                .map(|lq| lq.get("predicted_version"))
                .collect();
            assert_eq!(
                tags.len(),
                1,
                "round {round}: chunk saw a mid-chunk model swap: {tags:?}"
            );
        }
        stop.store(true, Ordering::SeqCst);
        deployer.join().unwrap();
    }

    #[test]
    fn hung_up_database_does_not_stop_labeling() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        drop(db_rx); // database sink gone
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        in_tx.send(LabeledQuery::new("select 1")).unwrap();
        drop(in_tx);
        let n = worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(n, 1);
        assert_eq!(tr_rx.iter().count(), 1);
    }
}
