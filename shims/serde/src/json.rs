//! A small JSON document model and recursive-descent parser.
//!
//! Numbers are kept as their source text so integer width and float
//! precision are decided by the consuming `Deserialize` impl, not by a
//! lossy intermediate `f64`.

use std::fmt;

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number text exactly as it appeared in the document.
    Number(String),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }

    pub fn as_number(&self) -> Result<&str, Error> {
        match self {
            Value::Number(s) => Ok(s),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }

    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }

    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(o) => Ok(o),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Struct-field lookup used by derived `Deserialize` impls.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::msg("bad utf8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::msg("empty number"));
        }
        Ok(Value::Number(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .unwrap()
                .to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_basics() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(v.field("b").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert!(matches!(v.field("d").unwrap(), Value::Null));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("{not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn float_text_is_preserved() {
        let v = parse("[0.30000001192092896]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_number().unwrap(), "0.30000001192092896");
    }
}
