//! SQ8 scalar-quantized nearest-neighbor search.
//!
//! An [`Sq8Index`] stores each row as one byte per dimension instead of
//! four: per-dimension affine quantization `x̂_d = min_d + code_d ·
//! step_d` with `step_d = (max_d − min_d) / 255` trained over the
//! indexed rows. Search runs **asymmetric distance computation** (ADC):
//! the query stays full-precision f32 and is compared against decoded
//! codes on the fly by the fused [`crate::simd`] u8 kernels — the codes
//! are never materialized back to f32 rows.
//!
//! Two compositions:
//!
//! * `nlist == 0` — a flat ADC scan over all codes;
//! * `nlist > 0` (or [`Sq8Config::AUTO_NLIST`]) — IVF coarse
//!   quantization on top (the same `coarse_partition` as
//!   [`crate::IvfIndex`]), scanning only the `nprobe` nearest lists.
//!   For squared-Euclidean the quantizer then encodes **residuals**
//!   `x − centroid` with one quantizer shared across lists: residual
//!   ranges are a fraction of raw coordinate ranges, so the per-dim
//!   step (and with it the ADC error) shrinks by the same factor and
//!   recall stays within noise of the exact-IVF scan at equal `nprobe`.
//!
//! `rerank_factor` trades memory for exactness: with `r > 0` the
//! original f32 store is retained and the top `r × k` ADC candidates
//! are re-scored exactly (reported distances are then bit-identical to
//! a [`crate::FlatIndex`] over the same rows); with `r == 0` the f32
//! rows are dropped entirely — codes + ids are all that stays resident
//! (≈ ¼ of the f32 bytes) and ADC distances are reported.
//!
//! Determinism: codes, centroids and the quantizer are deterministic
//! under the config seed; ADC kernels are bit-identical across the
//! scalar/AVX2 arms; hits follow the crate-wide `(distance, id)` total
//! order. A persisted index restored through [`Sq8Index::from_parts`]
//! reproduces search results bit for bit.

use crate::ivf::coarse_partition;
use crate::metric::Metric;
use crate::store::VectorStore;
use crate::{simd, Hit, IndexStats, TopK, VectorIndex};
use querc_linalg::ops;
use std::sync::atomic::{AtomicU64, Ordering};

/// Code rows per ADC scan chunk (mirrors the flat scan's blocking).
const SCAN_BLOCK: usize = 256;

/// Build/search knobs for an [`Sq8Index`].
#[derive(Debug, Clone)]
pub struct Sq8Config {
    /// Coarse inverted lists on top of the codes. `0` ⇒ none: a flat
    /// ADC scan. [`Sq8Config::AUTO_NLIST`] ⇒ `⌈√n⌉` like
    /// [`crate::IvfConfig`]'s auto mode.
    pub nlist: usize,
    /// Lists scanned per query when a coarse layer exists (clamped to
    /// `[1, nlist]` at search time).
    pub nprobe: usize,
    /// Exact re-rank breadth: the top `rerank_factor × k` ADC
    /// candidates are re-scored against retained f32 rows. `0` drops
    /// the f32 store entirely (maximum memory reduction, ADC distances
    /// reported).
    pub rerank_factor: usize,
    /// Lloyd iterations for the coarse quantizer.
    pub train_iters: usize,
    /// Coarse-quantizer training sample (see
    /// [`crate::IvfConfig::train_sample`]). `0` ⇒ all rows.
    pub train_sample: usize,
    /// Seed for the coarse quantizer.
    pub seed: u64,
}

impl Sq8Config {
    /// Marker for `nlist`: pick `⌈√n⌉` coarse lists at build time.
    pub const AUTO_NLIST: usize = usize::MAX;
}

impl Default for Sq8Config {
    fn default() -> Self {
        Sq8Config {
            nlist: 0,
            nprobe: 8,
            rerank_factor: 4,
            train_iters: 10,
            train_sample: 100_000,
            seed: 0x1df5,
        }
    }
}

/// Per-dimension affine quantizer: `encode(x) = round((x − min) / step)`
/// clamped to `[0, 255]`, `decode(c) = min + c · step`. Degenerate
/// dimensions (`max == min`) get `step == 0` and always encode to 0.
#[derive(Debug, Clone)]
struct Sq8Quantizer {
    min: Vec<f32>,
    step: Vec<f32>,
    inv_step: Vec<f32>,
}

impl Sq8Quantizer {
    fn from_min_step(min: Vec<f32>, step: Vec<f32>) -> Sq8Quantizer {
        let inv_step = step
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        Sq8Quantizer {
            min,
            step,
            inv_step,
        }
    }

    /// Train on per-dim ranges of `residual(i)` over all rows.
    fn train(n: usize, dim: usize, mut residual: impl FnMut(usize, &mut [f32])) -> Sq8Quantizer {
        let mut lo = vec![f32::INFINITY; dim];
        let mut hi = vec![f32::NEG_INFINITY; dim];
        let mut r = vec![0.0f32; dim];
        for i in 0..n {
            residual(i, &mut r);
            for d in 0..dim {
                lo[d] = lo[d].min(r[d]);
                hi[d] = hi[d].max(r[d]);
            }
        }
        let mut min = Vec::with_capacity(dim);
        let mut step = Vec::with_capacity(dim);
        for d in 0..dim {
            let (l, h) = if lo[d] <= hi[d] {
                (lo[d], hi[d])
            } else {
                (0.0, 0.0) // n == 0
            };
            min.push(l);
            let s = (h - l) / 255.0;
            step.push(if s.is_finite() && s > 0.0 { s } else { 0.0 });
        }
        Sq8Quantizer::from_min_step(min, step)
    }

    #[inline]
    fn encode_into(&self, r: &[f32], out: &mut [u8]) {
        for d in 0..r.len() {
            let c = ((r[d] - self.min[d]) * self.inv_step[d]).round();
            out[d] = c.clamp(0.0, 255.0) as u8;
        }
    }

    #[inline]
    fn decode_into(&self, codes: &[u8], out: &mut [f32]) {
        for d in 0..codes.len() {
            out[d] = self.min[d] + codes[d] as f32 * self.step[d];
        }
    }
}

/// Contiguous row-major u8 code storage, stride padded to a multiple
/// of 8 bytes (the ADC kernels widen 8 codes per step).
#[derive(Debug, Clone)]
struct CodeStore {
    data: Vec<u8>,
    dim: usize,
    stride: usize,
}

impl CodeStore {
    fn new(dim: usize, rows: usize) -> CodeStore {
        let stride = dim.div_ceil(8) * 8;
        CodeStore {
            data: vec![0u8; rows * stride],
            dim,
            stride,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.stride..i * self.stride + self.dim]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [u8] {
        let s = self.stride;
        &mut self.data[i * s..i * s + self.dim]
    }
}

/// Scalar-quantized (optionally IVF-composed) ANN index over u8 codes
/// with asymmetric-distance search — see the module docs.
#[derive(Debug)]
pub struct Sq8Index {
    metric: Metric,
    dim: usize,
    quant: Sq8Quantizer,
    /// Coarse centroids; empty ⇒ flat ADC scan over one implicit list.
    centroids: VectorStore,
    /// Codes permuted so each list's rows are contiguous: permuted row
    /// `j` encodes original row `ids[j]`; list `c` spans
    /// `offsets[c]..offsets[c + 1]`.
    codes: CodeStore,
    ids: Vec<u32>,
    offsets: Vec<usize>,
    /// Decoded-row L2 norms per permuted row (cosine only; empty for
    /// squared-Euclidean).
    norms: Vec<f32>,
    /// Retained f32 rows (original id order) when `rerank_factor > 0`.
    exact: Option<VectorStore>,
    nprobe: usize,
    rerank_factor: usize,
    searches: AtomicU64,
    probes: AtomicU64,
    candidates: AtomicU64,
}

impl Sq8Index {
    /// Quantize `store` under `metric` and `cfg`. With a positive
    /// `rerank_factor` the store is retained for exact re-ranking;
    /// with `0` it is dropped once encoded.
    pub fn build(store: VectorStore, metric: Metric, cfg: &Sq8Config) -> Sq8Index {
        let n = store.len();
        let dim = store.dim();
        let (centroids, lists) = if cfg.nlist == 0 || n == 0 {
            (
                VectorStore::new(dim),
                if n == 0 {
                    Vec::new()
                } else {
                    vec![(0..n as u32).collect::<Vec<u32>>()]
                },
            )
        } else {
            let nlist = if cfg.nlist == Sq8Config::AUTO_NLIST {
                0
            } else {
                cfg.nlist
            };
            coarse_partition(
                &store,
                metric,
                nlist,
                cfg.train_iters,
                cfg.train_sample,
                cfg.seed,
            )
        };
        // Residuals only pay off where the centroid lives in the rows'
        // own space: squared-Euclidean. Cosine centroids are
        // unit-normalized while rows have arbitrary magnitude, so raw
        // rows are quantized there.
        let residual_coarse = metric == Metric::Euclidean && !centroids.is_empty();
        // Map permuted slot -> original id, and original id -> its list.
        let mut ids = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0usize);
        let mut list_of = vec![0u32; n];
        for (c, list) in lists.iter().enumerate() {
            for &id in list {
                list_of[id as usize] = c as u32;
                ids.push(id);
            }
            offsets.push(ids.len());
        }
        let residual = |i: usize, out: &mut [f32]| {
            let row = store.row(i);
            if residual_coarse {
                let mu = centroids.row(list_of[i] as usize);
                for d in 0..dim {
                    out[d] = row[d] - mu[d];
                }
            } else {
                out[..dim].copy_from_slice(row);
            }
        };
        let quant = Sq8Quantizer::train(n, dim, residual);
        let mut codes = CodeStore::new(dim, n);
        let mut r = vec![0.0f32; dim];
        for (j, &id) in ids.iter().enumerate() {
            residual(id as usize, &mut r);
            quant.encode_into(&r, codes.row_mut(j));
        }
        let norms = if metric == Metric::Cosine {
            let mut dec = vec![0.0f32; dim];
            (0..n)
                .map(|j| {
                    quant.decode_into(codes.row(j), &mut dec);
                    ops::norm(&dec)
                })
                .collect()
        } else {
            Vec::new()
        };
        Sq8Index {
            metric,
            dim,
            quant,
            centroids,
            codes,
            ids,
            offsets,
            norms,
            exact: (cfg.rerank_factor > 0).then_some(store),
            nprobe: cfg.nprobe.max(1),
            rerank_factor: cfg.rerank_factor,
            searches: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
        }
    }

    /// Bulk-build from row data (see [`VectorStore::from_rows`]).
    ///
    /// # Panics
    /// If `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f32>], metric: Metric, cfg: &Sq8Config) -> Sq8Index {
        Sq8Index::build(VectorStore::from_rows(rows), metric, cfg)
    }

    /// Reassemble an index from previously exported parts — the restore
    /// path for a persisted snapshot. `codes_by_row` is in **original
    /// row order** (row `i`'s `dim` codes at `i * dim`), as returned by
    /// [`Sq8Index::codes_by_row`]; `centroids`/`lists` must both be
    /// empty (flat) or consistent; `exact` re-enables re-ranking and
    /// must hold the original rows. Search counters restart at zero,
    /// search results are bit-identical to the exported index's.
    ///
    /// Returns `None` on any inconsistency (dimension mismatches, list
    /// ids out of range or not a permutation of the rows, code length
    /// not a multiple of `dim`) — a corrupt snapshot must surface an
    /// error, not a panic at search time.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        metric: Metric,
        dim: usize,
        quant_min: Vec<f32>,
        quant_step: Vec<f32>,
        codes_by_row: &[u8],
        centroids: VectorStore,
        lists: Vec<Vec<u32>>,
        exact: Option<VectorStore>,
        nprobe: usize,
        rerank_factor: usize,
    ) -> Option<Sq8Index> {
        if dim == 0 || quant_min.len() != dim || quant_step.len() != dim {
            return None;
        }
        if !codes_by_row.len().is_multiple_of(dim) {
            return None;
        }
        let n = codes_by_row.len() / dim;
        if centroids.len() != lists.len() {
            return None;
        }
        if !centroids.is_empty() && centroids.dim() != dim {
            return None;
        }
        if let Some(ex) = &exact {
            if ex.len() != n || ex.dim() != dim {
                return None;
            }
        }
        let lists = if lists.is_empty() && n > 0 {
            vec![(0..n as u32).collect::<Vec<u32>>()]
        } else {
            lists
        };
        // Every row must appear in exactly one list.
        let mut seen = vec![false; n];
        for &id in lists.iter().flatten() {
            match seen.get_mut(id as usize) {
                Some(s) if !*s => *s = true,
                _ => return None,
            }
        }
        if seen.iter().any(|s| !*s) {
            return None;
        }
        let quant = Sq8Quantizer::from_min_step(quant_min, quant_step);
        let mut ids = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0usize);
        let mut codes = CodeStore::new(dim, n);
        for list in &lists {
            for &id in list {
                let j = ids.len();
                codes
                    .row_mut(j)
                    .copy_from_slice(&codes_by_row[id as usize * dim..(id as usize + 1) * dim]);
                ids.push(id);
            }
            offsets.push(ids.len());
        }
        let norms = if metric == Metric::Cosine {
            let mut dec = vec![0.0f32; dim];
            (0..n)
                .map(|j| {
                    quant.decode_into(codes.row(j), &mut dec);
                    ops::norm(&dec)
                })
                .collect()
        } else {
            Vec::new()
        };
        // The flat placeholder list is an internal detail, not a coarse
        // layer — keep centroids authoritative for `partitions`.
        Some(Sq8Index {
            metric,
            dim,
            quant,
            centroids,
            codes,
            ids,
            offsets,
            norms,
            exact,
            nprobe: nprobe.max(1),
            rerank_factor,
            searches: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
        })
    }

    /// Codes in original row order (`n × dim` bytes) — the export half
    /// of [`Sq8Index::from_parts`].
    pub fn codes_by_row(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.ids.len() * self.dim];
        for (j, &id) in self.ids.iter().enumerate() {
            out[id as usize * self.dim..(id as usize + 1) * self.dim]
                .copy_from_slice(self.codes.row(j));
        }
        out
    }

    /// The quantizer's per-dimension `(min, step)`.
    pub fn quantizer(&self) -> (&[f32], &[f32]) {
        (&self.quant.min, &self.quant.step)
    }

    /// Coarse centroids (empty for a flat SQ8 index).
    pub fn centroids(&self) -> &VectorStore {
        &self.centroids
    }

    /// Inverted lists (empty for a flat SQ8 index).
    pub fn lists(&self) -> Vec<Vec<u32>> {
        if self.centroids.is_empty() {
            return Vec::new();
        }
        (0..self.offsets.len() - 1)
            .map(|c| self.ids[self.offsets[c]..self.offsets[c + 1]].to_vec())
            .collect()
    }

    /// The retained f32 rows, when re-ranking is enabled.
    pub fn exact_store(&self) -> Option<&VectorStore> {
        self.exact.as_ref()
    }

    /// The index's metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Current `nprobe` setting.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Set the recall knob at runtime (≥ 1 enforced).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.max(1);
    }

    /// Exact re-rank breadth (`0` = re-ranking disabled, f32 rows
    /// dropped).
    pub fn rerank_factor(&self) -> usize {
        self.rerank_factor
    }

    /// Number of coarse lists (0 for a flat SQ8 index).
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Internal scan lists (the flat index has one implicit list).
    fn scan_lists(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Probe order over scan lists for `query`.
    fn probe_order(&self, query: &[f32]) -> Vec<u32> {
        if self.centroids.is_empty() {
            return if self.scan_lists() == 0 {
                Vec::new()
            } else {
                vec![0]
            };
        }
        let nprobe = self.nprobe.min(self.centroids.len());
        let mut top = TopK::new(nprobe);
        for c in 0..self.centroids.len() {
            top.push(c as u32, self.metric.distance(query, self.centroids.row(c)));
        }
        top.into_sorted().into_iter().map(|(c, _)| c).collect()
    }

    /// ADC-scan list `c`, pushing `(original id, adc distance)` into
    /// `top`. `scratch` holds the per-query translated operands.
    fn scan_list(&self, c: usize, scratch: &QueryScratch, top: &mut TopK) -> u64 {
        let (start, end) = (self.offsets[c], self.offsets[c + 1]);
        let stride = self.codes.stride;
        let mut buf = [0.0f32; SCAN_BLOCK];
        let mut row = start;
        match self.metric {
            Metric::Euclidean => {
                // t = q − µ_c − min, folded once per (query, list).
                let mut t = scratch.t_base.clone();
                if !self.centroids.is_empty() {
                    let mu = self.centroids.row(c);
                    for d in 0..self.dim {
                        t[d] -= mu[d];
                    }
                }
                while row < end {
                    let chunk = (end - row).min(SCAN_BLOCK);
                    let codes = &self.codes.data[row * stride..(row + chunk) * stride];
                    simd::adc_sq_block(&t, &self.quant.step, codes, stride, &mut buf[..chunk]);
                    for (j, &d) in buf[..chunk].iter().enumerate() {
                        top.push(self.ids[row + j], d);
                    }
                    row += chunk;
                }
            }
            Metric::Cosine => {
                while row < end {
                    let chunk = (end - row).min(SCAN_BLOCK);
                    let codes = &self.codes.data[row * stride..(row + chunk) * stride];
                    simd::adc_dot_block(&scratch.w, codes, stride, &mut buf[..chunk]);
                    for (j, &wcs) in buf[..chunk].iter().enumerate() {
                        let dot = scratch.qb + wcs;
                        let nx = self.norms[row + j];
                        let dist = if scratch.nq == 0.0 || nx == 0.0 {
                            1.0
                        } else {
                            1.0 - (dot / (scratch.nq * nx)).clamp(-1.0, 1.0)
                        };
                        top.push(self.ids[row + j], dist);
                    }
                    row += chunk;
                }
            }
        }
        (end - start) as u64
    }

    /// Re-rank the ADC candidates exactly against the retained f32
    /// rows; falls through unchanged when re-ranking is disabled.
    fn finalize(&self, query: &[f32], k: usize, adc_top: TopK) -> Vec<Hit> {
        let adc_hits = adc_top.into_sorted();
        let Some(exact) = &self.exact else {
            return adc_hits.into_iter().take(k).collect();
        };
        let mut top = TopK::new(k);
        for (id, _) in adc_hits {
            top.push(id, self.metric.distance(query, exact.row(id as usize)));
        }
        top.into_sorted()
    }

    /// ADC candidate breadth for a top-`k` request.
    fn adc_k(&self, k: usize) -> usize {
        if self.exact.is_some() {
            k.saturating_mul(self.rerank_factor.max(1))
        } else {
            k
        }
    }
}

/// Per-query precomputed ADC operands. Everything here is computed
/// with the *scalar* reference kernels, so the values are independent
/// of the active kernel arm — arm parity of full search results then
/// reduces to arm parity of the block kernels.
struct QueryScratch {
    /// Euclidean: `q − min` (per-list centroid folded in later).
    t_base: Vec<f32>,
    /// Cosine: `q ⊙ step`.
    w: Vec<f32>,
    /// Cosine: `dot(q, min)`.
    qb: f32,
    /// Cosine: `‖q‖`.
    nq: f32,
}

impl QueryScratch {
    fn new(ix: &Sq8Index, query: &[f32]) -> QueryScratch {
        match ix.metric {
            Metric::Euclidean => QueryScratch {
                t_base: query
                    .iter()
                    .zip(&ix.quant.min)
                    .map(|(q, m)| q - m)
                    .collect(),
                w: Vec::new(),
                qb: 0.0,
                nq: 0.0,
            },
            Metric::Cosine => QueryScratch {
                t_base: Vec::new(),
                w: query
                    .iter()
                    .zip(&ix.quant.step)
                    .map(|(q, s)| q * s)
                    .collect(),
                qb: ops::dot(query, &ix.quant.min),
                nq: ops::norm(query),
            },
        }
    }
}

impl VectorIndex for Sq8Index {
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.searches.fetch_add(1, Ordering::Relaxed);
        let probed = self.probe_order(query);
        self.probes
            .fetch_add(probed.len() as u64, Ordering::Relaxed);
        if probed.is_empty() {
            return Vec::new();
        }
        let scratch = QueryScratch::new(self, query);
        let mut adc_top = TopK::new(self.adc_k(k));
        let mut scanned = 0u64;
        for &c in &probed {
            scanned += self.scan_list(c as usize, &scratch, &mut adc_top);
        }
        self.candidates.fetch_add(scanned, Ordering::Relaxed);
        self.finalize(query, k, adc_top)
    }

    /// Batched search groups queries by probed list (like
    /// [`crate::IvfIndex`]): each code block is ADC-scanned while hot
    /// for every query probing it. Results are identical to per-query
    /// [`VectorIndex::search`].
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Hit>> {
        self.searches
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        if self.scan_lists() == 0 {
            return vec![Vec::new(); queries.len()];
        }
        let mut by_list: Vec<Vec<u32>> = vec![Vec::new(); self.scan_lists()];
        let mut probed_total = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let probed = self.probe_order(q);
            probed_total += probed.len() as u64;
            for c in probed {
                by_list[c as usize].push(qi as u32);
            }
        }
        self.probes.fetch_add(probed_total, Ordering::Relaxed);
        let scratches: Vec<QueryScratch> =
            queries.iter().map(|q| QueryScratch::new(self, q)).collect();
        let mut tops: Vec<TopK> = queries.iter().map(|_| TopK::new(self.adc_k(k))).collect();
        let mut scanned = 0u64;
        for (c, probers) in by_list.iter().enumerate() {
            for &qi in probers {
                scanned += self.scan_list(c, &scratches[qi as usize], &mut tops[qi as usize]);
            }
        }
        self.candidates.fetch_add(scanned, Ordering::Relaxed);
        queries
            .iter()
            .zip(tops)
            .map(|(q, top)| self.finalize(q, k, top))
            .collect()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn stats(&self) -> IndexStats {
        let quant_bytes =
            (self.quant.min.len() + self.quant.step.len() + self.quant.inv_step.len())
                * std::mem::size_of::<f32>();
        let resident = self.codes.data.len()
            + self.ids.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.norms.len() * std::mem::size_of::<f32>()
            + self.centroids.memory_bytes()
            + quant_bytes
            + self.exact.as_ref().map_or(0, VectorStore::memory_bytes);
        IndexStats {
            searches: self.searches.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            partitions: self.nlist().max(usize::from(!self.ids.is_empty())),
            exact: false,
            backend: if self.centroids.is_empty() {
                "sq8"
            } else {
                "ivf+sq8"
            },
            kernel: simd::kernel_name(),
            resident_bytes: resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatIndex, Kernel};
    use querc_linalg::Pcg32;

    fn blobs(n_per: usize, centers: &[(f32, f32, f32)], seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Pcg32::new(seed);
        let mut pts = Vec::new();
        for &(cx, cy, cz) in centers {
            for _ in 0..n_per {
                pts.push(vec![
                    cx + rng.normal() * 0.4,
                    cy + rng.normal() * 0.4,
                    cz + rng.normal() * 0.4,
                ]);
            }
        }
        pts
    }

    fn recall(truth: &[Hit], got: &[Hit]) -> f64 {
        let t: std::collections::HashSet<u32> = truth.iter().map(|h| h.0).collect();
        got.iter().filter(|h| t.contains(&h.0)).count() as f64 / truth.len().max(1) as f64
    }

    #[test]
    fn flat_sq8_with_rerank_matches_exact_search() {
        let pts = blobs(80, &[(0.0, 0.0, 0.0), (6.0, 6.0, 6.0), (0.0, 6.0, 0.0)], 11);
        let flat = FlatIndex::from_rows(&pts, Metric::Euclidean);
        let sq8 = Sq8Index::from_rows(&pts, Metric::Euclidean, &Sq8Config::default());
        for q in [[0.3f32, 0.1, 0.2], [5.8, 6.1, 6.0], [3.0, 3.0, 3.0]] {
            let exact = flat.search(&q, 10);
            let got = sq8.search(&q, 10);
            assert!(
                recall(&exact, &got) >= 0.9,
                "rerank recall too low: {exact:?} vs {got:?}"
            );
            // Re-ranked distances are the exact f32 distances.
            for (id, d) in &got {
                let want = Metric::Euclidean.distance(&q, flat.store().row(*id as usize));
                assert_eq!(d.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn ivf_sq8_composes_and_counts() {
        let pts = blobs(60, &[(0.0, 0.0, 0.0), (8.0, 8.0, 8.0), (0.0, 8.0, 0.0)], 12);
        let ix = Sq8Index::from_rows(
            &pts,
            Metric::Euclidean,
            &Sq8Config {
                nlist: 3,
                nprobe: 1,
                ..Default::default()
            },
        );
        assert_eq!(ix.nlist(), 3);
        let hits = ix.search(&[8.1, 7.9, 8.0], 5);
        assert_eq!(hits.len(), 5);
        for (id, _) in &hits {
            let p = ix.exact_store().unwrap().row(*id as usize);
            assert!(p[0] > 4.0, "hit {p:?} not in the (8,8,8) blob");
        }
        let s = ix.stats();
        assert_eq!(s.searches, 1);
        assert_eq!(s.probes, 1);
        assert!(s.candidates < 180 * 60, "one blob scanned, not the corpus");
        assert_eq!(s.backend, "ivf+sq8");
        assert!(!s.exact);
    }

    #[test]
    fn rerank_zero_drops_the_f32_store() {
        let pts = blobs(80, &[(0.0, 0.0, 0.0), (9.0, 9.0, 9.0)], 13);
        let lean = Sq8Index::from_rows(
            &pts,
            Metric::Euclidean,
            &Sq8Config {
                rerank_factor: 0,
                ..Default::default()
            },
        );
        let fat = Sq8Index::from_rows(&pts, Metric::Euclidean, &Sq8Config::default());
        assert!(lean.exact_store().is_none());
        assert!(
            lean.stats().resident_bytes * 2 < fat.stats().resident_bytes,
            "lean {} vs fat {}",
            lean.stats().resident_bytes,
            fat.stats().resident_bytes
        );
        // ADC-only search still ranks the right region first.
        let hits = lean.search(&[9.0, 9.0, 9.0], 5);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|&(id, _)| id >= 80));
    }

    #[test]
    fn cosine_sq8_ranks_by_angle() {
        let mut pts = Vec::new();
        for i in 1..=50 {
            let m = i as f32;
            pts.push(vec![m, 0.05 * m, 0.0]);
            pts.push(vec![0.05 * m, m, 0.0]);
        }
        let ix = Sq8Index::from_rows(&pts, Metric::Cosine, &Sq8Config::default());
        let hits = ix.search(&[100.0, 6.0, 0.0], 8);
        assert_eq!(hits.len(), 8);
        for (id, d) in hits {
            let p = ix.exact_store().unwrap().row(id as usize);
            assert!(p[0] > p[1], "angularly wrong hit {p:?} (d={d})");
        }
        // Zero query is at distance exactly 1 from everything.
        let z = ix.search(&[0.0, 0.0, 0.0], 3);
        assert!(z.iter().all(|&(_, d)| d == 1.0), "{z:?}");
    }

    #[test]
    fn search_batch_matches_single() {
        let pts = blobs(50, &[(0.0, 0.0, 0.0), (7.0, 7.0, 0.0), (0.0, 7.0, 7.0)], 14);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let ix = Sq8Index::from_rows(
                &pts,
                metric,
                &Sq8Config {
                    nlist: 3,
                    nprobe: 2,
                    ..Default::default()
                },
            );
            let queries: Vec<Vec<f32>> = (0..7)
                .map(|i| vec![i as f32, (i % 3) as f32 * 3.0, 1.0])
                .collect();
            let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
            let single: Vec<_> = refs.iter().map(|q| ix.search(q, 5)).collect();
            assert_eq!(ix.search_batch(&refs, 5), single, "metric {metric:?}");
        }
    }

    #[test]
    fn from_parts_round_trips_bit_identically_and_validates() {
        let pts = blobs(40, &[(0.0, 0.0, 0.0), (6.0, 0.0, 6.0)], 15);
        for (nlist, rerank) in [(0usize, 4usize), (2, 4), (2, 0)] {
            let built = Sq8Index::from_rows(
                &pts,
                Metric::Euclidean,
                &Sq8Config {
                    nlist,
                    nprobe: 2,
                    rerank_factor: rerank,
                    ..Default::default()
                },
            );
            let (min, step) = built.quantizer();
            let rebuilt = Sq8Index::from_parts(
                Metric::Euclidean,
                built.dim(),
                min.to_vec(),
                step.to_vec(),
                &built.codes_by_row(),
                built.centroids().clone(),
                built.lists(),
                built.exact_store().cloned(),
                built.nprobe(),
                built.rerank_factor(),
            )
            .expect("exported parts are consistent");
            for q in [[0.5f32, 0.2, 0.1], [5.8, 0.1, 6.1], [3.0, 0.0, 3.0]] {
                let a = built.search(&q, 6);
                let b = rebuilt.search(&q, 6);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.0, y.0);
                    assert_eq!(
                        x.1.to_bits(),
                        y.1.to_bits(),
                        "nlist={nlist} rerank={rerank}"
                    );
                }
            }
        }

        let built = Sq8Index::from_rows(&pts, Metric::Euclidean, &Sq8Config::default());
        let (min, step) = built.quantizer();
        let codes = built.codes_by_row();
        // Truncated codes.
        assert!(Sq8Index::from_parts(
            Metric::Euclidean,
            3,
            min.to_vec(),
            step.to_vec(),
            &codes[..codes.len() - 1],
            VectorStore::new(3),
            Vec::new(),
            None,
            1,
            0,
        )
        .is_none());
        // Quantizer length mismatch.
        assert!(Sq8Index::from_parts(
            Metric::Euclidean,
            3,
            min[..2].to_vec(),
            step.to_vec(),
            &codes,
            VectorStore::new(3),
            Vec::new(),
            None,
            1,
            0,
        )
        .is_none());
        // A list id out of range / duplicated.
        let n = pts.len() as u32;
        assert!(Sq8Index::from_parts(
            Metric::Euclidean,
            3,
            min.to_vec(),
            step.to_vec(),
            &codes,
            VectorStore::from_rows(&pts[..2]),
            vec![(0..n).collect(), vec![0u32]],
            None,
            1,
            0,
        )
        .is_none());
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn kernel_arms_agree_on_full_search_results() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        let pts = blobs(70, &[(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)], 16);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let ix = Sq8Index::from_rows(
                &pts,
                metric,
                &Sq8Config {
                    nlist: 2,
                    nprobe: 1,
                    ..Default::default()
                },
            );
            let q = [2.5f32, 2.4, 2.6];
            crate::simd::set_kernel_override(Some(Kernel::Scalar));
            let scalar = ix.search(&q, 8);
            crate::simd::set_kernel_override(Some(Kernel::Avx2));
            let avx2 = ix.search(&q, 8);
            crate::simd::set_kernel_override(None);
            assert_eq!(scalar.len(), avx2.len());
            for (a, b) in scalar.iter().zip(&avx2) {
                assert_eq!(a.0, b.0, "{metric:?}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{metric:?}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_indexes() {
        let empty = Sq8Index::build(
            VectorStore::new(4),
            Metric::Euclidean,
            &Sq8Config::default(),
        );
        assert!(empty.is_empty());
        assert!(empty.search(&[0.0; 4], 3).is_empty());
        assert_eq!(empty.stats().backend, "sq8");

        let one = Sq8Index::from_rows(
            &[vec![1.0f32, 2.0]],
            Metric::Euclidean,
            &Sq8Config::default(),
        );
        let hits = one.search(&[1.0, 2.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        // A single row makes every dimension degenerate: step == 0,
        // decode == min == the row itself, so even ADC is exact here.
        let lean = Sq8Index::from_rows(
            &[vec![1.0f32, 2.0]],
            Metric::Euclidean,
            &Sq8Config {
                rerank_factor: 0,
                ..Default::default()
            },
        );
        assert_eq!(lean.search(&[1.0, 2.0], 1)[0].1, 0.0);
    }
}
