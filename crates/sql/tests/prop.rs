//! Property tests: the SQL front end is total and deterministic.

use proptest::prelude::*;
use querc_sql::{normalize::normalized_text, parse_query, tokenize, Dialect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer accepts ANY string without panicking, in every dialect.
    #[test]
    fn tokenize_never_panics(s in ".{0,200}") {
        for d in Dialect::all() {
            let _ = tokenize(&s, d);
        }
    }

    /// The parser accepts any string without panicking.
    #[test]
    fn parse_never_panics(s in ".{0,200}") {
        let _ = parse_query(&s, Dialect::Generic);
    }

    /// Lexing is deterministic.
    #[test]
    fn tokenize_deterministic(s in ".{0,200}") {
        prop_assert_eq!(tokenize(&s, Dialect::Generic), tokenize(&s, Dialect::Generic));
    }

    /// Normalization is case-insensitive on keywords/identifiers.
    #[test]
    fn normalization_case_insensitive(s in "[a-zA-Z_ ]{0,80}") {
        prop_assert_eq!(
            normalized_text(&s.to_ascii_uppercase(), Dialect::Generic),
            normalized_text(&s.to_ascii_lowercase(), Dialect::Generic)
        );
    }

    /// Numeric literals always normalize to the same placeholder, so two
    /// queries differing only in numbers normalize identically.
    #[test]
    fn literal_blindness(a in 0u32..1_000_000, b in 0u32..1_000_000) {
        let qa = format!("select x from t where v = {a}");
        let qb = format!("select x from t where v = {b}");
        prop_assert_eq!(
            normalized_text(&qa, Dialect::Generic),
            normalized_text(&qb, Dialect::Generic)
        );
    }

    /// Every token's text is a substring of the input (no invention).
    #[test]
    fn tokens_come_from_input(s in "[ -~]{0,120}") {
        for t in tokenize(&s, Dialect::Generic) {
            prop_assert!(s.contains(&t.text), "token {:?} not in {:?}", t.text, s);
        }
    }
}
