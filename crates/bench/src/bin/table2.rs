//! **Table 2** — per-account user-prediction accuracy.
//!
//! The paper's diagnosis of the modest global user-labeling score: most
//! accounts predict at > 95%, but a few accounts in which *multiple users
//! run the exact same query text* are nearly unpredictable — and those
//! repetitive accounts cover ~65% of total query volume, dragging the
//! average down.
//!
//! This binary trains the LSTM-embedder user classifier on a train split,
//! reports held-out per-account accuracy sorted by volume (the paper's
//! table layout), and checks the shape: repetitive accounts at the top
//! with low accuracy, the long tail of normal accounts high.

use querc::apps::audit::{per_account_accuracy, SecurityAuditor};
use querc_bench::harness;
use querc_linalg::Pcg32;
use querc_workloads::record::split_holdout;
use std::sync::Arc;

fn main() {
    println!("== Table 2: per-account user prediction accuracy ==");
    println!("seed = {:#x}, scale = {}", harness::SEED, harness::scale());

    let pretrain = harness::snowcloud_pretrain_corpus();
    eprintln!("training lstm embedder on {} queries…", pretrain.len());
    let lstm: Arc<dyn querc_embed::Embedder> = Arc::new(querc_embed::LstmAutoencoder::train(
        &pretrain,
        harness::lstm_config(),
    ));

    // Larger slice than Table 1: per-account accuracy needs enough held-out
    // queries per user in the tail accounts (the paper's smallest account
    // still has ~1100 queries).
    let labeled = harness::snowcloud_labeled(0.08);
    let mut rng = Pcg32::with_stream(harness::SEED, 0x7ab2);
    let (train, test) = split_holdout(&labeled.records, 0.3, &mut rng);
    eprintln!(
        "labeled workload: {} train / {} test queries",
        train.len(),
        test.len()
    );

    eprintln!("training user classifier…");
    let auditor = SecurityAuditor::train(&train, Arc::clone(&lstm), 40, harness::SEED ^ 0x7ab3);
    let rows = per_account_accuracy(&auditor, &test);

    println!(
        "\n{:>10} {:>9} {:>7} {:>9}",
        "account", "#queries", "#users", "accuracy"
    );
    for r in &rows {
        println!(
            "{:>10} {:>9} {:>7} {:>8.1}%",
            r.account,
            r.queries,
            r.users,
            r.accuracy * 100.0
        );
    }
    let total: usize = rows.iter().map(|r| r.queries).sum();
    let overall: f64 = rows
        .iter()
        .map(|r| r.accuracy * r.queries as f64)
        .sum::<f64>()
        / total as f64;
    println!("\noverall held-out user accuracy: {:.1}%", overall * 100.0);

    // ---- shape checks ----------------------------------------------------
    // acct00/acct01 are the repetitive accounts; acct02 is the
    // many-users/moderate-repetition one (paper's third row).
    println!("\nshape checks:");
    let mut ok = true;
    let acc = |name: &str| rows.iter().find(|r| r.account == name).map(|r| r.accuracy);
    let a0 = acc("acct00").unwrap_or(1.0);
    let a1 = acc("acct01").unwrap_or(1.0);
    ok &= harness::check(
        "repetitive accounts score poorly",
        a0 < 0.7 && a1 < 0.7,
        format!("acct00 {:.1}%, acct01 {:.1}%", a0 * 100.0, a1 * 100.0),
    );
    let top2: usize = rows
        .iter()
        .filter(|r| r.account == "acct00" || r.account == "acct01")
        .map(|r| r.queries)
        .sum();
    ok &= harness::check(
        "repetitive accounts dominate query volume (~65% in the paper)",
        (0.45..0.85).contains(&(top2 as f64 / total as f64)),
        format!("{:.0}% of volume", 100.0 * top2 as f64 / total as f64),
    );
    let normal: Vec<&querc::apps::audit::AccountAccuracy> = rows
        .iter()
        .filter(|r| !matches!(r.account.as_str(), "acct00" | "acct01" | "acct02"))
        .collect();
    let high = normal.iter().filter(|r| r.accuracy > 0.8).count();
    ok &= harness::check(
        "majority of non-repetitive accounts score high",
        high * 2 > normal.len(),
        format!("{high}/{} accounts above 80%", normal.len()),
    );
    ok &= harness::check(
        "overall accuracy is dragged into the middle band",
        (0.30..0.85).contains(&overall),
        format!("{:.1}%", overall * 100.0),
    );
    harness::finish(ok);
}
