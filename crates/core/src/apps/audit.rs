//! Security auditing by user/account prediction (paper §5.2).
//!
//! Train a classifier `V → user` from query syntax alone; at serving time
//! a query whose *predicted* user differs from the *actual* submitting
//! user is flagged for audit (a possibly compromised account). The same
//! machinery with `account` labels powers Table 1's account-labeling task
//! and misrouting detection.

use crate::classifier::TrainedLabeler;
use querc_embed::Embedder;
use querc_learn::{ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Verdict for one audited query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditVerdict {
    pub actual_user: String,
    pub predicted_user: String,
    /// True when prediction and reality disagree — flag for review.
    pub flagged: bool,
}

/// Per-account labeling accuracy (Table 2's rows).
#[derive(Debug, Clone, PartialEq)]
pub struct AccountAccuracy {
    pub account: String,
    pub queries: usize,
    pub users: usize,
    pub accuracy: f64,
}

/// A trained security auditor.
pub struct SecurityAuditor {
    embedder: Arc<dyn Embedder>,
    user_model: TrainedLabeler,
}

impl SecurityAuditor {
    /// Train the user predictor from labeled log records.
    pub fn train(
        records: &[QueryRecord],
        embedder: Arc<dyn Embedder>,
        n_trees: usize,
        seed: u64,
    ) -> SecurityAuditor {
        let vectors: Vec<Vec<f32>> = records
            .iter()
            .map(|r| embedder.embed(&r.tokens()))
            .collect();
        let names: Vec<&str> = records.iter().map(|r| r.user.as_str()).collect();
        let mut rng = Pcg32::with_stream(seed, 0xa0d1);
        let user_model = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(n_trees)),
            &vectors,
            &names,
            &mut rng,
        );
        SecurityAuditor {
            embedder,
            user_model,
        }
    }

    /// Audit one query submission.
    pub fn audit(&self, sql: &str, actual_user: &str) -> AuditVerdict {
        let v = self.embedder.embed_sql(sql);
        let predicted = self.user_model.predict(&v).to_string();
        AuditVerdict {
            flagged: predicted != actual_user,
            actual_user: actual_user.to_string(),
            predicted_user: predicted,
        }
    }

    /// Audit a batch; returns only flagged verdicts with their indices.
    pub fn audit_batch(&self, records: &[QueryRecord]) -> Vec<(usize, AuditVerdict)> {
        records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let verdict = self.audit(&r.sql, &r.user);
                verdict.flagged.then_some((i, verdict))
            })
            .collect()
    }
}

/// Per-account user-prediction accuracy over held-out records, sorted by
/// query volume descending — exactly the layout of the paper's Table 2.
pub fn per_account_accuracy(
    auditor: &SecurityAuditor,
    records: &[QueryRecord],
) -> Vec<AccountAccuracy> {
    #[derive(Default)]
    struct Acc {
        hits: usize,
        total: usize,
        users: std::collections::HashSet<String>,
    }
    let mut by_account: BTreeMap<&str, Acc> = BTreeMap::new();
    for r in records {
        let verdict = auditor.audit(&r.sql, &r.user);
        let acc = by_account.entry(r.account.as_str()).or_default();
        acc.total += 1;
        acc.users.insert(r.user.clone());
        if !verdict.flagged {
            acc.hits += 1;
        }
    }
    let mut rows: Vec<AccountAccuracy> = by_account
        .into_iter()
        .map(|(account, acc)| AccountAccuracy {
            account: account.to_string(),
            queries: acc.total,
            users: acc.users.len(),
            accuracy: acc.hits as f64 / acc.total.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.queries.cmp(&a.queries));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn records() -> Vec<QueryRecord> {
        // Two users with sharply distinct habits.
        (0..40)
            .map(|i| {
                let (user, sql) = if i % 2 == 0 {
                    (
                        "acct/alice",
                        format!("select revenue from finance_reports where q = {i}"),
                    )
                } else {
                    (
                        "acct/bob",
                        format!("insert into sensor_stream values ({i}, {i})"),
                    )
                };
                QueryRecord {
                    sql,
                    user: user.into(),
                    account: "acct".into(),
                    cluster: "c0".into(),
                    dialect: "generic".into(),
                    runtime_ms: 1.0,
                    mem_mb: 1.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect()
    }

    fn auditor() -> SecurityAuditor {
        SecurityAuditor::train(&records(), Arc::new(BagOfTokens::new(64, true)), 15, 7)
    }

    #[test]
    fn normal_queries_pass_audit() {
        let a = auditor();
        let v = a.audit("select revenue from finance_reports where q = 99", "acct/alice");
        assert!(!v.flagged, "{v:?}");
    }

    #[test]
    fn out_of_character_query_is_flagged() {
        let a = auditor();
        // Alice's account suddenly issues Bob-style ingest traffic.
        let v = a.audit("insert into sensor_stream values (1, 2)", "acct/alice");
        assert!(v.flagged);
        assert_eq!(v.predicted_user, "acct/bob");
    }

    #[test]
    fn audit_batch_returns_only_flags() {
        let a = auditor();
        let mut recs = records();
        // Corrupt one record: bob's query under alice's name.
        recs[1].user = "acct/alice".into();
        let flags = a.audit_batch(&recs);
        assert!(flags.iter().any(|(i, _)| *i == 1));
        // Mostly unflagged.
        assert!(flags.len() < recs.len() / 4);
    }

    #[test]
    fn per_account_accuracy_shape() {
        let a = auditor();
        let rows = per_account_accuracy(&a, &records());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].users, 2);
        assert_eq!(rows[0].queries, 40);
        assert!(rows[0].accuracy > 0.9, "separable users: {}", rows[0].accuracy);
    }

    #[test]
    fn indistinguishable_users_cap_accuracy() {
        // All users run the SAME verbatim query — the paper's Table 2
        // failure mode. Accuracy cannot exceed the majority share.
        let shared: Vec<QueryRecord> = (0..30)
            .map(|i| QueryRecord {
                sql: "select * from shared_dashboard".into(),
                user: format!("acct/u{}", i % 3),
                account: "acct".into(),
                cluster: "c0".into(),
                dialect: "generic".into(),
                runtime_ms: 1.0,
                mem_mb: 1.0,
                error_code: None,
                timestamp: i,
            })
            .collect();
        let a = SecurityAuditor::train(&shared, Arc::new(BagOfTokens::new(64, true)), 15, 3);
        let rows = per_account_accuracy(&a, &shared);
        assert!(
            rows[0].accuracy < 0.5,
            "verbatim-identical queries must be nearly unpredictable, got {}",
            rows[0].accuracy
        );
    }
}
