//! Property tests for the numeric substrate.

use proptest::prelude::*;
use querc_linalg::{ops, AliasTable, Matrix, Pcg32};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// below(n) is always < n, for any seed.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1u32..10_000) {
        let mut rng = Pcg32::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// f32() stays in [0, 1).
    #[test]
    fn unit_interval(seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        for _ in 0..32 {
            let x = rng.f32();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// shuffle preserves multisets.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..40)) {
        let mut sorted = v.clone();
        sorted.sort_unstable();
        Pcg32::new(seed).shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted);
    }

    /// softmax outputs a distribution for any finite input.
    #[test]
    fn softmax_distribution(mut xs in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        ops::softmax(&mut xs);
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// transpose is an involution for arbitrary shapes.
    #[test]
    fn transpose_involution(r in 1usize..12, c in 1usize..12, seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        let m = Matrix::uniform(r, c, -10.0, 10.0, &mut rng);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// alias table sampling always returns valid indices and never picks
    /// zero-weight outcomes.
    #[test]
    fn alias_valid(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = Pcg32::new(seed);
        for _ in 0..32 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {i}");
        }
    }

    /// cosine similarity stays within [-1, 1].
    #[test]
    fn cosine_bounded(a in prop::collection::vec(-100.0f32..100.0, 1..16)) {
        let b: Vec<f32> = a.iter().rev().copied().collect();
        let c = ops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }
}
