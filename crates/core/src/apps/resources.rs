//! Resource-class prediction for speculative allocation (paper §4,
//! "Resource allocation").
//!
//! Syntax cannot predict exact runtimes, but coarse classes (short /
//! medium / long; memory-light / memory-heavy) are learnable and already
//! useful for load balancing and admission control. Labels come straight
//! from the log's measured runtime/memory columns.

use super::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
use crate::enriched::EnrichedQuery;
use crate::error::Result;
use querc_embed::Embedder;
use querc_learn::{Classifier, ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::sync::Arc;

/// Coarse resource classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceClass {
    /// Runs in well under the short threshold (point lookups).
    Short,
    /// Between the two thresholds (typical aggregations).
    Medium,
    /// At or above the long threshold (joins, ETL).
    Long,
}

impl ResourceClass {
    /// Lower-case label value (`short` / `medium` / `long`).
    pub fn name(&self) -> &'static str {
        match self {
            ResourceClass::Short => "short",
            ResourceClass::Medium => "medium",
            ResourceClass::Long => "long",
        }
    }

    fn from_id(id: u32) -> ResourceClass {
        match id {
            0 => ResourceClass::Short,
            1 => ResourceClass::Medium,
            _ => ResourceClass::Long,
        }
    }
}

/// Thresholds (milliseconds) splitting the three classes.
#[derive(Debug, Clone, Copy)]
pub struct ResourceBuckets {
    /// Runtimes strictly below this are `Short`.
    pub short_below_ms: f64,
    /// Runtimes at or above this are `Long`.
    pub long_above_ms: f64,
}

impl Default for ResourceBuckets {
    fn default() -> Self {
        ResourceBuckets {
            short_below_ms: 100.0,
            long_above_ms: 600.0,
        }
    }
}

impl ResourceBuckets {
    /// Bucket a measured runtime.
    pub fn classify(&self, runtime_ms: f64) -> ResourceClass {
        if runtime_ms < self.short_below_ms {
            ResourceClass::Short
        } else if runtime_ms >= self.long_above_ms {
            ResourceClass::Long
        } else {
            ResourceClass::Medium
        }
    }
}

/// A trained resource-class predictor.
pub struct ResourcePredictor {
    embedder: Arc<dyn Embedder>,
    model: RandomForest,
    /// The thresholds the model was trained against.
    pub buckets: ResourceBuckets,
}

impl ResourcePredictor {
    /// Train a forest mapping query embeddings to runtime classes
    /// derived from each record's measured `runtime_ms`.
    pub fn train(
        records: &[QueryRecord],
        embedder: Arc<dyn Embedder>,
        buckets: ResourceBuckets,
        seed: u64,
    ) -> ResourcePredictor {
        let docs: Vec<Vec<String>> = records.iter().map(|r| r.tokens()).collect();
        let vectors = embedder.embed_batch(&docs);
        let labels: Vec<u32> = records
            .iter()
            .map(|r| buckets.classify(r.runtime_ms) as u32)
            .collect();
        let mut model = RandomForest::new(ForestConfig::extra_trees(40));
        let mut rng = Pcg32::with_stream(seed, 0x4e50);
        model.fit(&vectors, &labels, 3, &mut rng);
        ResourcePredictor {
            embedder,
            model,
            buckets,
        }
    }

    /// Predict the class of an incoming query before running it.
    pub fn predict(&self, sql: &str) -> ResourceClass {
        self.predict_vector(&self.embedder.embed_sql(sql))
    }

    /// Predict the class from a precomputed embedding vector — shared
    /// by the SQL-level, batched, and serving paths.
    pub fn predict_vector(&self, v: &[f32]) -> ResourceClass {
        ResourceClass::from_id(self.model.predict(v))
    }

    /// Held-out accuracy against measured runtimes.
    pub fn holdout_accuracy(&self, records: &[QueryRecord]) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        let hits = records
            .iter()
            .filter(|r| self.predict(&r.sql) == self.buckets.classify(r.runtime_ms))
            .count();
        hits as f64 / records.len() as f64
    }

    /// Predict classes for a chunk of pre-tokenized queries through the
    /// embedder's batched path.
    pub fn predict_batch(&self, docs: &[Vec<String>]) -> Vec<ResourceClass> {
        self.embedder
            .embed_batch(docs)
            .iter()
            .map(|v| self.predict_vector(v))
            .collect()
    }
}

/// [`ResourcePredictor`] behind the uniform [`WorkloadApp`] interface.
///
/// Labels attached per query: `resource_class` — the coarse
/// short/medium/long bucket for admission control and load balancing.
pub struct ResourcesApp {
    embedder: Arc<dyn Embedder>,
    /// Runtime thresholds defining the three classes.
    pub buckets: ResourceBuckets,
}

impl ResourcesApp {
    /// A resource-class app over `embedder` with the default thresholds.
    pub fn new(embedder: Arc<dyn Embedder>) -> ResourcesApp {
        ResourcesApp {
            embedder,
            buckets: ResourceBuckets::default(),
        }
    }

    /// Override the runtime thresholds.
    pub fn with_buckets(mut self, buckets: ResourceBuckets) -> ResourcesApp {
        self.buckets = buckets;
        self
    }
}

/// A fitted resource model plus its training size.
pub struct ResourcesModel {
    /// The underlying trained predictor (bespoke entry point).
    pub predictor: ResourcePredictor,
    trained_queries: usize,
}

impl WorkloadApp for ResourcesApp {
    type Model = ResourcesModel;

    fn name(&self) -> &'static str {
        "resources"
    }

    fn task(&self) -> &'static str {
        "predict coarse runtime class before execution"
    }

    fn fit(&self, corpus: &TrainCorpus) -> Result<ResourcesModel> {
        corpus.require_records("resources.fit")?;
        Ok(ResourcesModel {
            predictor: ResourcePredictor::train(
                &corpus.records,
                Arc::clone(&self.embedder),
                self.buckets,
                corpus.seed ^ 0x4e50,
            ),
            trained_queries: corpus.len(),
        })
    }

    fn label_batch(
        &self,
        model: &ResourcesModel,
        batch: &[EnrichedQuery],
    ) -> Result<Vec<AppOutput>> {
        let vectors = EnrichedQuery::vectors(batch, model.predictor.embedder.as_ref());
        Ok(vectors
            .iter()
            .map(|v| {
                let class = model.predictor.predict_vector(v);
                let mut out = AppOutput::new();
                out.set("resource_class", class.name());
                out
            })
            .collect())
    }

    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        Some(Arc::clone(&self.embedder))
    }

    fn report(&self, model: &ResourcesModel) -> AppReport {
        AppReport {
            app: self.name().to_string(),
            task: self.task().to_string(),
            trained_queries: model.trained_queries,
            detail: vec![
                (
                    "embedder".to_string(),
                    model.predictor.embedder.name().to_string(),
                ),
                (
                    "short_below_ms".to_string(),
                    format!("{:.0}", model.predictor.buckets.short_below_ms),
                ),
                (
                    "long_above_ms".to_string(),
                    format!("{:.0}", model.predictor.buckets.long_above_ms),
                ),
            ],
        }
    }

    fn save_model(&self, model: &ResourcesModel) -> Option<String> {
        crate::persist::to_json(&ResourcesState {
            forest: model.predictor.model.to_state(),
            short_below_ms: model.predictor.buckets.short_below_ms,
            long_above_ms: model.predictor.buckets.long_above_ms,
            trained_queries: model.trained_queries,
        })
    }

    fn load_model(&self, json: &str) -> Result<ResourcesModel> {
        let state: ResourcesState = crate::persist::from_json(json, "resources model")?;
        crate::persist::check_forest(&state.forest, self.embedder.dim())?;
        let model =
            RandomForest::from_state(state.forest).map_err(crate::persist::bad_learn_state)?;
        Ok(ResourcesModel {
            predictor: ResourcePredictor {
                embedder: Arc::clone(&self.embedder),
                model,
                buckets: ResourceBuckets {
                    short_below_ms: state.short_below_ms,
                    long_above_ms: state.long_above_ms,
                },
            },
            trained_queries: state.trained_queries,
        })
    }
}

/// Serialized form of a [`ResourcesModel`]: the forest plus the
/// thresholds its class ids were derived from (flattened — the derive
/// shim only handles scalar/Vec/String fields).
#[derive(serde::Serialize, serde::Deserialize)]
struct ResourcesState {
    forest: querc_learn::ForestState,
    short_below_ms: f64,
    long_above_ms: f64,
    trained_queries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(offset: u64) -> Vec<QueryRecord> {
        (0..90)
            .map(|i| {
                let i = i + offset * 917;
                let (sql, ms) = match i % 3 {
                    0 => (format!("select v from kv_store where k = {i}"), 5.0),
                    1 => (
                        format!("select g, count(*) from mid_table where t > {i} group by g"),
                        300.0,
                    ),
                    _ => (
                        "select a.g, sum(b.v) from big_facts a join big_facts b on a.k = b.k group by a.g".to_string(),
                        2000.0,
                    ),
                };
                QueryRecord {
                    sql,
                    user: "u".into(),
                    account: "a".into(),
                    cluster: "c".into(),
                    dialect: "generic".into(),
                    runtime_ms: ms,
                    mem_mb: ms / 2.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect()
    }

    #[test]
    fn buckets_classify_correctly() {
        let b = ResourceBuckets::default();
        assert_eq!(b.classify(1.0), ResourceClass::Short);
        assert_eq!(b.classify(100.0), ResourceClass::Medium);
        assert_eq!(b.classify(599.9), ResourceClass::Medium);
        assert_eq!(b.classify(600.0), ResourceClass::Long);
    }

    #[test]
    fn predicts_classes_from_syntax() {
        let p = ResourcePredictor::train(
            &records(0),
            Arc::new(querc_embed::BagOfTokens::new(64, true)),
            ResourceBuckets::default(),
            1,
        );
        assert_eq!(
            p.predict("select v from kv_store where k = 999"),
            ResourceClass::Short
        );
        assert_eq!(
            p.predict(
                "select a.g, sum(b.v) from big_facts a join big_facts b on a.k = b.k group by a.g"
            ),
            ResourceClass::Long
        );
    }

    #[test]
    fn holdout_accuracy_is_high_on_separable_shapes() {
        let p = ResourcePredictor::train(
            &records(0),
            Arc::new(querc_embed::BagOfTokens::new(64, true)),
            ResourceBuckets::default(),
            2,
        );
        let acc = p.holdout_accuracy(&records(5));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn resources_app_implements_workload_app() {
        let corpus = TrainCorpus::from_records(records(0), 1);
        let app = ResourcesApp::new(Arc::new(querc_embed::BagOfTokens::new(64, true)));
        let model = app.fit(&corpus).unwrap();
        let out = app
            .label_batch(
                &model,
                &[
                    EnrichedQuery::from_sql("select v from kv_store where k = 999"),
                    EnrichedQuery::from_sql(
                        "select a.g, sum(b.v) from big_facts a join big_facts b on a.k = b.k group by a.g",
                    ),
                ],
            )
            .unwrap();
        assert_eq!(out[0].get("resource_class"), Some("short"));
        assert_eq!(out[1].get("resource_class"), Some("long"));
        assert_eq!(app.report(&model).app, "resources");
    }

    #[test]
    fn model_round_trips_through_save_load() {
        let corpus = TrainCorpus::from_records(records(0), 4);
        let app = ResourcesApp::new(Arc::new(querc_embed::BagOfTokens::new(64, true)))
            .with_buckets(ResourceBuckets {
                short_below_ms: 50.0,
                long_above_ms: 900.0,
            });
        let model = app.fit(&corpus).unwrap();
        let json = app.save_model(&model).expect("forest is persistable");
        let restored = app.load_model(&json).unwrap();
        let batch: Vec<EnrichedQuery> = [
            "select v from kv_store where k = 999",
            "select g, count(*) from mid_table where t > 9 group by g",
            "select a.g, sum(b.v) from big_facts a join big_facts b on a.k = b.k group by a.g",
        ]
        .iter()
        .map(|s| EnrichedQuery::from_sql(*s))
        .collect();
        assert_eq!(
            app.label_batch(&model, &batch).unwrap(),
            app.label_batch(&restored, &batch).unwrap()
        );
        assert!((restored.predictor.buckets.long_above_ms - 900.0).abs() < 1e-12);
        assert_eq!(app.report(&restored), app.report(&model));
    }

    #[test]
    fn class_names() {
        assert_eq!(ResourceClass::Short.name(), "short");
        assert_eq!(ResourceClass::from_id(2), ResourceClass::Long);
        assert_eq!(ResourceClass::from_id(99), ResourceClass::Long);
    }
}
