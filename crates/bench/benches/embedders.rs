//! Embedder benchmarks: training throughput and per-query inference cost
//! for the three representations (hashed bag-of-tokens, Doc2Vec, LSTM
//! autoencoder). Inference cost is the number Qworker capacity planning
//! needs; training cost bounds the retraining cadence of the training
//! module.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use querc_embed::{
    BagOfTokens, Doc2Vec, Doc2VecConfig, Embedder, LstmAutoencoder, LstmConfig, VocabConfig,
};
use querc_workloads::TpchWorkload;
use std::hint::black_box;

fn corpus(n_per_template: usize) -> Vec<Vec<String>> {
    TpchWorkload::generate(n_per_template, 3)
        .queries
        .iter()
        .map(|q| querc_embed::sql_tokens(&q.sql))
        .collect()
}

fn d2v_cfg() -> Doc2VecConfig {
    Doc2VecConfig {
        dim: 32,
        epochs: 3,
        vocab: VocabConfig {
            min_count: 1,
            max_size: 5000,
            hash_buckets: 128,
        },
        ..Default::default()
    }
}

fn lstm_cfg() -> LstmConfig {
    LstmConfig {
        embed_dim: 24,
        hidden: 32,
        max_len: 64,
        epochs: 1,
        vocab: VocabConfig {
            min_count: 1,
            max_size: 5000,
            hash_buckets: 128,
        },
        ..Default::default()
    }
}

fn bench_training(c: &mut Criterion) {
    let small = corpus(2); // 44 queries
    let mut g = c.benchmark_group("embedder_training");
    g.sample_size(10);
    g.bench_function("doc2vec_44q", |b| {
        b.iter(|| black_box(Doc2Vec::train(&small, d2v_cfg())))
    });
    g.bench_function("lstm_44q", |b| {
        b.iter(|| black_box(LstmAutoencoder::train(&small, lstm_cfg())))
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let train = corpus(4);
    let bow = BagOfTokens::new(128, true);
    let d2v = Doc2Vec::train(&train, d2v_cfg());
    let lstm = LstmAutoencoder::train(&train, lstm_cfg());
    let queries = corpus(1); // 22 fresh queries
    let mut g = c.benchmark_group("embed_per_query");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("bag_of_tokens", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(bow.embed(q));
            }
        })
    });
    g.bench_function("doc2vec_infer", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(d2v.embed(q));
            }
        })
    });
    g.bench_function("lstm_forward", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(lstm.embed(q));
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_training, bench_inference
}
criterion_main!(benches);
