//! Distance metrics with a total order.
//!
//! The historical call sites each hand-rolled their distance and their
//! comparison — `partial_cmp(..).unwrap_or(Equal)` in the kNN labeler
//! silently corrupted the k-selection whenever a zero vector pushed
//! `1 − cosine` to NaN. Here the distance definitions and the ordering
//! rule live in one place: distances are semantically defined by the
//! `querc_linalg::ops` reference kernels and computed by the
//! runtime-dispatched [`crate::simd`] twins (bit-identical on every
//! arm, so values still match the historical scans), and every
//! comparison goes through [`f32::total_cmp`], under which NaN sorts
//! after every real number and therefore can never win a
//! nearest-neighbor slot.

/// How two vectors' distance is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// **Squared** Euclidean distance (`ops::sq_dist`) — monotone in
    /// true Euclidean distance and cheaper, matching what every
    /// historical scan in the workspace computed.
    #[default]
    Euclidean,
    /// Cosine distance `1 − cosine(a, b)`, in `[0, 2]`.
    ///
    /// Zero vectors are defined to be orthogonal to everything
    /// (`ops::cosine` returns 0 for them), so the distance from a zero
    /// vector — to anything, including another zero vector — is exactly
    /// `1.0`, never NaN. Denormal components behave like any other
    /// finite value.
    Cosine,
}

impl Metric {
    /// Distance between `a` and `b`. Finite for all finite inputs;
    /// inputs containing NaN/∞ may yield NaN, which the total order
    /// ranks after every real distance.
    /// Both arms dispatch through [`crate::simd`]: an AVX2 kernel when
    /// the CPU has it (bit-identical to the scalar reference — see the
    /// parity suite), the `querc_linalg::ops` reference loops otherwise.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => crate::simd::sq_dist(a, b),
            Metric::Cosine => crate::simd::cosine_dist(a, b),
        }
    }

    /// Distances from `query` to `out.len()` consecutive rows of
    /// `data` — padded row-major storage as produced by
    /// [`crate::VectorStore::data`], row `r` at `r * stride`. Each
    /// `out[r]` is bit-identical to `self.distance(query, row_r)`; the
    /// fused kernels only remove per-row call overhead.
    #[inline]
    pub fn distance_block(&self, query: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
        match self {
            Metric::Euclidean => crate::simd::sq_dist_block(query, data, stride, out),
            Metric::Cosine => crate::simd::cosine_dist_block(query, data, stride, out),
        }
    }

    /// Short lowercase name (`"euclidean"` / `"cosine"`), for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Cosine => "cosine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_squared_distance() {
        assert_eq!(Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn cosine_zero_vectors_are_orthogonal_not_nan() {
        let z = [0.0f32, 0.0];
        let x = [1.0f32, 0.0];
        assert_eq!(Metric::Cosine.distance(&z, &x), 1.0);
        assert_eq!(Metric::Cosine.distance(&x, &z), 1.0);
        assert_eq!(Metric::Cosine.distance(&z, &z), 1.0);
    }

    #[test]
    fn cosine_denormals_are_finite() {
        let tiny = [f32::MIN_POSITIVE / 2.0, 0.0];
        let x = [1.0f32, 0.0];
        let d = Metric::Cosine.distance(&tiny, &x);
        assert!(d.is_finite(), "denormal vector produced {d}");
    }

    #[test]
    fn names() {
        assert_eq!(Metric::Euclidean.name(), "euclidean");
        assert_eq!(Metric::Cosine.name(), "cosine");
        assert_eq!(Metric::default(), Metric::Euclidean);
    }
}
