//! Qworkers — the per-application serving processes of Fig 1.
//!
//! A Qworker consumes a stream of queries, runs its classifiers (and,
//! when serving for a [`crate::service::WorkloadManager`], its
//! application's batched labeler) to attach labels, and forwards the
//! labeled query onward: to the database sink, to the central training
//! module, or both. In *forked* mode (paper §2: "Querc may not be in
//! the critical path") queries are only mirrored to training and never
//! forwarded to the database.
//!
//! The run loop drains its channel in **chunks**: one blocking `recv`
//! followed by non-blocking `try_recv` up to the batch size, so a busy
//! stream is labeled through [`querc_embed::Embedder::embed_batch`]
//! (amortizing embedder setup) while a trickle still flows query by
//! query with no added latency.
//!
//! Qworkers hold no heavyweight state — classifiers and fitted apps are
//! `Arc`s — so they can be replicated and load-balanced over one MPMC
//! stream.

use crate::classifier::QueryClassifier;
use crate::histogram::LatencyHistogram;
use crate::labeled::LabeledQuery;
use crate::service::{AppCounters, FittedApp};
use crossbeam::channel::{Receiver, Sender};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Default maximum chunk a worker drains per iteration.
pub const DEFAULT_BATCH: usize = 32;

/// A query stamped with its submit time — the message type on sharded
/// manager streams, letting the consuming worker record client-
/// perceived submit→labeled latency into the app's
/// [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct TimedQuery {
    /// The query being served.
    pub query: LabeledQuery,
    /// When the producer called `submit`/`submit_batch`. Stamped before
    /// the (possibly blocking) send, so under backpressure the measured
    /// latency includes the wait for queue space — what a client would
    /// actually observe, not just time spent inside the queue.
    pub enqueued_at: Instant,
}

impl TimedQuery {
    /// Stamp `query` with the current time.
    pub fn now(query: LabeledQuery) -> TimedQuery {
        TimedQuery {
            query,
            enqueued_at: Instant::now(),
        }
    }
}

/// Where the Qworker forwards labeled queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QworkerMode {
    /// In the critical path: forward to the database AND the trainer.
    Inline,
    /// Off the critical path: mirror to the trainer only.
    Forked,
}

/// A per-application worker applying (embedder, labeler) classifiers
/// and, optionally, one fitted [`crate::apps::WorkloadApp`].
pub struct Qworker {
    /// Application name (e.g. `app-X`), attached as a label.
    pub application: String,
    classifiers: Vec<Arc<QueryClassifier>>,
    app: Option<Arc<FittedApp>>,
    mode: QworkerMode,
    batch: usize,
    counters: Option<Arc<AppCounters>>,
    histogram: Option<Arc<LatencyHistogram>>,
}

impl Qworker {
    /// A worker for `application` applying the given classifiers.
    pub fn new(
        application: impl Into<String>,
        classifiers: Vec<Arc<QueryClassifier>>,
        mode: QworkerMode,
    ) -> Self {
        Qworker {
            application: application.into(),
            classifiers,
            app: None,
            mode,
            batch: DEFAULT_BATCH,
            counters: None,
            histogram: None,
        }
    }

    /// Attach a fitted application whose `label_batch` runs on every
    /// chunk (the manager's serving path).
    pub fn with_app(mut self, app: Arc<FittedApp>) -> Self {
        self.app = Some(app);
        self
    }

    /// Maximum chunk size drained per loop iteration (≥ 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Live throughput counters shared with the manager.
    pub fn with_counter(mut self, counters: Arc<AppCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Shared latency histogram; [`Qworker::run_timed`] records each
    /// query's enqueue→labeled latency into it.
    pub fn with_histogram(mut self, histogram: Arc<LatencyHistogram>) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// Label one query with every classifier (and the app, if any).
    pub fn process(&self, lq: LabeledQuery) -> LabeledQuery {
        self.process_chunk(vec![lq]).pop().expect("one in, one out")
    }

    /// Label a chunk: tokenize once per query, run every classifier's
    /// batched path, then the fitted app's `label_batch`. Output `i`
    /// corresponds to input `i`.
    pub fn process_chunk(&self, mut chunk: Vec<LabeledQuery>) -> Vec<LabeledQuery> {
        if chunk.is_empty() {
            return chunk;
        }
        for lq in &mut chunk {
            lq.set("application", &self.application);
        }
        // Tokenize once; classifiers and the app share the streams.
        let tokens: Vec<Vec<String>> = chunk.iter().map(LabeledQuery::tokens).collect();
        for clf in &self.classifiers {
            let values = clf.label_tokens_batch(&tokens);
            for (lq, value) in chunk.iter_mut().zip(values) {
                lq.set(format!("predicted_{}", clf.label_name), value);
            }
        }
        if let Some(app) = &self.app {
            match app.label_batch(&chunk) {
                Ok(outputs) => {
                    for (lq, out) in chunk.iter_mut().zip(outputs) {
                        out.apply_to(lq);
                    }
                }
                Err(e) => {
                    // Serving must not die on one bad chunk: surface the
                    // failure as a label and keep the stream moving.
                    for lq in &mut chunk {
                        lq.set("app_error", e.to_string());
                    }
                }
            }
        }
        chunk
    }

    /// Drain a stream until it closes, forwarding per the mode. Returns
    /// the number of queries processed. Run this on a thread per
    /// application; all channels are crossbeam MPMC so workers can be
    /// replicated on the same stream.
    pub fn run(
        &self,
        input: Receiver<LabeledQuery>,
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        self.run_loop(input, |lq| (lq, None), database, trainer)
    }

    /// [`Qworker::run`] over a stream of [`TimedQuery`]s — the sharded
    /// manager's per-shard loop. Each query's enqueue→labeled latency is
    /// recorded into the histogram installed by
    /// [`Qworker::with_histogram`].
    pub fn run_timed(
        &self,
        input: Receiver<TimedQuery>,
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        self.run_loop(input, |t| (t.query, Some(t.enqueued_at)), database, trainer)
    }

    /// The chunked drain loop shared by [`Qworker::run`] and
    /// [`Qworker::run_timed`]: one blocking `recv` per chunk, greedy
    /// non-blocking fill up to the batch size, one `process_chunk`.
    fn run_loop<T>(
        &self,
        input: Receiver<T>,
        split: impl Fn(T) -> (LabeledQuery, Option<Instant>),
        database: Sender<LabeledQuery>,
        trainer: Sender<LabeledQuery>,
    ) -> usize {
        let mut processed = 0usize;
        // Block for the first query of each chunk, then greedily fill it.
        while let Ok(first) = input.recv() {
            let mut chunk = Vec::with_capacity(self.batch);
            let mut stamps = Vec::with_capacity(self.batch);
            let (lq, at) = split(first);
            chunk.push(lq);
            stamps.push(at);
            while chunk.len() < self.batch {
                match input.try_recv() {
                    Ok(msg) => {
                        let (lq, at) = split(msg);
                        chunk.push(lq);
                        stamps.push(at);
                    }
                    Err(_) => break,
                }
            }
            let n = chunk.len();
            let labeled_chunk = self.process_chunk(chunk);
            if let Some(histogram) = &self.histogram {
                let done = Instant::now();
                for at in stamps.iter().flatten() {
                    histogram.record(done.duration_since(*at));
                }
            }
            for labeled in labeled_chunk {
                if self.mode == QworkerMode::Inline {
                    // The sink may have hung up (tests, shutdown); labeling
                    // continues because the training mirror matters more.
                    let _ = database.send(labeled.clone());
                }
                let _ = trainer.send(labeled);
            }
            processed += n;
            if let Some(counters) = &self.counters {
                counters.processed.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainedLabeler;
    use crossbeam::channel::unbounded;
    use querc_embed::{BagOfTokens, Embedder};
    use querc_learn::{ForestConfig, RandomForest};
    use querc_linalg::Pcg32;

    fn team_classifier() -> Arc<QueryClassifier> {
        let embedder: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(64, true));
        let sqls: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    format!("select a{} from warehouse_facts", i)
                } else {
                    format!("insert into event_log values ({i})")
                }
            })
            .collect();
        let labels: Vec<&str> = (0..20)
            .map(|i| if i % 2 == 0 { "analytics" } else { "ingest" })
            .collect();
        let vectors: Vec<Vec<f32>> = sqls.iter().map(|s| embedder.embed_sql(s)).collect();
        let labeler = TrainedLabeler::train(
            RandomForest::new(ForestConfig::extra_trees(10)),
            &vectors,
            &labels,
            &mut Pcg32::new(5),
        );
        Arc::new(QueryClassifier::new("workload_class", embedder, labeler))
    }

    #[test]
    fn process_attaches_application_and_predictions() {
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        let out = worker.process(LabeledQuery::new("select a2 from warehouse_facts"));
        assert_eq!(out.get("application"), Some("app-X"));
        assert_eq!(out.get("predicted_workload_class"), Some("analytics"));
    }

    #[test]
    fn process_chunk_matches_query_at_a_time() {
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        let sqls = [
            "select a4 from warehouse_facts",
            "insert into event_log values (9)",
            "select a8 from warehouse_facts",
        ];
        let chunk: Vec<LabeledQuery> = sqls.iter().map(|s| LabeledQuery::new(*s)).collect();
        let batched = worker.process_chunk(chunk);
        for (sql, out) in sqls.iter().zip(&batched) {
            let single = worker.process(LabeledQuery::new(*sql));
            assert_eq!(*out, single, "chunked and single paths must agree");
        }
    }

    #[test]
    fn inline_mode_forwards_to_database_and_trainer() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        for i in 0..5 {
            in_tx
                .send(LabeledQuery::new(format!(
                    "insert into event_log values ({i})"
                )))
                .unwrap();
        }
        drop(in_tx);
        let n = worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(n, 5);
        assert_eq!(db_rx.iter().count(), 5);
        assert_eq!(tr_rx.iter().count(), 5);
    }

    #[test]
    fn forked_mode_skips_database() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-Y", vec![team_classifier()], QworkerMode::Forked);
        in_tx.send(LabeledQuery::new("select 1")).unwrap();
        drop(in_tx);
        worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(db_rx.iter().count(), 0, "forked mode mirrors only");
        assert_eq!(tr_rx.iter().count(), 1);
    }

    #[test]
    fn replicated_workers_share_a_stream() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, _db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let mut handles = Vec::new();
        for w in 0..3 {
            let rx = in_rx.clone();
            let db = db_tx.clone();
            let tr = tr_tx.clone();
            let clf = team_classifier();
            handles.push(std::thread::spawn(move || {
                let worker = Qworker::new(format!("app-{w}"), vec![clf], QworkerMode::Forked);
                worker.run(rx, db, tr)
            }));
        }
        drop(db_tx);
        drop(tr_tx);
        for i in 0..60 {
            in_tx
                .send(LabeledQuery::new(format!(
                    "select {i} from warehouse_facts"
                )))
                .unwrap();
        }
        drop(in_tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 60, "every query processed exactly once");
        assert_eq!(tr_rx.iter().count(), 60);
    }

    #[test]
    fn tiny_batch_size_still_processes_everything() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        let (tr_tx, tr_rx) = unbounded();
        let worker =
            Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline).with_batch(1);
        for i in 0..7 {
            in_tx
                .send(LabeledQuery::new(format!(
                    "select a{i} from warehouse_facts"
                )))
                .unwrap();
        }
        drop(in_tx);
        assert_eq!(worker.run(in_rx, db_tx, tr_tx), 7);
        assert_eq!(db_rx.iter().count(), 7);
        assert_eq!(tr_rx.iter().count(), 7);
    }

    #[test]
    fn hung_up_database_does_not_stop_labeling() {
        let (in_tx, in_rx) = unbounded();
        let (db_tx, db_rx) = unbounded();
        drop(db_rx); // database sink gone
        let (tr_tx, tr_rx) = unbounded();
        let worker = Qworker::new("app-X", vec![team_classifier()], QworkerMode::Inline);
        in_tx.send(LabeledQuery::new("select 1")).unwrap();
        drop(in_tx);
        let n = worker.run(in_rx, db_tx, tr_tx);
        assert_eq!(n, 1);
        assert_eq!(tr_rx.iter().count(), 1);
    }
}
