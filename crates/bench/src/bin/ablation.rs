//! **Ablation** — summarization method and embedder-variant comparison.
//!
//! Beyond the paper's figures: holds the §5.1 pipeline fixed and swaps
//! the summarization method (learned embeddings vs the hand-engineered
//! syntactic K-medoids baseline vs random sampling) and the Doc2Vec
//! variant (PV-DM vs PV-DBOW), measuring the end metric that matters —
//! full-workload runtime under the advisor's recommendation from each
//! summary, at the paper's 6-minute budget.

use querc::apps::summarize::{summarize_workload, SummaryConfig, SummaryMethod};
use querc_bench::harness;
use querc_dbsim::{workload_runtime, Advisor, AdvisorConfig, Catalog};
use querc_embed::{Doc2Vec, Doc2VecMode};

fn main() {
    println!("== Ablation: summary methods and embedder variants ==");
    println!("seed = {:#x}", harness::SEED);

    let workload = harness::tpch_workload();
    let sqls = workload.sql();
    let catalog = Catalog::tpch_sf1();
    let advisor = Advisor::new(&catalog, AdvisorConfig::default());
    let baseline = workload_runtime(&sqls, &catalog, &[]);
    println!("no-index runtime: {baseline:.0} s\n");

    let corpus = harness::tpch_training_corpus();
    eprintln!("training PV-DM…");
    let dm = Doc2Vec::train(&corpus, harness::doc2vec_config());
    eprintln!("training PV-DBOW…");
    let dbow = Doc2Vec::train(&corpus, {
        let mut cfg = harness::doc2vec_config();
        cfg.mode = Doc2VecMode::Dbow;
        cfg
    });

    let cfg = SummaryConfig {
        k: Some(20),
        ..Default::default()
    };
    let budget = 360.0;

    let variants: Vec<(&str, Vec<usize>)> = vec![
        (
            "doc2vec PV-DM + kmeans",
            summarize_workload(&sqls, &SummaryMethod::Embedding(&dm), &cfg),
        ),
        (
            "doc2vec PV-DBOW + kmeans",
            summarize_workload(&sqls, &SummaryMethod::Embedding(&dbow), &cfg),
        ),
        (
            "syntactic features + kmedoids",
            summarize_workload(&sqls, &SummaryMethod::SyntacticKMedoids, &cfg),
        ),
        (
            "uniform random sample",
            summarize_workload(&sqls, &SummaryMethod::RandomSample, &cfg),
        ),
    ];

    println!(
        "{:>32} {:>9} {:>10} {:>12} {:>9}",
        "method", "witnesses", "templates", "runtime_s", "vs_base"
    );
    let mut results = Vec::new();
    for (name, witnesses) in &variants {
        let covered: std::collections::BTreeSet<u8> = witnesses
            .iter()
            .map(|&i| workload.queries[i].template)
            .collect();
        let summary: Vec<&str> = witnesses.iter().map(|&i| sqls[i]).collect();
        let report = advisor.recommend(&summary, budget);
        let runtime = workload_runtime(&sqls, &catalog, &report.indexes);
        println!(
            "{:>32} {:>9} {:>8}/22 {:>12.0} {:>+8.1}%",
            name,
            witnesses.len(),
            covered.len(),
            runtime,
            100.0 * (runtime - baseline) / baseline
        );
        results.push((name.to_string(), runtime));
    }

    println!("\nshape checks:");
    let mut ok = true;
    let get = |n: &str| {
        results
            .iter()
            .find(|(name, _)| name.contains(n))
            .map(|(_, r)| *r)
            .unwrap()
    };
    let dm_rt = get("PV-DM");
    let random_rt = get("random");
    ok &= harness::check(
        "every summarization method improves on no-index at this budget",
        results.iter().all(|(_, r)| *r < baseline),
        format!(
            "runtimes {:?}",
            results.iter().map(|(_, r)| *r as i64).collect::<Vec<_>>()
        ),
    );
    ok &= harness::check(
        "learned embeddings are at least as good as random sampling",
        dm_rt <= random_rt * 1.02,
        format!("{dm_rt:.0} vs {random_rt:.0}"),
    );
    harness::finish(ok);
}
