//! # querc-dbsim
//!
//! A what-if cost-based relational engine simulator: the substitute for
//! the SQL Server 2016 + Database Engine Tuning Advisor testbed of the
//! paper's §5.1 (which is proprietary and unavailable offline).
//!
//! The simulator is *mechanistic*, not a lookup table of paper numbers:
//!
//! * [`catalog`] holds table/column statistics (TPC-H SF1 ships built in);
//! * [`selectivity`] estimates predicate selectivities twice — once the
//!   way an optimizer would (uniformity + independence + magic constants)
//!   and once "true" (with the skew/correlation the real data has);
//! * [`optimizer`] picks the cheapest plan *by estimated cost* (access
//!   paths, hash vs index-nested-loop joins, aggregation/sort) while the
//!   runtime charges *true* cost — that wedge is exactly what makes a
//!   half-built index set actively harmful, reproducing Figure 4's Q18
//!   regression from first principles;
//! * [`advisor`] emulates a tuning advisor: candidate enumeration, greedy
//!   what-if selection and a validation pass, all metered against a time
//!   budget (the x-axis of Figure 3), with a native workload subsampler
//!   for oversized inputs (the paper's "performs its own summarization");
//! * [`runtime`] executes a workload under an index configuration and
//!   reports per-query seconds.

pub mod advisor;
pub mod catalog;
pub mod index;
pub mod optimizer;
pub mod runtime;
pub mod selectivity;

pub use advisor::{Advisor, AdvisorConfig, AdvisorReport};
pub use catalog::{Catalog, ColumnStats, TableStats};
pub use index::Index;
pub use optimizer::{plan_query, PlanSummary};
pub use runtime::{run_workload, workload_runtime, WorkloadRun};
