//! Qworker serving-path benchmarks: per-query vs batched labeling.
//!
//! Pins the win of [`querc_embed::Embedder::embed_batch`] on the hot
//! path. Doc2Vec is where batching matters most — its per-call setup
//! (the unigram^0.75 alias table over the whole vocabulary) is hoisted
//! out of the chunk — while bag-of-tokens bounds the benefit from
//! buffer reuse alone. Throughput is reported in queries/sec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use querc::{LabeledQuery, QueryClassifier, Qworker, QworkerMode, TrainedLabeler};
use querc_embed::{BagOfTokens, Doc2Vec, Doc2VecConfig, Embedder, VocabConfig};
use querc_learn::{ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::{SnowCloud, SnowCloudConfig};
use std::hint::black_box;
use std::sync::Arc;

/// The multi-tenant pre-training workload: its per-tenant schema
/// vocabulary is what makes the Doc2Vec noise table (rebuilt per query
/// on the unbatched path) expensive, as in the paper's setting.
fn snowcloud() -> SnowCloud {
    SnowCloud::generate(&SnowCloudConfig::pretrain(24, 60, 9))
}

fn serving_stream(workload: &SnowCloud, n: usize) -> Vec<LabeledQuery> {
    workload
        .records
        .iter()
        .take(n)
        .map(|r| LabeledQuery::new(r.sql.clone()))
        .collect()
}

fn classifier(workload: &SnowCloud, embedder: Arc<dyn Embedder>) -> Arc<QueryClassifier> {
    let train = &workload.records[..400.min(workload.records.len())];
    let docs: Vec<Vec<String>> = train.iter().map(|r| r.tokens()).collect();
    let vectors = embedder.embed_batch(&docs);
    let labels: Vec<&str> = train.iter().map(|r| r.cluster.as_str()).collect();
    let labeler = TrainedLabeler::train(
        RandomForest::new(ForestConfig::extra_trees(10)),
        &vectors,
        &labels,
        &mut Pcg32::new(5),
    );
    Arc::new(QueryClassifier::new("cluster", embedder, labeler))
}

fn doc2vec(workload: &SnowCloud) -> Arc<dyn Embedder> {
    Arc::new(Doc2Vec::train(
        &workload.token_corpus(),
        Doc2VecConfig {
            dim: 32,
            epochs: 2,
            infer_epochs: 10,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 20_000,
                hash_buckets: 1024,
            },
            ..Default::default()
        },
    ))
}

/// Preload a stream into a closed channel and drain it synchronously.
fn drain_stream(worker: &Qworker, stream: &[LabeledQuery]) -> usize {
    let (in_tx, in_rx) = crossbeam::channel::unbounded();
    for lq in stream {
        in_tx.send(lq.clone()).unwrap();
    }
    drop(in_tx);
    let (db_tx, _db_rx) = crossbeam::channel::unbounded();
    let (tr_tx, tr_rx) = crossbeam::channel::unbounded();
    let n = worker.run(in_rx, db_tx, tr_tx);
    black_box(tr_rx.iter().count());
    n
}

fn bench_qworker(c: &mut Criterion) {
    let workload = snowcloud();
    let stream = serving_stream(&workload, 128);

    for (tag, embedder) in [
        (
            "bow",
            Arc::new(BagOfTokens::new(128, true)) as Arc<dyn Embedder>,
        ),
        ("doc2vec", doc2vec(&workload)),
    ] {
        let clf = classifier(&workload, embedder);
        let mut g = c.benchmark_group(format!("qworker_{tag}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(stream.len() as u64));
        // batch=1 → the old per-query path; batch=64 → chunked embed_batch.
        let per_query =
            Qworker::new("app-X", vec![Arc::clone(&clf)], QworkerMode::Forked).with_batch(1);
        g.bench_function("per_query", |b| {
            b.iter(|| drain_stream(&per_query, &stream))
        });
        let batched =
            Qworker::new("app-X", vec![Arc::clone(&clf)], QworkerMode::Forked).with_batch(64);
        g.bench_function("batched_64", |b| b.iter(|| drain_stream(&batched, &stream)));
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_qworker
}
criterion_main!(benches);
