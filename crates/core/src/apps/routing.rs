//! Query-routing policy checking (paper §4, "Enforcing query routing
//! policies").
//!
//! Routing policies (SLAs, isolation, audit requirements) assign queries
//! to clusters; in practice they are hand-maintained and drift. Under the
//! paper's hypothesis that queries governed by one policy look alike,
//! a classifier trained on historical (query → cluster) assignments can
//! flag queries whose predicted cluster disagrees with the assigned one —
//! surfacing policy misconfigurations without parsing a single rule.

use crate::classifier::TrainedLabeler;
use querc_embed::Embedder;
use querc_learn::{Classifier, ForestConfig, RandomForest};
use querc_linalg::Pcg32;
use querc_workloads::QueryRecord;
use std::sync::Arc;

/// One suspected misrouting.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingAnomaly {
    /// Index into the checked batch.
    pub index: usize,
    pub assigned_cluster: String,
    pub predicted_cluster: String,
    /// Classifier confidence in the predicted cluster (mean tree vote).
    pub confidence: f64,
}

/// A trained routing-policy checker.
pub struct RoutingChecker {
    embedder: Arc<dyn Embedder>,
    model: RandomForest,
    labels: crate::classifier::LabelMap,
    /// Only disagreements at or above this confidence are reported.
    pub min_confidence: f64,
}

impl RoutingChecker {
    /// Learn historical routing from labeled records.
    pub fn train(
        records: &[QueryRecord],
        embedder: Arc<dyn Embedder>,
        min_confidence: f64,
        seed: u64,
    ) -> RoutingChecker {
        let vectors: Vec<Vec<f32>> = records
            .iter()
            .map(|r| embedder.embed(&r.tokens()))
            .collect();
        let (labels, ids) = crate::classifier::LabelMap::from_labels(
            records.iter().map(|r| r.cluster.as_str()),
        );
        let mut model = RandomForest::new(ForestConfig::extra_trees(40));
        let mut rng = Pcg32::with_stream(seed, 0x4072);
        model.fit(&vectors, &ids, labels.len().max(1), &mut rng);
        RoutingChecker {
            embedder,
            model,
            labels,
            min_confidence,
        }
    }

    /// Check a batch of assignments; returns suspected misroutings.
    pub fn check(&self, records: &[QueryRecord]) -> Vec<RoutingAnomaly> {
        records
            .iter()
            .enumerate()
            .filter_map(|(index, r)| {
                let v = self.embedder.embed(&r.tokens());
                let proba = self.model.proba(&v);
                let best = querc_linalg::stats::argmax(&proba)? as u32;
                let predicted = self.labels.name(best)?.to_string();
                let confidence = proba[best as usize] as f64;
                (predicted != r.cluster && confidence >= self.min_confidence).then_some(
                    RoutingAnomaly {
                        index,
                        assigned_cluster: r.cluster.clone(),
                        predicted_cluster: predicted,
                        confidence,
                    },
                )
            })
            .collect()
    }

    /// Predict the policy cluster for a brand-new query.
    pub fn predict(&self, sql: &str) -> String {
        let v = self.embedder.embed_sql(sql);
        self.labels
            .name(self.model.predict(&v))
            .unwrap_or("<unknown>")
            .to_string()
    }
}

/// Convenience: a plain (embedder, labeler) cluster classifier for use in
/// the generic labeling pipeline.
pub fn train_cluster_labeler(
    records: &[QueryRecord],
    embedder: &Arc<dyn Embedder>,
    seed: u64,
) -> TrainedLabeler {
    let vectors: Vec<Vec<f32>> = records
        .iter()
        .map(|r| embedder.embed(&r.tokens()))
        .collect();
    let names: Vec<&str> = records.iter().map(|r| r.cluster.as_str()).collect();
    let mut rng = Pcg32::with_stream(seed, 0x4073);
    TrainedLabeler::train(
        RandomForest::new(ForestConfig::extra_trees(40)),
        &vectors,
        &names,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn records() -> Vec<QueryRecord> {
        (0..60)
            .map(|i| {
                let (cluster, sql) = if i % 2 == 0 {
                    ("etl-cluster", format!("insert into lake_events select * from staging_{}", i % 3))
                } else {
                    ("bi-cluster", format!("select sum(x) from finance_cube group by dim{}", i % 4))
                };
                QueryRecord {
                    sql,
                    user: "u".into(),
                    account: "a".into(),
                    cluster: cluster.into(),
                    dialect: "generic".into(),
                    runtime_ms: 1.0,
                    mem_mb: 1.0,
                    error_code: None,
                    timestamp: i,
                }
            })
            .collect()
    }

    #[test]
    fn consistent_routing_raises_no_anomalies() {
        let recs = records();
        let checker =
            RoutingChecker::train(&recs, Arc::new(BagOfTokens::new(64, true)), 0.6, 1);
        let anomalies = checker.check(&recs);
        assert!(
            anomalies.len() <= recs.len() / 10,
            "clean assignments flagged: {anomalies:?}"
        );
    }

    #[test]
    fn misrouted_query_is_detected() {
        let mut recs = records();
        // A BI query somehow routed to the ETL cluster.
        recs[1].cluster = "etl-cluster".into();
        let checker = RoutingChecker::train(
            &records(), // train on CLEAN history
            Arc::new(BagOfTokens::new(64, true)),
            0.6,
            2,
        );
        let anomalies = checker.check(&recs);
        assert!(anomalies.iter().any(|a| a.index == 1), "{anomalies:?}");
        let a = anomalies.iter().find(|a| a.index == 1).unwrap();
        assert_eq!(a.predicted_cluster, "bi-cluster");
        assert_eq!(a.assigned_cluster, "etl-cluster");
    }

    #[test]
    fn confidence_threshold_suppresses_weak_flags() {
        let recs = records();
        let strict = RoutingChecker::train(
            &recs,
            Arc::new(BagOfTokens::new(64, true)),
            1.01, // impossible confidence
            3,
        );
        assert!(strict.check(&recs).is_empty());
    }

    #[test]
    fn predict_routes_new_queries() {
        let checker =
            RoutingChecker::train(&records(), Arc::new(BagOfTokens::new(64, true)), 0.5, 4);
        assert_eq!(
            checker.predict("select sum(y) from finance_cube group by dim9"),
            "bi-cluster"
        );
        assert_eq!(
            checker.predict("insert into lake_events select * from staging_9"),
            "etl-cluster"
        );
    }
}
