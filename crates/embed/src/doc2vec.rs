//! Doc2Vec — paragraph vectors by context prediction (Le & Mikolov).
//!
//! The paper's first embedder (§3, "Context prediction models"): a vector
//! is learned for every query ("document") by treating it as a virtual
//! context word that participates in predicting the query's tokens.
//! Both classical variants are implemented:
//!
//! * **PV-DM** (distributed memory): the document vector plus the mean of
//!   a sliding context window predicts the center token;
//! * **PV-DBOW**: the document vector alone predicts each token.
//!
//! Training uses negative sampling against the unigram^0.75 noise
//! distribution, the standard word2vec trick, on the shared vocabulary of
//! `crate::vocab`. Unseen queries are embedded by *inference*: gradient
//! steps on a fresh document vector with all token vectors frozen — seeded
//! from a hash of the tokens so [`Embedder::embed`] is deterministic.
//!
//! ## Parallel fit
//!
//! Training runs on the compute plane. Each epoch the shuffled document
//! order is cut into **fixed shards** (at most `MAX_SHARDS`, at least
//! `MIN_SHARD_DOCS` documents each — a function of the corpus size
//! only, never of the thread count) distributed over a [`ComputePool`].
//! Every document draws its own RNG stream
//! (`Pcg32::with_stream(seed ^ epoch_salt, doc_id)`), so subsampling,
//! window radii and negative draws are identical no matter which worker
//! processes the document. Shards train against shard-local copies of
//! the token matrices (documents inside a shard see each other's
//! updates, exactly like the sequential loop); the per-shard deltas
//! against the epoch-start weights are then applied **in shard order**.
//! A single-shard corpus skips the delta round-trip entirely and keeps
//! the shard's matrices verbatim. Either way the fitted model is
//! bit-identical for every `training_threads` value. The learning-rate
//! schedule is precomputed sequentially from the shuffle (it depends
//! only on raw token counts), so it matches the classical global decay.
//!
//! Negative-sampling scores go through `kernel::dot_gather` — the
//! positive and negative output rows are gathered and dotted against
//! the hidden vector in one fused scalar/AVX2 call (rows read as of
//! call entry; a duplicate negative inside one call no longer sees the
//! update of its twin, which changes nothing statistically).

use crate::embedder::Embedder;
use crate::vocab::{Vocab, VocabConfig};
use querc_linalg::{kernel, ops, AliasTable, ComputePool, Matrix, Pcg32};
use serde::{Deserialize, Serialize};

/// Upper bound on per-epoch training shards. Epoch deltas cost one
/// matrix pair per shard, so this caps the reduction memory at 8×
/// model size regardless of corpus scale.
const MAX_SHARDS: usize = 8;

/// Minimum documents per shard: corpora smaller than this train in one
/// shard (pure sequential semantics) rather than paying delta staleness
/// for no parallel win.
const MIN_SHARD_DOCS: usize = 64;

/// Which paragraph-vector variant to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Doc2VecMode {
    /// PV-DM: doc vector + context mean predicts the center token.
    DistributedMemory,
    /// PV-DBOW: doc vector predicts every token independently.
    Dbow,
}

/// Doc2Vec hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Doc2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum context window radius (PV-DM); the effective radius is
    /// resampled uniformly in `1..=window` per position, as in word2vec.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Starting learning rate, decayed linearly to `min_lr`.
    pub initial_lr: f32,
    /// Floor of the linear learning-rate decay.
    pub min_lr: f32,
    /// Frequent-token subsampling threshold (word2vec `sample`); 0 = off.
    pub subsample: f64,
    /// Training objective: PV-DM or PV-DBOW.
    pub mode: Doc2VecMode,
    /// Gradient steps (epochs) used when inferring vectors for unseen
    /// queries.
    pub infer_epochs: usize,
    /// Drop out-of-vocabulary tokens instead of hashing them into fallback
    /// buckets. `true` mirrors the classical gensim behaviour the paper's
    /// Doc2Vec numbers come from; `false` enables the OOV buckets shared
    /// with the LSTM embedder.
    pub drop_oov: bool,
    /// Vocabulary construction parameters.
    pub vocab: VocabConfig,
    /// RNG seed for initialization, sampling, and negative draws.
    pub seed: u64,
}

impl Default for Doc2VecConfig {
    fn default() -> Self {
        Doc2VecConfig {
            dim: 64,
            window: 5,
            negative: 5,
            epochs: 10,
            initial_lr: 0.05,
            min_lr: 1e-4,
            subsample: 1e-3,
            mode: Doc2VecMode::DistributedMemory,
            infer_epochs: 25,
            drop_oov: true,
            vocab: VocabConfig::default(),
            seed: 0x5eed,
        }
    }
}

/// A trained Doc2Vec model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Doc2Vec {
    cfg: Doc2VecConfig,
    vocab: Vocab,
    /// Input (projection) token vectors, `vocab.size()` × `dim`.
    w_in: Matrix,
    /// Output (context) token vectors, `vocab.size()` × `dim`.
    w_out: Matrix,
    /// Vectors of the training documents, kept for offline analysis.
    doc_vecs: Matrix,
}

impl Doc2Vec {
    /// Train a model over a corpus of normalized token sequences.
    pub fn train(corpus: &[Vec<String>], cfg: Doc2VecConfig) -> Doc2Vec {
        assert!(cfg.dim > 0 && cfg.epochs > 0);
        let vocab = Vocab::build(corpus.iter().map(|d| d.as_slice()), &cfg.vocab);
        let mut rng = Pcg32::with_stream(cfg.seed, 0xd0c2);
        let mut w_in = querc_linalg::init::embedding(vocab.size(), cfg.dim, &mut rng);
        let mut w_out = Matrix::zeros(vocab.size(), cfg.dim);
        let mut doc_vecs = querc_linalg::init::embedding(corpus.len().max(1), cfg.dim, &mut rng);

        let noise = AliasTable::from_counts_pow(&vocab.noise_counts(), 0.75);
        let encoded: Vec<Vec<usize>> = corpus
            .iter()
            .map(|d| {
                if cfg.drop_oov {
                    vocab.encode_drop_oov(d)
                } else {
                    vocab.encode(d)
                }
            })
            .collect();
        let total_tokens: usize = encoded.iter().map(Vec::len).sum();
        let total_steps = (cfg.epochs * total_tokens).max(1) as f32;
        let total_count = vocab.total_count().max(1) as f64;

        let mut order: Vec<usize> = (0..encoded.len()).collect();
        let pool = ComputePool::current();
        let shard_docs = order.len().div_ceil(MAX_SHARDS).max(MIN_SHARD_DOCS);
        let n_shards = order.len().div_ceil(shard_docs);
        let mut step = 0usize;
        for epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            // The lr schedule decays on raw token counts (subsampling
            // does not slow it), so it is a pure function of the shuffle
            // — precomputed here, sequentially, per position in `order`.
            let mut lrs = vec![0.0f32; order.len()];
            for (pos, &doc_id) in order.iter().enumerate() {
                let n = encoded[doc_id].len();
                if n == 0 {
                    continue;
                }
                step += n;
                lrs[pos] = (cfg.initial_lr * (1.0 - step as f32 / total_steps)).max(cfg.min_lr);
            }
            // Per-document RNG streams: the epoch goes into the seed,
            // the document id into the stream, so draws are independent
            // of worker scheduling *and* of every other document.
            let epoch_salt = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(epoch as u64 + 1);
            let updates = pool.map(n_shards, |s| {
                let lo = s * shard_docs;
                let hi = (lo + shard_docs).min(order.len());
                train_shard(
                    &order[lo..hi],
                    &lrs[lo..hi],
                    &encoded,
                    &w_in,
                    &w_out,
                    &doc_vecs,
                    &vocab,
                    &noise,
                    &cfg,
                    total_count,
                    epoch_salt,
                    n_shards > 1,
                )
            });
            if n_shards == 1 {
                // One shard = the sequential loop verbatim; keep its
                // matrices instead of round-tripping through a delta.
                for sh in updates {
                    w_in = sh.w_in;
                    w_out = sh.w_out;
                    for (doc_id, v) in sh.docs {
                        doc_vecs.row_mut(doc_id).copy_from_slice(&v);
                    }
                }
            } else {
                // Fixed-order tree reduction: shard 0's delta lands
                // first, then shard 1's, … — identical for every thread
                // count. Document rows are exclusive per shard.
                for sh in updates {
                    w_in.add_scaled(1.0, &sh.w_in);
                    w_out.add_scaled(1.0, &sh.w_out);
                    for (doc_id, v) in sh.docs {
                        doc_vecs.row_mut(doc_id).copy_from_slice(&v);
                    }
                }
            }
        }
        Doc2Vec {
            cfg,
            vocab,
            w_in,
            w_out,
            doc_vecs,
        }
    }

    /// Vector of training document `i` (for offline clustering of the
    /// training workload itself).
    pub fn doc_vector(&self, i: usize) -> &[f32] {
        self.doc_vecs.row(i)
    }

    /// Number of training documents.
    pub fn num_docs(&self) -> usize {
        self.doc_vecs.rows()
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Infer a vector for an unseen token sequence with frozen token
    /// vectors, using the provided RNG (exposed for tests; `embed` wraps
    /// this deterministically). The noise table is only built when the
    /// query has usable tokens — empty/all-OOV input stays O(dim).
    pub fn infer(&self, tokens: &[String], rng: &mut Pcg32) -> Vec<f32> {
        let (ids, mut doc) = self.init_inference(tokens, rng);
        if ids.is_empty() {
            return doc;
        }
        let noise = self.noise_table();
        self.infer_passes(&ids, &mut doc, &noise, rng);
        doc
    }

    /// The unigram^0.75 negative-sampling table over the vocabulary.
    ///
    /// Building this is the dominant fixed cost of inference — O(vocab)
    /// — so the batched serving path constructs it once per chunk via
    /// [`Embedder::embed_batch`] instead of once per query.
    fn noise_table(&self) -> AliasTable {
        AliasTable::from_counts_pow(&self.vocab.noise_counts(), 0.75)
    }

    /// `infer` against a caller-provided noise table. Bit-identical to
    /// [`Doc2Vec::infer`]: the table's construction consumes no RNG state.
    fn infer_with_noise(&self, tokens: &[String], noise: &AliasTable, rng: &mut Pcg32) -> Vec<f32> {
        let (ids, mut doc) = self.init_inference(tokens, rng);
        if ids.is_empty() {
            return doc;
        }
        self.infer_passes(&ids, &mut doc, noise, rng);
        doc
    }

    /// Encode the tokens and draw the random document-vector init (the
    /// first RNG consumption of inference, shared by both entry points).
    fn init_inference(&self, tokens: &[String], rng: &mut Pcg32) -> (Vec<usize>, Vec<f32>) {
        let ids = if self.cfg.drop_oov {
            self.vocab.encode_drop_oov(tokens)
        } else {
            self.vocab.encode(tokens)
        };
        let mut doc = vec![0.0f32; self.cfg.dim];
        for v in doc.iter_mut() {
            *v = rng.range_f32(-0.5, 0.5) / self.cfg.dim as f32;
        }
        (ids, doc)
    }

    /// The gradient epochs of inference.
    fn infer_passes(&self, ids: &[usize], doc: &mut [f32], noise: &AliasTable, rng: &mut Pcg32) {
        let epochs = self.cfg.infer_epochs.max(1);
        let kern = kernel::active_kernel();
        let mut scratch = NegScratch::default();
        for e in 0..epochs {
            let lr = (self.cfg.initial_lr * (1.0 - e as f32 / epochs as f32)).max(self.cfg.min_lr);
            match self.cfg.mode {
                Doc2VecMode::DistributedMemory => {
                    self.infer_dm_pass(ids, doc, noise, lr, rng, &mut scratch, kern)
                }
                Doc2VecMode::Dbow => {
                    self.infer_dbow_pass(ids, doc, noise, lr, rng, &mut scratch, kern)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // window loop skips position t
    fn infer_dm_pass(
        &self,
        ids: &[usize],
        doc: &mut [f32],
        noise: &AliasTable,
        lr: f32,
        rng: &mut Pcg32,
        scratch: &mut NegScratch,
        kern: kernel::Kernel,
    ) {
        let dim = self.cfg.dim;
        let mut h = vec![0.0f32; dim];
        for t in 0..ids.len() {
            let b = 1 + rng.below_usize(self.cfg.window.max(1));
            let lo = t.saturating_sub(b);
            let hi = (t + b).min(ids.len() - 1);
            h.copy_from_slice(doc);
            let mut n_ctx = 1.0f32;
            for c in lo..=hi {
                if c == t {
                    continue;
                }
                kernel::axpy_with(kern, 1.0, self.w_in.row(ids[c]), &mut h);
                n_ctx += 1.0;
            }
            ops::scale(1.0 / n_ctx, &mut h);
            let mut neu1e = vec![0.0f32; dim];
            self.neg_sample_frozen(ids[t], &h, &mut neu1e, noise, lr, rng, scratch, kern);
            // Only the document vector learns during inference.
            kernel::axpy_with(kern, 1.0 / n_ctx, &neu1e, doc);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn infer_dbow_pass(
        &self,
        ids: &[usize],
        doc: &mut [f32],
        noise: &AliasTable,
        lr: f32,
        rng: &mut Pcg32,
        scratch: &mut NegScratch,
        kern: kernel::Kernel,
    ) {
        let mut neu1e = vec![0.0f32; self.cfg.dim];
        for &target in ids {
            neu1e.iter_mut().for_each(|v| *v = 0.0);
            let h = doc.to_vec();
            self.neg_sample_frozen(target, &h, &mut neu1e, noise, lr, rng, scratch, kern);
            kernel::axpy_with(kern, 1.0, &neu1e, doc);
        }
    }

    /// Negative-sampling gradient with frozen output vectors: accumulates
    /// the input-side gradient into `neu1e` without touching `w_out`.
    ///
    /// Draws every output row first, then scores them with one gathered-
    /// dot kernel call. Because `w_out` is frozen during inference, this
    /// is **bit-identical** to the historical draw-dot-interleaved loop:
    /// the draws consume the same RNG sequence and each dot reads the
    /// same rows, in the same lane-strided canon, on every kernel arm.
    #[allow(clippy::too_many_arguments)]
    fn neg_sample_frozen(
        &self,
        target: usize,
        h: &[f32],
        neu1e: &mut [f32],
        noise: &AliasTable,
        lr: f32,
        rng: &mut Pcg32,
        scratch: &mut NegScratch,
        kern: kernel::Kernel,
    ) {
        scratch.pairs.clear();
        scratch.pairs.push((1.0, target));
        for _ in 0..self.cfg.negative {
            let mut j = noise.sample(rng);
            let mut tries = 0;
            while j == target && tries < 4 {
                j = noise.sample(rng);
                tries += 1;
            }
            if j == target {
                continue;
            }
            scratch.pairs.push((0.0, j));
        }
        scratch.ids.clear();
        scratch.ids.extend(scratch.pairs.iter().map(|&(_, j)| j));
        scratch.scores.clear();
        scratch.scores.resize(scratch.ids.len(), 0.0);
        kernel::dot_gather_with(
            kern,
            h,
            self.w_out.as_slice(),
            self.w_out.cols(),
            &scratch.ids,
            &mut scratch.scores,
        );
        for (&(label, j), &raw) in scratch.pairs.iter().zip(&scratch.scores) {
            let f = ops::sigmoid(raw);
            let g = (label - f) * lr;
            kernel::axpy_with(kern, g, self.w_out.row(j), neu1e);
        }
    }
}

/// word2vec subsampling: keep token with probability
/// `sqrt(thresh/f) + thresh/f` (clipped to 1).
fn keep_token(vocab: &Vocab, id: usize, subsample: f64, total: f64, rng: &mut Pcg32) -> bool {
    if subsample <= 0.0 {
        return true;
    }
    let f = vocab.count(id) as f64 / total;
    if f <= subsample {
        return true;
    }
    let p = (subsample / f).sqrt() + subsample / f;
    rng.chance(p.min(1.0))
}

/// One shard's epoch result: updated (or delta) token matrices plus the
/// new vectors of the documents the shard owns.
struct ShardUpdate {
    /// Shard-local `w_in` — the full matrix when the epoch ran in one
    /// shard, otherwise the delta against the epoch-start weights.
    w_in: Matrix,
    /// Shard-local `w_out`, same convention as `w_in`.
    w_out: Matrix,
    /// `(doc_id, new document vector)` — rows exclusive to this shard.
    docs: Vec<(usize, Vec<f32>)>,
}

/// Train one shard of the epoch's document order against local copies
/// of the token matrices. With `as_delta`, the returned matrices hold
/// `local − epoch_start` (applied by the caller in shard order);
/// otherwise they are the updated matrices themselves. Documents inside
/// the shard run sequentially and see each other's updates, exactly
/// like the classical loop.
#[allow(clippy::too_many_arguments)]
fn train_shard(
    order: &[usize],
    lrs: &[f32],
    encoded: &[Vec<usize>],
    w_in: &Matrix,
    w_out: &Matrix,
    doc_vecs: &Matrix,
    vocab: &Vocab,
    noise: &AliasTable,
    cfg: &Doc2VecConfig,
    total_count: f64,
    epoch_salt: u64,
    as_delta: bool,
) -> ShardUpdate {
    let kern = kernel::active_kernel();
    let mut lw_in = w_in.clone();
    let mut lw_out = w_out.clone();
    let mut docs = Vec::with_capacity(order.len());
    let mut scratch = NegScratch::default();
    for (&doc_id, &lr) in order.iter().zip(lrs) {
        let ids = &encoded[doc_id];
        if ids.is_empty() {
            continue;
        }
        let mut drng = Pcg32::with_stream(cfg.seed ^ epoch_salt, doc_id as u64);
        // Frequent-token subsampling decides which positions train.
        let kept: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&w| keep_token(vocab, w, cfg.subsample, total_count, &mut drng))
            .collect();
        if kept.is_empty() {
            continue;
        }
        let mut doc = doc_vecs.row(doc_id).to_vec();
        match cfg.mode {
            Doc2VecMode::DistributedMemory => train_dm_doc(
                &kept,
                &mut doc,
                &mut lw_in,
                &mut lw_out,
                noise,
                cfg,
                lr,
                &mut drng,
                &mut scratch,
                kern,
            ),
            Doc2VecMode::Dbow => train_dbow_doc(
                &kept,
                &mut doc,
                &mut lw_out,
                noise,
                cfg,
                lr,
                &mut drng,
                &mut scratch,
                kern,
            ),
        }
        docs.push((doc_id, doc));
    }
    if as_delta {
        lw_in.add_scaled(-1.0, w_in);
        lw_out.add_scaled(-1.0, w_out);
    }
    ShardUpdate {
        w_in: lw_in,
        w_out: lw_out,
        docs,
    }
}

/// Scratch buffers for one negative-sampling call, reused across every
/// position of a document (and every document of a shard).
#[derive(Default)]
struct NegScratch {
    /// `(label, output row)` pairs: the positive then the kept negatives.
    pairs: Vec<(f32, usize)>,
    /// Row ids of `pairs`, in order, for the gather kernel.
    ids: Vec<usize>,
    /// Pre-sigmoid gathered dot products, aligned with `pairs`.
    scores: Vec<f32>,
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // window loop skips position t
fn train_dm_doc(
    ids: &[usize],
    doc: &mut [f32],
    w_in: &mut Matrix,
    w_out: &mut Matrix,
    noise: &AliasTable,
    cfg: &Doc2VecConfig,
    lr: f32,
    rng: &mut Pcg32,
    scratch: &mut NegScratch,
    kern: kernel::Kernel,
) {
    let dim = cfg.dim;
    let mut h = vec![0.0f32; dim];
    let mut neu1e = vec![0.0f32; dim];
    for t in 0..ids.len() {
        let b = 1 + rng.below_usize(cfg.window.max(1));
        let lo = t.saturating_sub(b);
        let hi = (t + b).min(ids.len() - 1);
        h.copy_from_slice(doc);
        let mut n_ctx = 1.0f32;
        for c in lo..=hi {
            if c == t {
                continue;
            }
            kernel::axpy_with(kern, 1.0, w_in.row(ids[c]), &mut h);
            n_ctx += 1.0;
        }
        ops::scale(1.0 / n_ctx, &mut h);
        neu1e.iter_mut().for_each(|v| *v = 0.0);
        neg_sample_update(
            ids[t],
            &h,
            &mut neu1e,
            w_out,
            noise,
            cfg.negative,
            lr,
            rng,
            scratch,
            kern,
        );
        // Distribute the projection gradient to every contributor of the
        // mean: ∂h/∂v = 1/n_ctx for each input vector.
        let share = 1.0 / n_ctx;
        kernel::axpy_with(kern, share, &neu1e, doc);
        for c in lo..=hi {
            if c == t {
                continue;
            }
            kernel::axpy_with(kern, share, &neu1e, w_in.row_mut(ids[c]));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn train_dbow_doc(
    ids: &[usize],
    doc: &mut [f32],
    w_out: &mut Matrix,
    noise: &AliasTable,
    cfg: &Doc2VecConfig,
    lr: f32,
    rng: &mut Pcg32,
    scratch: &mut NegScratch,
    kern: kernel::Kernel,
) {
    let mut neu1e = vec![0.0f32; cfg.dim];
    let mut h = vec![0.0f32; cfg.dim];
    for &target in ids {
        neu1e.iter_mut().for_each(|v| *v = 0.0);
        h.copy_from_slice(doc);
        neg_sample_update(
            target,
            &h,
            &mut neu1e,
            w_out,
            noise,
            cfg.negative,
            lr,
            rng,
            scratch,
            kern,
        );
        kernel::axpy_with(kern, 1.0, &neu1e, doc);
    }
}

/// One negative-sampling update: adjusts `w_out` rows and accumulates the
/// input-side gradient into `neu1e`.
///
/// The positive and negative rows are drawn first, then scored with one
/// gathered-dot kernel call against the rows **as of call entry**; the
/// axpy updates then apply in draw order. (The historical loop
/// interleaved dot and update, so a negative drawn twice in one call saw
/// its twin's update — a vanishing-probability event with no
/// statistical weight.)
#[allow(clippy::too_many_arguments)]
fn neg_sample_update(
    target: usize,
    h: &[f32],
    neu1e: &mut [f32],
    w_out: &mut Matrix,
    noise: &AliasTable,
    negative: usize,
    lr: f32,
    rng: &mut Pcg32,
    scratch: &mut NegScratch,
    kern: kernel::Kernel,
) {
    scratch.pairs.clear();
    scratch.pairs.push((1.0, target));
    for _ in 0..negative {
        let mut j = noise.sample(rng);
        let mut tries = 0;
        while j == target && tries < 4 {
            j = noise.sample(rng);
            tries += 1;
        }
        if j == target {
            continue;
        }
        scratch.pairs.push((0.0, j));
    }
    scratch.ids.clear();
    scratch.ids.extend(scratch.pairs.iter().map(|&(_, j)| j));
    scratch.scores.clear();
    scratch.scores.resize(scratch.ids.len(), 0.0);
    kernel::dot_gather_with(
        kern,
        h,
        w_out.as_slice(),
        w_out.cols(),
        &scratch.ids,
        &mut scratch.scores,
    );
    for (&(label, j), &raw) in scratch.pairs.iter().zip(&scratch.scores) {
        let f = ops::sigmoid(raw);
        let g = (label - f) * lr;
        kernel::axpy_with(kern, g, w_out.row(j), neu1e);
        kernel::axpy_with(kern, g, h, w_out.row_mut(j));
    }
}

/// Content hash seeding deterministic inference.
fn token_hash(tokens: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for t in tokens {
        for b in t.as_bytes() {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl Embedder for Doc2Vec {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Deterministic inference: the RNG is seeded from the token content,
    /// so equal queries embed equally across calls and threads.
    fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let mut rng = Pcg32::with_stream(token_hash(tokens) ^ self.cfg.seed, 0x1fe2);
        self.infer(tokens, &mut rng)
    }

    fn name(&self) -> &'static str {
        "doc2vec"
    }

    /// Folds trained-model identity — seed, vocabulary size, inference
    /// epochs, and checksums of both inference matrices — on top of the
    /// (name, dim) default, so two separately-trained Doc2Vec models of
    /// the same width never share vector-cache entries.
    fn cache_namespace(&self) -> u64 {
        use crate::embedder::{namespace_fold, namespace_of, weights_checksum};
        let mut h = namespace_fold(namespace_of(self.name()), self.cfg.dim as u64);
        h = namespace_fold(h, self.cfg.seed);
        h = namespace_fold(h, self.vocab.size() as u64);
        h = namespace_fold(h, self.cfg.infer_epochs as u64);
        h = namespace_fold(h, weights_checksum(self.w_in.as_slice()));
        namespace_fold(h, weights_checksum(self.w_out.as_slice()))
    }

    fn export_spec(&self) -> Option<(&'static str, String)> {
        crate::io::to_json(self).ok().map(|j| (self.name(), j))
    }

    /// Batched inference: the O(vocab) noise table is built once for the
    /// whole batch, and documents run chunk-parallel on the compute
    /// pool. Each query still gets its own content-seeded RNG and the
    /// chunks are merged in input order, so results are bit-identical to
    /// per-query [`Embedder::embed`] at every thread count.
    fn embed_batch(&self, docs: &[Vec<String>]) -> Vec<Vec<f32>> {
        if docs.is_empty() {
            return Vec::new();
        }
        let noise = self.noise_table();
        crate::embedder::batch_chunks(docs, |tokens| {
            let mut rng = Pcg32::with_stream(token_hash(tokens) ^ self.cfg.seed, 0x1fe2);
            self.infer_with_noise(tokens, &noise, &mut rng)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_linalg::ops::cosine;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// Two clearly separable "languages" of queries.
    fn two_cluster_corpus() -> Vec<Vec<String>> {
        let mut corpus = Vec::new();
        for i in 0..30 {
            corpus.push(toks(&format!(
                "select col{} from orders where o_total > <num> group by col{}",
                i % 5,
                i % 3
            )));
            corpus.push(toks(&format!(
                "insert into audit_log values <str> <num> event{}",
                i % 4
            )));
        }
        corpus
    }

    fn small_cfg(mode: Doc2VecMode) -> Doc2VecConfig {
        Doc2VecConfig {
            dim: 24,
            window: 4,
            negative: 5,
            epochs: 30,
            initial_lr: 0.05,
            min_lr: 1e-4,
            subsample: 0.0,
            mode,
            infer_epochs: 30,
            drop_oov: false,
            vocab: VocabConfig {
                min_count: 1,
                max_size: 1000,
                hash_buckets: 64,
            },
            seed: 7,
        }
    }

    #[test]
    fn dm_separates_query_families() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        let sel = model.embed(&toks(
            "select col1 from orders where o_total > <num> group by col1",
        ));
        let sel2 = model.embed(&toks(
            "select col2 from orders where o_total > <num> group by col2",
        ));
        let ins = model.embed(&toks("insert into audit_log values <str> <num> event1"));
        let within = cosine(&sel, &sel2);
        let across = cosine(&sel, &ins);
        assert!(
            within > across,
            "within-family {within} should exceed cross-family {across}"
        );
    }

    #[test]
    fn dbow_separates_query_families() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::Dbow));
        let sel = model.embed(&toks(
            "select col1 from orders where o_total > <num> group by col1",
        ));
        let sel2 = model.embed(&toks(
            "select col0 from orders where o_total > <num> group by col2",
        ));
        let ins = model.embed(&toks("insert into audit_log values <str> <num> event2"));
        assert!(cosine(&sel, &sel2) > cosine(&sel, &ins));
    }

    #[test]
    fn embed_batch_is_bit_identical_to_embed() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        let docs = vec![
            toks("select col1 from orders where o_total > <num>"),
            toks(""),
            toks("insert into audit_log values <str> <num> event3"),
            toks("completely unseen zzz"),
        ];
        let batch = model.embed_batch(&docs);
        assert_eq!(batch.len(), docs.len());
        for (doc, v) in docs.iter().zip(&batch) {
            assert_eq!(*v, model.embed(doc), "batch diverged on {doc:?}");
        }
    }

    #[test]
    fn embed_is_deterministic() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        let q = toks("select col1 from orders where o_total > <num>");
        assert_eq!(model.embed(&q), model.embed(&q));
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let corpus = two_cluster_corpus();
        let m1 = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        let m2 = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        assert_eq!(m1.doc_vector(0), m2.doc_vector(0));
        assert_eq!(m1.doc_vector(10), m2.doc_vector(10));
    }

    #[test]
    fn unseen_tokens_do_not_panic() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        let v = model.embed(&toks("completely unseen tokens zzz qqq"));
        assert_eq!(v.len(), model.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_input_embeds_finite() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        let v = model.embed(&[]);
        assert_eq!(v.len(), model.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn doc_vectors_available_for_training_docs() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        assert_eq!(model.num_docs(), corpus.len());
        // Trained doc vectors of the two families separate too.
        let a = model.doc_vector(0); // select-family (even indices)
        let b = model.doc_vector(2);
        let c = model.doc_vector(1); // insert-family (odd indices)
        assert!(cosine(a, b) > cosine(a, c));
    }

    #[test]
    fn all_embeddings_finite_after_training() {
        let corpus = two_cluster_corpus();
        let model = Doc2Vec::train(&corpus, small_cfg(Doc2VecMode::DistributedMemory));
        for i in 0..model.num_docs() {
            assert!(model.doc_vector(i).iter().all(|x| x.is_finite()));
        }
    }
}
