//! Workload summarization for index recommendation (paper §5.1).
//!
//! The Querc pipeline: embed every query, pick K with the elbow method,
//! run K-means, and keep the query nearest each centroid ("witnesses") as
//! the compressed workload handed to the tuning advisor.
//!
//! Two classical comparators are provided for the ablation benches:
//! K-medoids over hand-engineered syntactic features (the Chaudhuri-style
//! approach the paper argues requires per-workload distance engineering)
//! and uniform random sampling (what a tuning advisor's native compressor
//! does).

use super::{AppOutput, AppReport, TrainCorpus, WorkloadApp};
use crate::enriched::EnrichedQuery;
use crate::error::Result;
use querc_cluster::{choose_k_elbow, kmeans, KMeansConfig};
use querc_embed::Embedder;
use querc_index::{FlatIndex, IndexStats, Metric, VectorIndex};
use querc_linalg::Pcg32;
use querc_sql::features::feature_vector;
use querc_sql::Dialect;
use std::sync::Arc;

/// How to compress the workload.
pub enum SummaryMethod<'a> {
    /// Learned embeddings + K-means + elbow (the paper's method).
    Embedding(&'a dyn Embedder),
    /// K-medoids over fixed syntactic features (classical baseline).
    SyntacticKMedoids,
    /// Uniform random sample (native-advisor strawman).
    RandomSample,
}

/// Summarization knobs.
#[derive(Debug, Clone)]
pub struct SummaryConfig {
    /// Fix K instead of running the elbow scan.
    pub k: Option<usize>,
    /// Elbow scan lower bound (used when `k` is None).
    pub k_min: usize,
    /// Elbow scan upper bound (used when `k` is None).
    pub k_max: usize,
    /// Elbow plateau threshold (relative gain vs initial SSE).
    pub plateau: f64,
    /// RNG seed for k-means initialization and sampling.
    pub seed: u64,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            k: None,
            k_min: 4,
            k_max: 40,
            plateau: 0.01,
            seed: 0x5a11,
        }
    }
}

/// Compress `sqls` to a witness subset; returns indices into `sqls`.
pub fn summarize_workload(
    sqls: &[&str],
    method: &SummaryMethod<'_>,
    cfg: &SummaryConfig,
) -> Vec<usize> {
    if sqls.is_empty() {
        return Vec::new();
    }
    let mut rng = Pcg32::with_stream(cfg.seed, 0x5a12);
    match method {
        SummaryMethod::Embedding(embedder) => {
            let points: Vec<Vec<f32>> = sqls.iter().map(|s| embedder.embed_sql(s)).collect();
            let k = effective_k(cfg, &points, &mut rng);
            let result = kmeans(
                &points,
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                &mut rng,
            );
            dedup_witnesses(result.witnesses(&points))
        }
        SummaryMethod::SyntacticKMedoids => {
            let points: Vec<Vec<f32>> = sqls
                .iter()
                .map(|s| feature_vector(s, Dialect::Generic))
                .collect();
            let k = effective_k(cfg, &points, &mut rng);
            let res = querc_cluster::kmedoids::kmedoids_euclidean(&points, k, &mut rng);
            dedup_witnesses(res.medoids)
        }
        SummaryMethod::RandomSample => {
            let k = cfg.k.unwrap_or(cfg.k_max).min(sqls.len());
            rng.sample_indices(sqls.len(), k)
        }
    }
}

fn effective_k(cfg: &SummaryConfig, points: &[Vec<f32>], rng: &mut Pcg32) -> usize {
    match cfg.k {
        Some(k) => k.min(points.len()),
        None => choose_k_elbow(
            points,
            cfg.k_min.min(points.len().max(1)),
            cfg.k_max.min(points.len()),
            cfg.plateau,
            rng,
        ),
    }
}

fn dedup_witnesses(mut w: Vec<usize>) -> Vec<usize> {
    w.sort_unstable();
    w.dedup();
    w
}

/// [`summarize_workload`]'s clustering behind the uniform
/// [`WorkloadApp`] interface: `fit` clusters the training workload and
/// keeps per-cluster witnesses; `label_batch` assigns each incoming
/// query to its summary cluster.
///
/// Labels attached per query: `summary_cluster` (cluster id) and
/// `summary_witness` (the cluster's representative query — what the
/// tuning advisor would see in the compressed workload).
pub struct SummarizeApp {
    embedder: Arc<dyn Embedder>,
    /// Clustering configuration used at fit time.
    pub cfg: SummaryConfig,
}

impl SummarizeApp {
    /// A summarization app over `embedder` with the default elbow scan.
    pub fn new(embedder: Arc<dyn Embedder>) -> SummarizeApp {
        SummarizeApp {
            embedder,
            cfg: SummaryConfig::default(),
        }
    }

    /// Override the clustering configuration.
    pub fn with_config(mut self, cfg: SummaryConfig) -> SummarizeApp {
        self.cfg = cfg;
        self
    }
}

/// A fitted workload summary: cluster centroids plus their witnesses.
pub struct SummaryModel {
    /// Exact index over the summary centroids; serving assigns each
    /// incoming query's vector with a k=1 search.
    centroids: FlatIndex,
    /// Witness SQL per centroid (`witnesses[c]` represents cluster `c`).
    witnesses: Vec<String>,
    /// Indices of the witness queries in the training corpus.
    pub witness_indices: Vec<usize>,
    trained_queries: usize,
}

impl SummaryModel {
    /// The compressed workload: one representative SQL per cluster.
    pub fn witnesses(&self) -> &[String] {
        &self.witnesses
    }

    /// Summary-cluster id of a precomputed embedding vector.
    pub fn cluster_of_vector(&self, v: &[f32]) -> usize {
        self.centroids.nearest(v).unwrap_or(0) as usize
    }

    /// Search counters of the centroid index.
    pub fn index_stats(&self) -> IndexStats {
        self.centroids.stats()
    }
}

impl WorkloadApp for SummarizeApp {
    type Model = SummaryModel;

    fn name(&self) -> &'static str {
        "summarize"
    }

    fn task(&self) -> &'static str {
        "compress the workload to cluster witnesses for index tuning"
    }

    fn fit(&self, corpus: &TrainCorpus) -> Result<SummaryModel> {
        corpus.require_records("summarize.fit")?;
        let docs = corpus.token_corpus();
        let points = self.embedder.embed_batch(&docs);
        let mut rng = Pcg32::with_stream(self.cfg.seed ^ corpus.seed, 0x5a12);
        let k = effective_k(&self.cfg, &points, &mut rng);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k,
                ..Default::default()
            },
            &mut rng,
        );
        // Per-centroid witness: the training query nearest each centroid.
        let per_cluster = result.witnesses(&points);
        let witness_indices = dedup_witnesses(per_cluster.clone());
        let witnesses = per_cluster
            .iter()
            .map(|&i| corpus.records[i].sql.clone())
            .collect();
        Ok(SummaryModel {
            centroids: FlatIndex::from_rows(&result.centroids, Metric::Euclidean),
            witnesses,
            witness_indices,
            trained_queries: corpus.len(),
        })
    }

    fn label_batch(&self, model: &SummaryModel, batch: &[EnrichedQuery]) -> Result<Vec<AppOutput>> {
        let vectors = EnrichedQuery::vectors(batch, self.embedder.as_ref());
        let refs: Vec<&[f32]> = vectors.iter().map(|v| v.as_slice()).collect();
        // One batched k=1 search over the centroid index for the chunk.
        Ok(model
            .centroids
            .nearest_batch(&refs)
            .into_iter()
            .map(|c| {
                let cluster = c.unwrap_or(0) as usize;
                let mut out = AppOutput::new();
                out.set("summary_cluster", cluster.to_string());
                out.set("summary_witness", model.witnesses[cluster].clone());
                out
            })
            .collect())
    }

    fn embedder(&self) -> Option<Arc<dyn Embedder>> {
        Some(Arc::clone(&self.embedder))
    }

    fn index_stats(&self, model: &SummaryModel) -> Option<IndexStats> {
        Some(model.index_stats())
    }

    fn report(&self, model: &SummaryModel) -> AppReport {
        AppReport {
            app: self.name().to_string(),
            task: self.task().to_string(),
            trained_queries: model.trained_queries,
            detail: vec![
                ("embedder".to_string(), self.embedder.name().to_string()),
                ("clusters".to_string(), model.centroids.len().to_string()),
                (
                    "witnesses".to_string(),
                    model.witness_indices.len().to_string(),
                ),
            ],
        }
    }

    fn save_model(&self, model: &SummaryModel) -> Option<String> {
        let store = model.centroids.store();
        let mut flat = Vec::with_capacity(store.len() * store.dim());
        for row in store.iter() {
            flat.extend_from_slice(row);
        }
        crate::persist::to_json(&SummaryState {
            dim: store.dim(),
            centroids: flat,
            witnesses: model.witnesses.clone(),
            witness_indices: model.witness_indices.clone(),
            trained_queries: model.trained_queries,
        })
    }

    fn load_model(&self, json: &str) -> Result<SummaryModel> {
        let state: SummaryState = crate::persist::from_json(json, "summarize model")?;
        let rows = restore_centroids(
            &state.dim,
            &state.centroids,
            self.embedder.dim(),
            "summarize",
        )?;
        if state.witnesses.len() != rows.len() {
            return Err(crate::persist::corrupt(format!(
                "summarize model has {} witnesses for {} centroids",
                state.witnesses.len(),
                rows.len()
            )));
        }
        Ok(SummaryModel {
            centroids: FlatIndex::from_rows(&rows, Metric::Euclidean),
            witnesses: state.witnesses,
            witness_indices: state.witness_indices,
            trained_queries: state.trained_queries,
        })
    }
}

/// Serialized form of a [`SummaryModel`]: centroid rows flattened
/// row-major (`dim` floats each) plus the witness table.
#[derive(serde::Serialize, serde::Deserialize)]
struct SummaryState {
    dim: usize,
    centroids: Vec<f32>,
    witnesses: Vec<String>,
    witness_indices: Vec<usize>,
    trained_queries: usize,
}

/// Unflatten and validate a serialized centroid matrix against the app
/// embedder's width. Shared with the recommendation app — both restore
/// a centroid `FlatIndex` that serving will probe with embedder output.
pub(crate) fn restore_centroids(
    dim: &usize,
    flat: &[f32],
    embedder_dim: usize,
    app: &str,
) -> Result<Vec<Vec<f32>>> {
    let dim = *dim;
    if dim == 0 || dim != embedder_dim {
        return Err(crate::persist::corrupt(format!(
            "{app} model centroids have dim {dim} but embedder has dim {embedder_dim}"
        )));
    }
    if flat.is_empty() || !flat.len().is_multiple_of(dim) {
        return Err(crate::persist::corrupt(format!(
            "{app} model centroid matrix has {} floats, not a positive multiple of dim {dim}",
            flat.len()
        )));
    }
    Ok(flat.chunks_exact(dim).map(<[f32]>::to_vec).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn mixed_workload() -> Vec<String> {
        let mut sqls = Vec::new();
        for i in 0..25 {
            sqls.push(format!(
                "select c{}, sum(v) from sales_orders where d > {} group by c{}",
                i % 3,
                i,
                i % 3
            ));
            sqls.push(format!("insert into raw_events values ({i}, 'x')"));
            sqls.push(format!("select * from users where user_id = {i}"));
        }
        sqls
    }

    #[test]
    fn embedding_summary_covers_query_families() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let embedder = BagOfTokens::new(128, true);
        let cfg = SummaryConfig {
            k: Some(6),
            ..Default::default()
        };
        let witnesses = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        assert!(!witnesses.is_empty() && witnesses.len() <= 6);
        // The witnesses must span all three families.
        let kinds: std::collections::HashSet<&str> = witnesses
            .iter()
            .map(|&i| {
                if refs[i].starts_with("insert") {
                    "insert"
                } else if refs[i].contains("group by") {
                    "agg"
                } else {
                    "lookup"
                }
            })
            .collect();
        assert_eq!(kinds.len(), 3, "summary misses a family: {witnesses:?}");
    }

    #[test]
    fn syntactic_kmedoids_also_covers_families() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let cfg = SummaryConfig {
            k: Some(6),
            ..Default::default()
        };
        let witnesses = summarize_workload(&refs, &SummaryMethod::SyntacticKMedoids, &cfg);
        assert!(!witnesses.is_empty() && witnesses.len() <= 6);
    }

    #[test]
    fn random_sample_has_requested_size() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let cfg = SummaryConfig {
            k: Some(10),
            ..Default::default()
        };
        let w = summarize_workload(&refs, &SummaryMethod::RandomSample, &cfg);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|&i| i < refs.len()));
    }

    #[test]
    fn elbow_mode_picks_small_k_for_three_families() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let embedder = BagOfTokens::new(128, true);
        let cfg = SummaryConfig {
            k: None,
            k_min: 2,
            k_max: 15,
            plateau: 0.05,
            ..Default::default()
        };
        let w = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        assert!(
            (2..=15).contains(&w.len()),
            "elbow K out of range: {}",
            w.len()
        );
    }

    #[test]
    fn summarize_app_implements_workload_app() {
        use querc_workloads::QueryRecord;
        let sqls = mixed_workload();
        let records: Vec<QueryRecord> = sqls
            .iter()
            .enumerate()
            .map(|(i, sql)| QueryRecord {
                sql: sql.clone(),
                user: "u".into(),
                account: "a".into(),
                cluster: "c".into(),
                dialect: "generic".into(),
                runtime_ms: 1.0,
                mem_mb: 1.0,
                error_code: None,
                timestamp: i as u64,
            })
            .collect();
        let corpus = TrainCorpus::from_records(records, 11);
        let app =
            SummarizeApp::new(Arc::new(BagOfTokens::new(128, true))).with_config(SummaryConfig {
                k: Some(6),
                ..Default::default()
            });
        let model = app.fit(&corpus).unwrap();
        assert!(!model.witnesses().is_empty() && model.witnesses().len() <= 6);
        let out = app
            .label_batch(
                &model,
                &[
                    EnrichedQuery::from_sql("insert into raw_events values (99, 'x')"),
                    EnrichedQuery::from_sql("select * from users where user_id = 99"),
                ],
            )
            .unwrap();
        assert!(out[0].get("summary_cluster").is_some());
        assert!(out[0].get("summary_witness").is_some());
        // Distinct query families land in distinct summary clusters.
        assert_ne!(
            out[0].get("summary_cluster"),
            out[1].get("summary_cluster"),
            "insert and lookup should not share a cluster"
        );
        assert_eq!(app.report(&model).app, "summarize");
    }

    #[test]
    fn model_round_trips_through_save_load() {
        use querc_workloads::QueryRecord;
        let records: Vec<QueryRecord> = mixed_workload()
            .iter()
            .enumerate()
            .map(|(i, sql)| QueryRecord {
                sql: sql.clone(),
                user: "u".into(),
                account: "a".into(),
                cluster: "c".into(),
                dialect: "generic".into(),
                runtime_ms: 1.0,
                mem_mb: 1.0,
                error_code: None,
                timestamp: i as u64,
            })
            .collect();
        let corpus = TrainCorpus::from_records(records, 11);
        let app =
            SummarizeApp::new(Arc::new(BagOfTokens::new(128, true))).with_config(SummaryConfig {
                k: Some(6),
                ..Default::default()
            });
        let model = app.fit(&corpus).unwrap();
        let json = app.save_model(&model).expect("centroids are persistable");
        let restored = app.load_model(&json).unwrap();
        let batch: Vec<EnrichedQuery> = [
            "insert into raw_events values (99, 'x')",
            "select * from users where user_id = 99",
            "select c1, sum(v) from sales_orders where d > 9 group by c1",
        ]
        .iter()
        .map(|s| EnrichedQuery::from_sql(*s))
        .collect();
        assert_eq!(
            app.label_batch(&model, &batch).unwrap(),
            app.label_batch(&restored, &batch).unwrap()
        );
        assert_eq!(restored.witnesses(), model.witnesses());
        assert_eq!(restored.witness_indices, model.witness_indices);

        // Witness/centroid count mismatch would index-panic at label
        // time; the restore path must reject it instead.
        let mut state: SummaryState = crate::persist::from_json(&json, "t").unwrap();
        state.witnesses.pop();
        let truncated = crate::persist::to_json(&state).unwrap();
        assert!(matches!(
            app.load_model(&truncated),
            Err(crate::error::QuercError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_workload() {
        let embedder = BagOfTokens::new(16, false);
        let w = summarize_workload(
            &[],
            &SummaryMethod::Embedding(&embedder),
            &SummaryConfig::default(),
        );
        assert!(w.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let embedder = BagOfTokens::new(64, true);
        let cfg = SummaryConfig {
            k: Some(5),
            ..Default::default()
        };
        let a = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        let b = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        assert_eq!(a, b);
    }
}
