//! Runtime-dispatched scalar/AVX2/AVX-512 compute kernels — the
//! workspace's shared **compute plane**.
//!
//! Every distance the index plane computes and every hot inner loop of
//! the training stack (GEMV/GEMM, negative-sampling dots, centroid
//! scans) flows through this module. Three arms exist:
//!
//! * **scalar** — the [`crate::ops`] lane-strided reference loops
//!   (element `i` accumulates into lane `i % 8`, lanes collapse through
//!   `ops::lane_sum`). This is the semantic definition.
//! * **avx2** — hand-written `std::arch` intrinsics performing the
//!   *identical* IEEE-754 operation sequence: one `vsubps`/`vmulps`/
//!   `vaddps` chain per 8-element chunk, scalar remainder folded into
//!   the same lanes, the same `lane_sum` reduction tree. No FMA is used
//!   in the accumulation (fusing changes rounding), so **both arms are
//!   bit-for-bit identical** — for squared-Euclidean, cosine, dot,
//!   axpy, the gathered-row and blocked-GEMM kernels, and the SQ8
//!   asymmetric-distance kernels alike. The cosine ulp bound between
//!   arms is therefore 0.
//! * **avx512** — the same 8-lane accumulation sequences, but with
//!   **two independent rows packed per 512-bit register** in the
//!   blocked and gathered kernels (each 256-bit half runs one row's
//!   canonical chunk chain, so no per-row operation order changes) and
//!   a 16-wide [`axpy`] (elementwise — no reduction, so register width
//!   is invisible to the result). Single-row reductions are
//!   latency-bound on the 8-lane canon and gain nothing from wider
//!   registers, so they delegate to the AVX2 twins. Bit-identical to
//!   both other arms by the same argument.
//!
//! The active arm is picked once per process: the `QUERC_SIMD`
//! environment variable (`scalar`/`off`/`0` forces the reference path,
//! `avx2`/`on`/`1` requests AVX2, `avx512` requests AVX-512) wins over
//! CPU detection, and a programmatic [`set_kernel_override`] (the
//! `WorkloadManagerConfig` knob) wins over both. Requesting an arm the
//! CPU lacks falls back to the widest available one. Because the arms
//! are bit-identical, flipping the kernel mid-process is benign — only
//! throughput changes, never a result.
//!
//! The `*_with` variants take an explicit [`Kernel`] and exist for the
//! parity suite and the benchmarks (timing one arm against the other
//! without touching process-global state).
//!
//! Historically this module lived in `querc_index::simd`; it moved here
//! so the training stack (`querc-embed`, `querc-learn`,
//! `querc-cluster`, [`crate::Matrix`]) can reach the same kernels
//! without depending on the index crate. `querc_index::simd` re-exports
//! everything, so index-plane call sites are unchanged.

use crate::ops;
use std::sync::atomic::{AtomicU8, Ordering};

/// A compute-kernel implementation arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The [`crate::ops`] lane-strided reference loops.
    Scalar,
    /// Hand-vectorized AVX2 intrinsics (x86-64 only), bit-identical to
    /// [`Kernel::Scalar`].
    Avx2,
    /// AVX-512 row-pair kernels (x86-64 only): two rows per 512-bit
    /// register in the blocked/gathered scans, 16-wide axpy.
    /// Bit-identical to [`Kernel::Scalar`].
    Avx512,
}

impl Kernel {
    /// Short lowercase name (`"scalar"` / `"avx2"` / `"avx512"`), for
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
        }
    }
}

/// 0 = unset, 1 = force scalar, 2 = force avx2, 3 = force avx512
/// (each "force" still degrades to the widest available arm).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether this CPU can run the AVX2 arm (benchmarks use this to size
/// their sweep; dispatch consults it automatically).
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Whether this CPU can run the AVX2 arm (benchmarks use this to size
/// their sweep; dispatch consults it automatically).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// Whether this CPU can run the AVX-512 arm. Requires AVX-512 F + DQ
/// (`_mm512_broadcast_f32x8` / `_mm512_extractf32x8_ps`) plus AVX2,
/// whose kernels the arm delegates single-row work to.
#[cfg(target_arch = "x86_64")]
pub fn avx512_available() -> bool {
    use std::sync::OnceLock;
    static AVX512: OnceLock<bool> = OnceLock::new();
    *AVX512.get_or_init(|| {
        is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512dq")
            && avx2_available()
    })
}

/// Whether this CPU can run the AVX-512 arm.
#[cfg(not(target_arch = "x86_64"))]
pub fn avx512_available() -> bool {
    false
}

fn env_kernel() -> Option<Kernel> {
    use std::sync::OnceLock;
    static ENV: OnceLock<Option<Kernel>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("QUERC_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" | "off" | "0" => Some(Kernel::Scalar),
            "avx2" | "on" | "1" => Some(Kernel::Avx2),
            "avx512" => Some(Kernel::Avx512),
            _ => None,
        },
        Err(_) => None,
    })
}

/// Force (or clear, with `None`) the kernel arm for the whole process,
/// overriding both `QUERC_SIMD` and CPU detection. Requesting
/// [`Kernel::Avx2`] on a CPU without AVX2 still runs scalar. Returns
/// the now-active kernel. Safe to call at any time: the arms are
/// bit-identical, so in-flight searches and fits are unaffected.
pub fn set_kernel_override(kernel: Option<Kernel>) -> Kernel {
    let code = match kernel {
        None => 0,
        Some(Kernel::Scalar) => 1,
        Some(Kernel::Avx2) => 2,
        Some(Kernel::Avx512) => 3,
    };
    OVERRIDE.store(code, Ordering::Relaxed);
    active_kernel()
}

/// The kernel arm distances are currently computed with.
pub fn active_kernel() -> Kernel {
    let requested = match OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(Kernel::Scalar),
        2 => Some(Kernel::Avx2),
        3 => Some(Kernel::Avx512),
        _ => env_kernel(),
    };
    match requested {
        Some(Kernel::Scalar) => Kernel::Scalar,
        Some(Kernel::Avx512) if avx512_available() => Kernel::Avx512,
        Some(Kernel::Avx512) if avx2_available() => Kernel::Avx2,
        Some(Kernel::Avx512) => Kernel::Scalar,
        Some(Kernel::Avx2) if avx2_available() => Kernel::Avx2,
        Some(Kernel::Avx2) => Kernel::Scalar,
        None if avx512_available() => Kernel::Avx512,
        None if avx2_available() => Kernel::Avx2,
        None => Kernel::Scalar,
    }
}

/// Name of the active kernel arm (`"avx2"` / `"scalar"`), as surfaced
/// in index stats and the serving-layer throughput reports.
pub fn kernel_name() -> &'static str {
    active_kernel().name()
}

// ---------------------------------------------------------------------
// Row kernels (one query × one row).
// ---------------------------------------------------------------------

/// Squared Euclidean distance, on the active kernel. Bit-identical to
/// `ops::sq_dist` on every arm.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist_with(active_kernel(), a, b)
}

/// [`sq_dist`] on an explicit arm (parity tests / benchmarks).
#[inline]
pub fn sq_dist_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Scalar => ops::sq_dist(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::sq_dist(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => ops::sq_dist(a, b),
    }
}

/// Cosine distance `1 − cosine(a, b)`, on the active kernel.
/// Bit-identical to `ops::cosine_dist` on every arm (zero vectors →
/// exactly `1.0`, never NaN).
#[inline]
pub fn cosine_dist(a: &[f32], b: &[f32]) -> f32 {
    cosine_dist_with(active_kernel(), a, b)
}

/// [`cosine_dist`] on an explicit arm (parity tests / benchmarks).
#[inline]
pub fn cosine_dist_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Scalar => ops::cosine_dist(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::cosine_dist(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => ops::cosine_dist(a, b),
    }
}

/// Dot product, on the active kernel. Bit-identical to `ops::dot`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(active_kernel(), a, b)
}

/// [`dot`] on an explicit arm (parity tests / benchmarks).
#[inline]
pub fn dot_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Scalar => ops::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::dot(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => ops::dot(a, b),
    }
}

/// `y += alpha * x`, on the active kernel. Bit-identical to
/// `ops::axpy`: the operation is elementwise (no reduction), so both
/// arms perform literally the same multiply-then-add per component.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(active_kernel(), alpha, x, y)
}

/// [`axpy`] on an explicit arm (parity tests / benchmarks).
#[inline]
pub fn axpy_with(kernel: Kernel, alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    match kernel {
        Kernel::Scalar => ops::axpy(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { avx512::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => ops::axpy(alpha, x, y),
    }
}

// ---------------------------------------------------------------------
// Fused block kernels (one query × a contiguous row-major block).
//
// `data` is padded row-major storage (`VectorStore::data`): row `r`
// starts at `r * stride` and its first `q.len()` components are real;
// `data.len() >= out.len() * stride` must hold. The fused kernels keep
// the query hot in registers across rows and unroll rows in quads
// (pairs on tail-carrying dims), reducing four accumulators at once
// through a transposed copy of the `lane_sum` tree — which is where
// the flat-scan speedup over per-row calls comes from.
// ---------------------------------------------------------------------

/// Squared Euclidean distances from `q` to `out.len()` consecutive
/// rows of `data`, on the active kernel. `out[r]` is bit-identical to
/// `ops::sq_dist(q, row_r)`.
#[inline]
pub fn sq_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
    sq_dist_block_with(active_kernel(), q, data, stride, out)
}

/// [`sq_dist_block`] on an explicit arm.
pub fn sq_dist_block_with(kernel: Kernel, q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
    assert!(q.len() <= stride && data.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = ops::sq_dist(q, &data[r * stride..r * stride + q.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::sq_dist_block(q, data, stride, out) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { avx512::sq_dist_block(q, data, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => sq_dist_block_with(Kernel::Scalar, q, data, stride, out),
    }
}

/// Cosine distances from `q` to `out.len()` consecutive rows of
/// `data`, on the active kernel. `out[r]` is bit-identical to
/// `ops::cosine_dist(q, row_r)`.
#[inline]
pub fn cosine_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
    cosine_dist_block_with(active_kernel(), q, data, stride, out)
}

/// [`cosine_dist_block`] on an explicit arm.
pub fn cosine_dist_block_with(
    kernel: Kernel,
    q: &[f32],
    data: &[f32],
    stride: usize,
    out: &mut [f32],
) {
    assert!(q.len() <= stride && data.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = ops::cosine_dist(q, &data[r * stride..r * stride + q.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::cosine_dist_block(q, data, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => {
            cosine_dist_block_with(Kernel::Scalar, q, data, stride, out)
        }
    }
}

/// Dot products of `q` against **gathered** rows of `data`:
/// `out[j] = dot(q, data[ids[j]·stride ..][..q.len()])`, on the active
/// kernel — the negative-sampling kernel (one hidden vector against a
/// target row plus its noise rows) and the sampled-softmax scorer.
/// `out[j]` is bit-identical to `ops::dot(q, row_ids[j])` on every arm.
#[inline]
pub fn dot_gather(q: &[f32], data: &[f32], stride: usize, ids: &[usize], out: &mut [f32]) {
    dot_gather_with(active_kernel(), q, data, stride, ids, out)
}

/// [`dot_gather`] on an explicit arm.
pub fn dot_gather_with(
    kernel: Kernel,
    q: &[f32],
    data: &[f32],
    stride: usize,
    ids: &[usize],
    out: &mut [f32],
) {
    assert!(q.len() <= stride && ids.len() == out.len());
    assert!(ids.iter().all(|&id| id * stride + q.len() <= data.len()));
    match kernel {
        Kernel::Scalar => {
            for (o, &id) in out.iter_mut().zip(ids) {
                *o = ops::dot(q, &data[id * stride..id * stride + q.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot_gather(q, data, stride, ids, out) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { avx512::dot_gather(q, data, stride, ids, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => dot_gather_with(Kernel::Scalar, q, data, stride, ids, out),
    }
}

// ---------------------------------------------------------------------
// Blocked GEMM.
// ---------------------------------------------------------------------

/// `c += a × b` for row-major `a` (`m × k`), `b` (`k × n`), `c`
/// (`m × n`), on the active kernel.
///
/// The loop order is the workspace's canonical (i, k, j) axpy form —
/// each `c[i][j]` accumulates its `k` terms in ascending order — with
/// the `k` dimension blocked so a panel of `b` stays cache-resident
/// across the `i` sweep. Blocking never reorders any element's
/// accumulation sequence, and the inner axpy arms are elementwise, so
/// the result is **bit-identical** across arms *and* block sizes.
/// Zero `a[i][k]` entries skip their axpy entirely, exactly like
/// [`crate::Matrix::matmul`] always has (sparse one-hot rows stay
/// cheap, and `0 × ∞`/`0 × NaN` never pollute `c`).
#[inline]
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_with(active_kernel(), a, b, c, m, k, n)
}

/// [`gemm`] on an explicit arm.
pub fn gemm_with(
    kernel: Kernel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    // Panel height: 64 rows of b × n floats ≈ 16–64 KiB for the dims
    // the models use — L1/L2-resident across the whole i sweep.
    const KC: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let kb = (k - k0).min(KC);
        for i in 0..m {
            let arow = &a[i * k..i * k + k];
            let crow = &mut c[i * n..i * n + n];
            for kk in k0..k0 + kb {
                let alpha = arow[kk];
                if alpha == 0.0 {
                    continue;
                }
                axpy_with(kernel, alpha, &b[kk * n..kk * n + n], crow);
            }
        }
        k0 += kb;
    }
}

// ---------------------------------------------------------------------
// SQ8 asymmetric-distance (ADC) kernels: f32 query vs u8 codes.
//
// `codes` is padded row-major u8 storage (`CodeStore::data` in
// `querc-index`): row `r` starts at `r * stride`. The caller pre-folds
// the quantizer into the query — see `querc_index::sq8` for the
// algebra — so these kernels only ever see `t` (translated query) and
// `step` / `w` (per-dim weights).
// ---------------------------------------------------------------------

/// ADC squared distances: `out[r] = Σ_d (t[d] − codes[r][d]·step[d])²`
/// with lane-strided accumulation, on the active kernel.
#[inline]
pub fn adc_sq_block(t: &[f32], step: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
    adc_sq_block_with(active_kernel(), t, step, codes, stride, out)
}

/// [`adc_sq_block`] on an explicit arm.
pub fn adc_sq_block_with(
    kernel: Kernel,
    t: &[f32],
    step: &[f32],
    codes: &[u8],
    stride: usize,
    out: &mut [f32],
) {
    assert!(t.len() == step.len() && t.len() <= stride && codes.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = adc_sq_row_scalar(t, step, &codes[r * stride..r * stride + t.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::adc_sq_block(t, step, codes, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => {
            adc_sq_block_with(Kernel::Scalar, t, step, codes, stride, out)
        }
    }
}

/// ADC weighted code sums: `out[r] = Σ_d w[d]·codes[r][d]` with
/// lane-strided accumulation, on the active kernel — the data-dependent
/// half of an SQ8 cosine dot product.
#[inline]
pub fn adc_dot_block(w: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
    adc_dot_block_with(active_kernel(), w, codes, stride, out)
}

/// [`adc_dot_block`] on an explicit arm.
pub fn adc_dot_block_with(kernel: Kernel, w: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
    assert!(w.len() <= stride && codes.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = adc_dot_row_scalar(w, &codes[r * stride..r * stride + w.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::adc_dot_block(w, codes, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => adc_dot_block_with(Kernel::Scalar, w, codes, stride, out),
    }
}

/// Scalar ADC squared-distance reference: lane-strided like
/// `ops::sq_dist`, with the subtrahend decoded from `codes` on the fly.
#[inline]
fn adc_sq_row_scalar(t: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    let mut l = [0.0f32; ops::LANES];
    let n = t.len();
    let head = n - n % ops::LANES;
    let mut i = 0;
    while i < head {
        for k in 0..ops::LANES {
            let d = t[i + k] - codes[i + k] as f32 * step[i + k];
            l[k] += d * d;
        }
        i += ops::LANES;
    }
    for k in 0..n - head {
        let d = t[head + k] - codes[head + k] as f32 * step[head + k];
        l[k] += d * d;
    }
    ops::lane_sum(l)
}

/// Scalar ADC weighted-code-sum reference, lane-strided like `ops::dot`.
#[inline]
fn adc_dot_row_scalar(w: &[f32], codes: &[u8]) -> f32 {
    let mut l = [0.0f32; ops::LANES];
    let n = w.len();
    let head = n - n % ops::LANES;
    let mut i = 0;
    while i < head {
        for k in 0..ops::LANES {
            l[k] += w[i + k] * codes[i + k] as f32;
        }
        i += ops::LANES;
    }
    for k in 0..n - head {
        l[k] += w[head + k] * codes[head + k] as f32;
    }
    ops::lane_sum(l)
}

// ---------------------------------------------------------------------
// AVX2 arm.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Bit-parity twins of the scalar reference kernels.
    //!
    //! Safety: every function is `#[target_feature(enable = "avx2")]`
    //! and must only be reached through the dispatcher above, which has
    //! either verified `is_x86_feature_detected!("avx2")` or been
    //! explicitly handed [`Kernel::Avx2`] by the parity suite (which
    //! performs the same check). All loads are unaligned (`loadu`) —
    //! `VectorStore` pads row *strides* to 32 bytes but `Vec<f32>` does
    //! not guarantee a 32-byte base address, and query slices are
    //! arbitrary.

    use super::Kernel;
    use crate::ops::{lane_sum, LANES};
    use std::arch::x86_64::*;

    /// Collapse one AVX2 accumulator plus the scalar-tail lanes.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce(acc: __m256, tail: impl FnOnce(&mut [f32; LANES])) -> f32 {
        let mut l = [0.0f32; LANES];
        _mm256_storeu_ps(l.as_mut_ptr(), acc);
        tail(&mut l);
        lane_sum(l)
    }

    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let head = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
            i += LANES;
        }
        reduce(acc, |l| {
            for k in 0..n - head {
                let d = a[head + k] - b[head + k];
                l[k] += d * d;
            }
        })
    }

    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let head = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            let p = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_add_ps(acc, p);
            i += LANES;
        }
        reduce(acc, |l| {
            for k in 0..n - head {
                l[k] += a[head + k] * b[head + k];
            }
        })
    }

    /// `y += alpha * x`, vertical (no reduction): one `vmulps` +
    /// `vaddps` per chunk, scalar multiply-add on the tail — exactly
    /// the per-component operation of `ops::axpy`, so results are
    /// bit-identical by construction.
    ///
    /// # Safety
    /// AVX2 must be available; `x.len() == y.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let head = n - n % LANES;
        let va = _mm256_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < head {
            let prod = _mm256_mul_ps(va, _mm256_loadu_ps(px.add(i)));
            _mm256_storeu_ps(py.add(i), _mm256_add_ps(_mm256_loadu_ps(py.add(i)), prod));
            i += LANES;
        }
        for k in head..n {
            *py.add(k) += alpha * *px.add(k);
        }
    }

    /// Mirrors `ops::cosine_dist` exactly: `norm(a)`, `norm(b)`,
    /// `dot(a, b)`, divide, clamp, `1 −`.
    ///
    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cosine_dist(a: &[f32], b: &[f32]) -> f32 {
        let na = dot(a, a).sqrt();
        let nb = dot(b, b).sqrt();
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }

    /// Collapse four AVX2 accumulators into four results at once: the
    /// 128-bit halves are added (`s_i = l[i] + l[i+4]`), the four
    /// `[s0..s3]` vectors are transposed, and the vertical adds
    /// `(c0+c2)+(c1+c3)` perform, per lane, exactly the
    /// `(s0+s2)+(s1+s3)` tree of [`lane_sum`] — same operands, same
    /// order, so the results are bit-identical to reducing each row
    /// alone.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn reduce4(a0: __m256, a1: __m256, a2: __m256, a3: __m256) -> __m128 {
        let s0 = _mm_add_ps(_mm256_castps256_ps128(a0), _mm256_extractf128_ps(a0, 1));
        let s1 = _mm_add_ps(_mm256_castps256_ps128(a1), _mm256_extractf128_ps(a1, 1));
        let s2 = _mm_add_ps(_mm256_castps256_ps128(a2), _mm256_extractf128_ps(a2, 1));
        let s3 = _mm_add_ps(_mm256_castps256_ps128(a3), _mm256_extractf128_ps(a3, 1));
        // 4×4 transpose: c_j[r] = s_r[j].
        let t0 = _mm_unpacklo_ps(s0, s1);
        let t1 = _mm_unpacklo_ps(s2, s3);
        let t2 = _mm_unpackhi_ps(s0, s1);
        let t3 = _mm_unpackhi_ps(s2, s3);
        let c0 = _mm_movelh_ps(t0, t1);
        let c1 = _mm_movehl_ps(t1, t0);
        let c2 = _mm_movelh_ps(t2, t3);
        let c3 = _mm_movehl_ps(t3, t2);
        _mm_add_ps(_mm_add_ps(c0, c2), _mm_add_ps(c1, c3))
    }

    /// Fused flat scan: query held in registers; rows unrolled in
    /// quads (tail-free dims) with a transposed SIMD reduce, in pairs
    /// otherwise.
    ///
    /// # Safety
    /// AVX2 must be available; `q.len() <= stride`,
    /// `data.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        // Quad-row fast path: the per-row horizontal reduce is the
        // bottleneck once the block is cache-hot, and `reduce4` retires
        // it at ~4 ops/row instead of a store + scalar tree. Only valid
        // tail-free (`dim % 8 == 0`) — tail lanes must be folded before
        // the tree, which the pair path below handles.
        if dim.is_multiple_of(LANES) && dim > 0 {
            while r + 4 <= rows {
                let p0 = pd.add(r * stride);
                let p1 = pd.add((r + 1) * stride);
                let p2 = pd.add((r + 2) * stride);
                let p3 = pd.add((r + 3) * stride);
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                let mut i = 0;
                while i < head {
                    let vq = _mm256_loadu_ps(pq.add(i));
                    let d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(p0.add(i)));
                    let d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(p1.add(i)));
                    let d2 = _mm256_sub_ps(vq, _mm256_loadu_ps(p2.add(i)));
                    let d3 = _mm256_sub_ps(vq, _mm256_loadu_ps(p3.add(i)));
                    a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
                    a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
                    a2 = _mm256_add_ps(a2, _mm256_mul_ps(d2, d2));
                    a3 = _mm256_add_ps(a3, _mm256_mul_ps(d3, d3));
                    i += LANES;
                }
                _mm_storeu_ps(out.as_mut_ptr().add(r), reduce4(a0, a1, a2, a3));
                r += 4;
            }
        }
        while r + 2 <= rows {
            let p0 = pd.add(r * stride);
            let p1 = pd.add((r + 1) * stride);
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let vq = _mm256_loadu_ps(pq.add(i));
                let d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(p0.add(i)));
                let d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(p1.add(i)));
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
                i += LANES;
            }
            out[r] = reduce(a0, |l| {
                for k in 0..dim - head {
                    let d = q[head + k] - *p0.add(head + k);
                    l[k] += d * d;
                }
            });
            out[r + 1] = reduce(a1, |l| {
                for k in 0..dim - head {
                    let d = q[head + k] - *p1.add(head + k);
                    l[k] += d * d;
                }
            });
            r += 2;
        }
        if r < rows {
            let row = std::slice::from_raw_parts(pd.add(r * stride), dim);
            out[r] = sq_dist(q, row);
        }
    }

    /// Fused cosine scan: one pass accumulates `dot(q, row)` and
    /// `dot(row, row)` together; `norm(q)` hoisted (bit-identical to
    /// recomputing it — it is a pure function of `q`).
    ///
    /// # Safety
    /// AVX2 must be available; `q.len() <= stride`,
    /// `data.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cosine_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let nq = dot(q, q).sqrt();
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        // Quad-row fast path (see `sq_dist_block`): both accumulators
        // of four rows reduce through the same transposed tree; the
        // sqrt/divide/clamp finish stays scalar per row, identical to
        // the single-row path below.
        if dim.is_multiple_of(LANES) && dim > 0 {
            while r + 4 <= rows {
                let p0 = pd.add(r * stride);
                let p1 = pd.add((r + 1) * stride);
                let p2 = pd.add((r + 2) * stride);
                let p3 = pd.add((r + 3) * stride);
                let mut dot0 = _mm256_setzero_ps();
                let mut dot1 = _mm256_setzero_ps();
                let mut dot2 = _mm256_setzero_ps();
                let mut dot3 = _mm256_setzero_ps();
                let mut rr0 = _mm256_setzero_ps();
                let mut rr1 = _mm256_setzero_ps();
                let mut rr2 = _mm256_setzero_ps();
                let mut rr3 = _mm256_setzero_ps();
                let mut i = 0;
                while i < head {
                    let vq = _mm256_loadu_ps(pq.add(i));
                    let v0 = _mm256_loadu_ps(p0.add(i));
                    let v1 = _mm256_loadu_ps(p1.add(i));
                    let v2 = _mm256_loadu_ps(p2.add(i));
                    let v3 = _mm256_loadu_ps(p3.add(i));
                    dot0 = _mm256_add_ps(dot0, _mm256_mul_ps(vq, v0));
                    dot1 = _mm256_add_ps(dot1, _mm256_mul_ps(vq, v1));
                    dot2 = _mm256_add_ps(dot2, _mm256_mul_ps(vq, v2));
                    dot3 = _mm256_add_ps(dot3, _mm256_mul_ps(vq, v3));
                    rr0 = _mm256_add_ps(rr0, _mm256_mul_ps(v0, v0));
                    rr1 = _mm256_add_ps(rr1, _mm256_mul_ps(v1, v1));
                    rr2 = _mm256_add_ps(rr2, _mm256_mul_ps(v2, v2));
                    rr3 = _mm256_add_ps(rr3, _mm256_mul_ps(v3, v3));
                    i += LANES;
                }
                let mut dd = [0.0f32; 4];
                let mut nn = [0.0f32; 4];
                _mm_storeu_ps(dd.as_mut_ptr(), reduce4(dot0, dot1, dot2, dot3));
                _mm_storeu_ps(nn.as_mut_ptr(), reduce4(rr0, rr1, rr2, rr3));
                for (j, (&d, &rr)) in dd.iter().zip(&nn).enumerate() {
                    let nr = rr.sqrt();
                    out[r + j] = if nq == 0.0 || nr == 0.0 {
                        1.0
                    } else {
                        1.0 - (d / (nq * nr)).clamp(-1.0, 1.0)
                    };
                }
                r += 4;
            }
        }
        for (r, o) in out.iter_mut().enumerate().skip(r) {
            let p = pd.add(r * stride);
            let mut adot = _mm256_setzero_ps();
            let mut arr = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let vq = _mm256_loadu_ps(pq.add(i));
                let vr = _mm256_loadu_ps(p.add(i));
                adot = _mm256_add_ps(adot, _mm256_mul_ps(vq, vr));
                arr = _mm256_add_ps(arr, _mm256_mul_ps(vr, vr));
                i += LANES;
            }
            let d = reduce(adot, |l| {
                for k in 0..dim - head {
                    l[k] += q[head + k] * *p.add(head + k);
                }
            });
            let nr = reduce(arr, |l| {
                for (k, lane) in l.iter_mut().enumerate().take(dim - head) {
                    let v = *p.add(head + k);
                    *lane += v * v;
                }
            })
            .sqrt();
            *o = if nq == 0.0 || nr == 0.0 {
                1.0
            } else {
                1.0 - (d / (nq * nr)).clamp(-1.0, 1.0)
            };
        }
    }

    /// Gathered quad-dot: the query held in registers, four gathered
    /// rows dotted per iteration through the [`reduce4`] transposed
    /// tree (tail-free dims), falling back to per-row [`dot`] otherwise
    /// — exactly the [`sq_dist_block`] structure with row addresses
    /// taken from `ids` instead of consecutive.
    ///
    /// # Safety
    /// AVX2 must be available; `q.len() <= stride`,
    /// `ids.len() == out.len()`, every
    /// `ids[j] * stride + q.len() <= data.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_gather(
        q: &[f32],
        data: &[f32],
        stride: usize,
        ids: &[usize],
        out: &mut [f32],
    ) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        if dim.is_multiple_of(LANES) && dim > 0 {
            while r + 4 <= rows {
                let p0 = pd.add(ids[r] * stride);
                let p1 = pd.add(ids[r + 1] * stride);
                let p2 = pd.add(ids[r + 2] * stride);
                let p3 = pd.add(ids[r + 3] * stride);
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                let mut i = 0;
                while i < head {
                    let vq = _mm256_loadu_ps(pq.add(i));
                    a0 = _mm256_add_ps(a0, _mm256_mul_ps(vq, _mm256_loadu_ps(p0.add(i))));
                    a1 = _mm256_add_ps(a1, _mm256_mul_ps(vq, _mm256_loadu_ps(p1.add(i))));
                    a2 = _mm256_add_ps(a2, _mm256_mul_ps(vq, _mm256_loadu_ps(p2.add(i))));
                    a3 = _mm256_add_ps(a3, _mm256_mul_ps(vq, _mm256_loadu_ps(p3.add(i))));
                    i += LANES;
                }
                _mm_storeu_ps(out.as_mut_ptr().add(r), reduce4(a0, a1, a2, a3));
                r += 4;
            }
        }
        for j in r..rows {
            let row = std::slice::from_raw_parts(pd.add(ids[j] * stride), dim);
            out[j] = dot(q, row);
        }
    }

    /// Widen 8 `u8` codes to 8 `f32` lanes (exact — every `u8` is
    /// representable).
    ///
    /// # Safety
    /// AVX2 must be available; at least 8 bytes readable at `p`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_codes8(p: *const u8) -> __m256 {
        let lo = _mm_loadl_epi64(p as *const __m128i);
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(lo))
    }

    /// # Safety
    /// AVX2 must be available; `t.len() == step.len() <= stride`,
    /// `codes.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn adc_sq_block(
        t: &[f32],
        step: &[f32],
        codes: &[u8],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = t.len();
        let head = dim - dim % LANES;
        let pt = t.as_ptr();
        let ps = step.as_ptr();
        let pc = codes.as_ptr();
        for (r, o) in out.iter_mut().enumerate() {
            let row = pc.add(r * stride);
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let c = load_codes8(row.add(i));
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(pt.add(i)),
                    _mm256_mul_ps(c, _mm256_loadu_ps(ps.add(i))),
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
                i += LANES;
            }
            *o = reduce(acc, |l| {
                for k in 0..dim - head {
                    let d = t[head + k] - *row.add(head + k) as f32 * step[head + k];
                    l[k] += d * d;
                }
            });
        }
    }

    /// # Safety
    /// AVX2 must be available; `w.len() <= stride`,
    /// `codes.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn adc_dot_block(w: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
        let dim = w.len();
        let head = dim - dim % LANES;
        let pw = w.as_ptr();
        let pc = codes.as_ptr();
        for (r, o) in out.iter_mut().enumerate() {
            let row = pc.add(r * stride);
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let c = load_codes8(row.add(i));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(pw.add(i)), c));
                i += LANES;
            }
            *o = reduce(acc, |l| {
                for k in 0..dim - head {
                    l[k] += w[head + k] * *row.add(head + k) as f32;
                }
            });
        }
    }

    /// Compile-time guard: this module is only ever entered through the
    /// [`Kernel`] dispatcher.
    #[allow(dead_code)]
    const _ARM: Kernel = Kernel::Avx2;
}

// ---------------------------------------------------------------------
// AVX-512 arm.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! Row-pair twins of the AVX2 block kernels.
    //!
    //! The 8-lane accumulation canon is a loop-carried dependency per
    //! row, so a single reduction cannot use wider registers without
    //! changing the operation order. Independent *rows* can: each
    //! 512-bit accumulator carries two rows — the row's canonical
    //! 8-lane chain in each 256-bit half — and one `vsubps`/`vmulps`/
    //! `vaddps` retires both. The halves never mix until the final
    //! extract, which feeds the exact [`super::avx2::reduce4`] tree the
    //! AVX2 arm uses, so every output is bit-identical to the scalar
    //! canon. `axpy` is elementwise (no reduction), so it simply runs
    //! 16-wide.
    //!
    //! Safety: every function is
    //! `#[target_feature(enable = "avx512f,avx512dq,avx2")]` and is
    //! only reached through the dispatcher after
    //! [`super::avx512_available`] verified all three features.

    use super::avx2;
    use crate::ops::LANES;
    use std::arch::x86_64::*;

    /// One row chunk in each 256-bit half: `a` low, `b` high.
    ///
    /// # Safety
    /// AVX-512 F/DQ must be available; 8 floats readable at each
    /// pointer.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx2")]
    unsafe fn load_pair(a: *const f32, b: *const f32) -> __m512 {
        _mm512_insertf32x8(
            _mm512_castps256_ps512(_mm256_loadu_ps(a)),
            _mm256_loadu_ps(b),
            1,
        )
    }

    /// Widest query the row-pair paths pre-broadcast into registers:
    /// one `__m512` per 8-element chunk, the query chunk mirrored into
    /// both halves. Past this the AVX2 scan handles the call.
    const MAX_CHUNKS: usize = 32;

    /// Pre-broadcast `q`'s chunks (`head` must be a multiple of
    /// [`LANES`], at most `MAX_CHUNKS` chunks). Hoisting the broadcast
    /// out of the row loop keeps the shuffle port free for the
    /// row-pair inserts.
    ///
    /// # Safety
    /// AVX-512 F/DQ must be available; `head` floats readable at `pq`.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq,avx2")]
    unsafe fn broadcast_query(pq: *const f32, head: usize) -> [__m512; MAX_CHUNKS] {
        let mut qv = [_mm512_setzero_ps(); MAX_CHUNKS];
        for (j, chunk) in qv.iter_mut().take(head / LANES).enumerate() {
            *chunk = _mm512_broadcast_f32x8(_mm256_loadu_ps(pq.add(j * LANES)));
        }
        qv
    }

    /// `y += alpha * x`, 16 components per iteration; the sub-16
    /// remainder reuses the AVX2 twin (8-wide + scalar tail). Every
    /// component sees the same multiply-then-add as `ops::axpy`.
    ///
    /// # Safety
    /// AVX-512 F/DQ + AVX2 must be available; `x.len() == y.len()`.
    #[target_feature(enable = "avx512f,avx512dq,avx2")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        const W: usize = 16;
        let n = x.len();
        let head = n - n % W;
        let va = _mm512_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < head {
            let prod = _mm512_mul_ps(va, _mm512_loadu_ps(px.add(i)));
            _mm512_storeu_ps(py.add(i), _mm512_add_ps(_mm512_loadu_ps(py.add(i)), prod));
            i += W;
        }
        avx2::axpy(alpha, &x[head..], &mut y[head..]);
    }

    /// Fused flat scan, eight rows per iteration (two per accumulator).
    /// Remainder rows fall through to the AVX2 quad/pair scan.
    ///
    /// # Safety
    /// AVX-512 F/DQ + AVX2 must be available; `q.len() <= stride`,
    /// `data.len() >= out.len() * stride`.
    #[target_feature(enable = "avx512f,avx512dq,avx2")]
    pub unsafe fn sq_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        if dim.is_multiple_of(LANES) && dim > 0 && dim <= MAX_CHUNKS * LANES {
            let qv = broadcast_query(pq, head);
            let nchunks = head / LANES;
            while r + 8 <= rows {
                let p0 = pd.add(r * stride);
                let p1 = pd.add((r + 1) * stride);
                let p2 = pd.add((r + 2) * stride);
                let p3 = pd.add((r + 3) * stride);
                let p4 = pd.add((r + 4) * stride);
                let p5 = pd.add((r + 5) * stride);
                let p6 = pd.add((r + 6) * stride);
                let p7 = pd.add((r + 7) * stride);
                let mut a01 = _mm512_setzero_ps();
                let mut a23 = _mm512_setzero_ps();
                let mut a45 = _mm512_setzero_ps();
                let mut a67 = _mm512_setzero_ps();
                for (j, &vq) in qv.iter().take(nchunks).enumerate() {
                    let i = j * LANES;
                    let d01 = _mm512_sub_ps(vq, load_pair(p0.add(i), p1.add(i)));
                    let d23 = _mm512_sub_ps(vq, load_pair(p2.add(i), p3.add(i)));
                    let d45 = _mm512_sub_ps(vq, load_pair(p4.add(i), p5.add(i)));
                    let d67 = _mm512_sub_ps(vq, load_pair(p6.add(i), p7.add(i)));
                    a01 = _mm512_add_ps(a01, _mm512_mul_ps(d01, d01));
                    a23 = _mm512_add_ps(a23, _mm512_mul_ps(d23, d23));
                    a45 = _mm512_add_ps(a45, _mm512_mul_ps(d45, d45));
                    a67 = _mm512_add_ps(a67, _mm512_mul_ps(d67, d67));
                }
                let q0 = avx2::reduce4(
                    _mm512_castps512_ps256(a01),
                    _mm512_extractf32x8_ps::<1>(a01),
                    _mm512_castps512_ps256(a23),
                    _mm512_extractf32x8_ps::<1>(a23),
                );
                let q1 = avx2::reduce4(
                    _mm512_castps512_ps256(a45),
                    _mm512_extractf32x8_ps::<1>(a45),
                    _mm512_castps512_ps256(a67),
                    _mm512_extractf32x8_ps::<1>(a67),
                );
                _mm_storeu_ps(out.as_mut_ptr().add(r), q0);
                _mm_storeu_ps(out.as_mut_ptr().add(r + 4), q1);
                r += 8;
            }
        }
        avx2::sq_dist_block(q, &data[r * stride..], stride, &mut out[r..]);
    }

    /// Gathered dots, four rows per iteration (two per accumulator).
    /// Remainder rows use per-row AVX2 dots — the same fallback the
    /// AVX2 quad path carries.
    ///
    /// # Safety
    /// AVX-512 F/DQ + AVX2 must be available; `q.len() <= stride`,
    /// `ids.len() == out.len()`, every
    /// `ids[j] * stride + q.len() <= data.len()`.
    #[target_feature(enable = "avx512f,avx512dq,avx2")]
    pub unsafe fn dot_gather(
        q: &[f32],
        data: &[f32],
        stride: usize,
        ids: &[usize],
        out: &mut [f32],
    ) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        if dim.is_multiple_of(LANES) && dim > 0 && dim <= MAX_CHUNKS * LANES && rows >= 4 {
            let qv = broadcast_query(pq, head);
            let nchunks = head / LANES;
            while r + 4 <= rows {
                let p0 = pd.add(ids[r] * stride);
                let p1 = pd.add(ids[r + 1] * stride);
                let p2 = pd.add(ids[r + 2] * stride);
                let p3 = pd.add(ids[r + 3] * stride);
                let mut a01 = _mm512_setzero_ps();
                let mut a23 = _mm512_setzero_ps();
                for (j, &vq) in qv.iter().take(nchunks).enumerate() {
                    let i = j * LANES;
                    a01 = _mm512_add_ps(a01, _mm512_mul_ps(vq, load_pair(p0.add(i), p1.add(i))));
                    a23 = _mm512_add_ps(a23, _mm512_mul_ps(vq, load_pair(p2.add(i), p3.add(i))));
                }
                let quad = avx2::reduce4(
                    _mm512_castps512_ps256(a01),
                    _mm512_extractf32x8_ps::<1>(a01),
                    _mm512_castps512_ps256(a23),
                    _mm512_extractf32x8_ps::<1>(a23),
                );
                _mm_storeu_ps(out.as_mut_ptr().add(r), quad);
                r += 4;
            }
        }
        for j in r..rows {
            let row = std::slice::from_raw_parts(pd.add(ids[j] * stride), dim);
            out[j] = avx2::dot(q, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_arms() -> Vec<Kernel> {
        let mut arms = vec![Kernel::Scalar];
        if avx2_available() {
            arms.push(Kernel::Avx2);
        }
        if avx512_available() {
            arms.push(Kernel::Avx512);
        }
        arms
    }

    fn pseudo(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = crate::rng::Pcg32::with_stream(seed, 7);
        (0..n).map(|_| rng.normal()).collect()
    }

    #[test]
    fn dispatch_resolves_and_reports() {
        let k = active_kernel();
        assert_eq!(kernel_name(), k.name());
        assert_eq!(set_kernel_override(Some(Kernel::Scalar)), Kernel::Scalar);
        let back = set_kernel_override(None);
        assert_eq!(back, active_kernel());
    }

    #[test]
    fn row_kernels_bit_identical_across_arms() {
        for n in [0usize, 1, 5, 8, 13, 16, 31, 32, 100] {
            let a = pseudo(n as u64 + 1, n);
            let b = pseudo(n as u64 + 1000, n);
            let sq = ops::sq_dist(&a, &b);
            let cd = ops::cosine_dist(&a, &b);
            let d = ops::dot(&a, &b);
            for arm in both_arms() {
                assert_eq!(sq_dist_with(arm, &a, &b).to_bits(), sq.to_bits(), "n={n}");
                assert_eq!(
                    cosine_dist_with(arm, &a, &b).to_bits(),
                    cd.to_bits(),
                    "n={n}"
                );
                assert_eq!(dot_with(arm, &a, &b).to_bits(), d.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn axpy_bit_identical_across_arms() {
        for n in [0usize, 1, 7, 8, 9, 24, 100] {
            let x = pseudo(n as u64 + 3, n);
            let base = pseudo(n as u64 + 4000, n);
            for alpha in [0.0f32, 1.0, -2.5, 1e-3] {
                let mut want = base.clone();
                ops::axpy(alpha, &x, &mut want);
                for arm in both_arms() {
                    let mut got = base.clone();
                    axpy_with(arm, alpha, &x, &mut got);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "n={n} alpha={alpha}");
                    }
                }
            }
        }
    }

    #[test]
    fn block_kernels_match_row_kernels() {
        let dim = 13; // forces a 5-element scalar tail
        let stride = 16;
        let rows = 7; // odd: exercises the unpaired trailing row
        let q = pseudo(42, dim);
        let mut data = pseudo(43, rows * stride);
        // Zero the padding like VectorStore does.
        for r in 0..rows {
            for p in dim..stride {
                data[r * stride + p] = 0.0;
            }
        }
        for arm in both_arms() {
            let mut sq = vec![0.0f32; rows];
            let mut co = vec![0.0f32; rows];
            sq_dist_block_with(arm, &q, &data, stride, &mut sq);
            cosine_dist_block_with(arm, &q, &data, stride, &mut co);
            for r in 0..rows {
                let row = &data[r * stride..r * stride + dim];
                assert_eq!(sq[r].to_bits(), ops::sq_dist(&q, row).to_bits());
                assert_eq!(co[r].to_bits(), ops::cosine_dist(&q, row).to_bits());
            }
        }
    }

    #[test]
    fn wide_blocks_bit_identical_across_arms() {
        // rows > 8 with a tail-free dim: exercises the AVX-512
        // row-pair paths (8-row sq_dist scan, 4-row gathered dots)
        // plus their remainder handoff into the AVX2 scan.
        let dim = 16;
        let stride = 16;
        let rows = 19;
        let q = pseudo(21, dim);
        let data = pseudo(22, rows * stride);
        let ids: Vec<usize> = (0..rows).rev().chain([3, 3, 5]).collect();
        for arm in both_arms() {
            let mut sq = vec![0.0f32; rows];
            sq_dist_block_with(arm, &q, &data, stride, &mut sq);
            for r in 0..rows {
                let row = &data[r * stride..r * stride + dim];
                assert_eq!(
                    sq[r].to_bits(),
                    ops::sq_dist(&q, row).to_bits(),
                    "arm={arm:?} r={r}"
                );
            }
            let mut got = vec![0.0f32; ids.len()];
            dot_gather_with(arm, &q, &data, stride, &ids, &mut got);
            for (j, &id) in ids.iter().enumerate() {
                let row = &data[id * stride..id * stride + dim];
                assert_eq!(
                    got[j].to_bits(),
                    ops::dot(&q, row).to_bits(),
                    "arm={arm:?} j={j}"
                );
            }
        }
    }

    #[test]
    fn dot_gather_matches_row_dots_on_every_arm() {
        for dim in [8usize, 13, 32] {
            let stride = dim.div_ceil(8) * 8;
            let rows = 9;
            let q = pseudo(5, dim);
            let data = pseudo(6, rows * stride);
            // Repeats, reverse order, and the last row all gathered.
            let ids = vec![3usize, 3, 8, 0, 7, 1, 2];
            let mut out = vec![0.0f32; ids.len()];
            for arm in both_arms() {
                dot_gather_with(arm, &q, &data, stride, &ids, &mut out);
                for (j, &id) in ids.iter().enumerate() {
                    let row = &data[id * stride..id * stride + dim];
                    assert_eq!(
                        out[j].to_bits(),
                        ops::dot(&q, row).to_bits(),
                        "dim={dim} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_bit_identical_across_arms_and_matches_naive() {
        let (m, k, n) = (5usize, 70usize, 13usize); // k > KC: exercises blocking
        let a = pseudo(11, m * k);
        let b = pseudo(12, k * n);
        // Naive (i, k, j) accumulation — the semantic definition.
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let alpha = a[i * k + kk];
                if alpha == 0.0 {
                    continue;
                }
                for j in 0..n {
                    want[i * n + j] += alpha * b[kk * n + j];
                }
            }
        }
        for arm in both_arms() {
            let mut c = vec![0.0f32; m * n];
            gemm_with(arm, &a, &b, &mut c, m, k, n);
            for (g, w) in c.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn adc_kernels_bit_identical_across_arms() {
        let dim = 21;
        let stride = 24;
        let rows = 5;
        let t = pseudo(7, dim);
        let step: Vec<f32> = pseudo(8, dim).iter().map(|v| v.abs() / 100.0).collect();
        let mut rng = crate::rng::Pcg32::with_stream(9, 7);
        let codes: Vec<u8> = (0..rows * stride)
            .map(|_| rng.below_usize(256) as u8)
            .collect();
        let mut want_sq = vec![0.0f32; rows];
        let mut want_dot = vec![0.0f32; rows];
        adc_sq_block_with(Kernel::Scalar, &t, &step, &codes, stride, &mut want_sq);
        adc_dot_block_with(Kernel::Scalar, &t, &codes, stride, &mut want_dot);
        for arm in both_arms() {
            let mut got_sq = vec![0.0f32; rows];
            let mut got_dot = vec![0.0f32; rows];
            adc_sq_block_with(arm, &t, &step, &codes, stride, &mut got_sq);
            adc_dot_block_with(arm, &t, &codes, stride, &mut got_dot);
            for r in 0..rows {
                assert_eq!(got_sq[r].to_bits(), want_sq[r].to_bits());
                assert_eq!(got_dot[r].to_bits(), want_dot[r].to_bits());
            }
        }
    }

    #[test]
    fn zero_vector_cosine_is_exactly_one_on_every_arm() {
        let z = vec![0.0f32; 16];
        let x = pseudo(1, 16);
        for arm in both_arms() {
            assert_eq!(cosine_dist_with(arm, &z, &x), 1.0);
            assert_eq!(cosine_dist_with(arm, &x, &z), 1.0);
            assert_eq!(cosine_dist_with(arm, &z, &z), 1.0);
        }
    }
}
