//! Runtime-dispatched SIMD distance kernels.
//!
//! Every distance the index plane computes flows through this module.
//! Two arms exist for each kernel:
//!
//! * **scalar** — the `querc_linalg::ops` lane-strided reference loops
//!   (element `i` accumulates into lane `i % 8`, lanes collapse through
//!   `ops::lane_sum`). This is the semantic definition.
//! * **avx2** — hand-written `std::arch` intrinsics performing the
//!   *identical* IEEE-754 operation sequence: one `vsubps`/`vmulps`/
//!   `vaddps` chain per 8-element chunk, scalar remainder folded into
//!   the same lanes, the same `lane_sum` reduction tree. No FMA is used
//!   in the accumulation (fusing changes rounding), so **both arms are
//!   bit-for-bit identical** — for squared-Euclidean, cosine, and the
//!   SQ8 asymmetric-distance kernels alike. The cosine ulp bound
//!   between arms is therefore 0.
//!
//! The active arm is picked once per process: the `QUERC_SIMD`
//! environment variable (`scalar`/`off`/`0` forces the reference path,
//! `avx2`/`on`/`1` requests AVX2) wins over CPU detection
//! (`is_x86_feature_detected!("avx2")`), and a programmatic
//! [`set_kernel_override`] (the `WorkloadManagerConfig` knob) wins over
//! both. Requesting AVX2 on a CPU without it falls back to scalar.
//! Because the arms are bit-identical, flipping the kernel mid-process
//! is benign — only throughput changes, never a result.
//!
//! The `*_with` variants take an explicit [`Kernel`] and exist for the
//! parity suite and the benchmarks (timing one arm against the other
//! without touching process-global state).

use querc_linalg::ops;
use std::sync::atomic::{AtomicU8, Ordering};

/// A distance-kernel implementation arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The `querc_linalg::ops` lane-strided reference loops.
    Scalar,
    /// Hand-vectorized AVX2 intrinsics (x86-64 only), bit-identical to
    /// [`Kernel::Scalar`].
    Avx2,
}

impl Kernel {
    /// Short lowercase name (`"scalar"` / `"avx2"`), for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// 0 = unset, 1 = force scalar, 2 = force avx2 (if available).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

fn env_kernel() -> Option<Kernel> {
    use std::sync::OnceLock;
    static ENV: OnceLock<Option<Kernel>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("QUERC_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" | "off" | "0" => Some(Kernel::Scalar),
            "avx2" | "on" | "1" => Some(Kernel::Avx2),
            _ => None,
        },
        Err(_) => None,
    })
}

/// Force (or clear, with `None`) the kernel arm for the whole process,
/// overriding both `QUERC_SIMD` and CPU detection. Requesting
/// [`Kernel::Avx2`] on a CPU without AVX2 still runs scalar. Returns
/// the now-active kernel. Safe to call at any time: the arms are
/// bit-identical, so in-flight searches are unaffected.
pub fn set_kernel_override(kernel: Option<Kernel>) -> Kernel {
    let code = match kernel {
        None => 0,
        Some(Kernel::Scalar) => 1,
        Some(Kernel::Avx2) => 2,
    };
    OVERRIDE.store(code, Ordering::Relaxed);
    active_kernel()
}

/// The kernel arm distances are currently computed with.
pub fn active_kernel() -> Kernel {
    let requested = match OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(Kernel::Scalar),
        2 => Some(Kernel::Avx2),
        _ => env_kernel(),
    };
    match requested {
        Some(Kernel::Scalar) => Kernel::Scalar,
        Some(Kernel::Avx2) if avx2_available() => Kernel::Avx2,
        Some(Kernel::Avx2) => Kernel::Scalar,
        None if avx2_available() => Kernel::Avx2,
        None => Kernel::Scalar,
    }
}

/// Name of the active kernel arm (`"avx2"` / `"scalar"`), as surfaced
/// in [`crate::IndexStats`] and the serving-layer throughput reports.
pub fn kernel_name() -> &'static str {
    active_kernel().name()
}

// ---------------------------------------------------------------------
// Row kernels (one query × one row).
// ---------------------------------------------------------------------

/// Squared Euclidean distance, on the active kernel. Bit-identical to
/// `ops::sq_dist` on every arm.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist_with(active_kernel(), a, b)
}

/// [`sq_dist`] on an explicit arm (parity tests / benchmarks).
#[inline]
pub fn sq_dist_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Scalar => ops::sq_dist(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::sq_dist(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => ops::sq_dist(a, b),
    }
}

/// Cosine distance `1 − cosine(a, b)`, on the active kernel.
/// Bit-identical to `ops::cosine_dist` on every arm (zero vectors →
/// exactly `1.0`, never NaN).
#[inline]
pub fn cosine_dist(a: &[f32], b: &[f32]) -> f32 {
    cosine_dist_with(active_kernel(), a, b)
}

/// [`cosine_dist`] on an explicit arm (parity tests / benchmarks).
#[inline]
pub fn cosine_dist_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Scalar => ops::cosine_dist(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::cosine_dist(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => ops::cosine_dist(a, b),
    }
}

/// Dot product, on an explicit arm. Bit-identical to `ops::dot`.
#[inline]
pub fn dot_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kernel {
        Kernel::Scalar => ops::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => ops::dot(a, b),
    }
}

// ---------------------------------------------------------------------
// Fused block kernels (one query × a contiguous row-major block).
//
// `data` is padded row-major storage (`VectorStore::data`): row `r`
// starts at `r * stride` and its first `q.len()` components are real;
// `data.len() >= out.len() * stride` must hold. The fused kernels keep
// the query hot in registers across rows and unroll rows in quads
// (pairs on tail-carrying dims), reducing four accumulators at once
// through a transposed copy of the `lane_sum` tree — which is where
// the flat-scan speedup over per-row calls comes from.
// ---------------------------------------------------------------------

/// Squared Euclidean distances from `q` to `out.len()` consecutive
/// rows of `data`, on the active kernel. `out[r]` is bit-identical to
/// `ops::sq_dist(q, row_r)`.
#[inline]
pub fn sq_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
    sq_dist_block_with(active_kernel(), q, data, stride, out)
}

/// [`sq_dist_block`] on an explicit arm.
pub fn sq_dist_block_with(kernel: Kernel, q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
    assert!(q.len() <= stride && data.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = ops::sq_dist(q, &data[r * stride..r * stride + q.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::sq_dist_block(q, data, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => sq_dist_block_with(Kernel::Scalar, q, data, stride, out),
    }
}

/// Cosine distances from `q` to `out.len()` consecutive rows of
/// `data`, on the active kernel. `out[r]` is bit-identical to
/// `ops::cosine_dist(q, row_r)`.
#[inline]
pub fn cosine_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
    cosine_dist_block_with(active_kernel(), q, data, stride, out)
}

/// [`cosine_dist_block`] on an explicit arm.
pub fn cosine_dist_block_with(
    kernel: Kernel,
    q: &[f32],
    data: &[f32],
    stride: usize,
    out: &mut [f32],
) {
    assert!(q.len() <= stride && data.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = ops::cosine_dist(q, &data[r * stride..r * stride + q.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::cosine_dist_block(q, data, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => cosine_dist_block_with(Kernel::Scalar, q, data, stride, out),
    }
}

// ---------------------------------------------------------------------
// SQ8 asymmetric-distance (ADC) kernels: f32 query vs u8 codes.
//
// `codes` is padded row-major u8 storage (`CodeStore::data`): row `r`
// starts at `r * stride`. The caller pre-folds the quantizer into the
// query — see `sq8.rs` for the algebra — so these kernels only ever
// see `t` (translated query) and `step` / `w` (per-dim weights).
// ---------------------------------------------------------------------

/// ADC squared distances: `out[r] = Σ_d (t[d] − codes[r][d]·step[d])²`
/// with lane-strided accumulation, on the active kernel.
#[inline]
pub fn adc_sq_block(t: &[f32], step: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
    adc_sq_block_with(active_kernel(), t, step, codes, stride, out)
}

/// [`adc_sq_block`] on an explicit arm.
pub fn adc_sq_block_with(
    kernel: Kernel,
    t: &[f32],
    step: &[f32],
    codes: &[u8],
    stride: usize,
    out: &mut [f32],
) {
    assert!(t.len() == step.len() && t.len() <= stride && codes.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = adc_sq_row_scalar(t, step, &codes[r * stride..r * stride + t.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::adc_sq_block(t, step, codes, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => adc_sq_block_with(Kernel::Scalar, t, step, codes, stride, out),
    }
}

/// ADC weighted code sums: `out[r] = Σ_d w[d]·codes[r][d]` with
/// lane-strided accumulation, on the active kernel — the data-dependent
/// half of an SQ8 cosine dot product.
#[inline]
pub fn adc_dot_block(w: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
    adc_dot_block_with(active_kernel(), w, codes, stride, out)
}

/// [`adc_dot_block`] on an explicit arm.
pub fn adc_dot_block_with(kernel: Kernel, w: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
    assert!(w.len() <= stride && codes.len() >= out.len() * stride);
    match kernel {
        Kernel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = adc_dot_row_scalar(w, &codes[r * stride..r * stride + w.len()]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { avx2::adc_dot_block(w, codes, stride, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2 => adc_dot_block_with(Kernel::Scalar, w, codes, stride, out),
    }
}

/// Scalar ADC squared-distance reference: lane-strided like
/// `ops::sq_dist`, with the subtrahend decoded from `codes` on the fly.
#[inline]
fn adc_sq_row_scalar(t: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    let mut l = [0.0f32; ops::LANES];
    let n = t.len();
    let head = n - n % ops::LANES;
    let mut i = 0;
    while i < head {
        for k in 0..ops::LANES {
            let d = t[i + k] - codes[i + k] as f32 * step[i + k];
            l[k] += d * d;
        }
        i += ops::LANES;
    }
    for k in 0..n - head {
        let d = t[head + k] - codes[head + k] as f32 * step[head + k];
        l[k] += d * d;
    }
    ops::lane_sum(l)
}

/// Scalar ADC weighted-code-sum reference, lane-strided like `ops::dot`.
#[inline]
fn adc_dot_row_scalar(w: &[f32], codes: &[u8]) -> f32 {
    let mut l = [0.0f32; ops::LANES];
    let n = w.len();
    let head = n - n % ops::LANES;
    let mut i = 0;
    while i < head {
        for k in 0..ops::LANES {
            l[k] += w[i + k] * codes[i + k] as f32;
        }
        i += ops::LANES;
    }
    for k in 0..n - head {
        l[k] += w[head + k] * codes[head + k] as f32;
    }
    ops::lane_sum(l)
}

// ---------------------------------------------------------------------
// AVX2 arm.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Bit-parity twins of the scalar reference kernels.
    //!
    //! Safety: every function is `#[target_feature(enable = "avx2")]`
    //! and must only be reached through the dispatcher above, which has
    //! either verified `is_x86_feature_detected!("avx2")` or been
    //! explicitly handed [`Kernel::Avx2`] by the parity suite (which
    //! performs the same check). All loads are unaligned (`loadu`) —
    //! `VectorStore` pads row *strides* to 32 bytes but `Vec<f32>` does
    //! not guarantee a 32-byte base address, and query slices are
    //! arbitrary.

    use super::Kernel;
    use querc_linalg::ops::{lane_sum, LANES};
    use std::arch::x86_64::*;

    /// Collapse one AVX2 accumulator plus the scalar-tail lanes.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce(acc: __m256, tail: impl FnOnce(&mut [f32; LANES])) -> f32 {
        let mut l = [0.0f32; LANES];
        _mm256_storeu_ps(l.as_mut_ptr(), acc);
        tail(&mut l);
        lane_sum(l)
    }

    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let head = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
            i += LANES;
        }
        reduce(acc, |l| {
            for k in 0..n - head {
                let d = a[head + k] - b[head + k];
                l[k] += d * d;
            }
        })
    }

    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let head = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            let p = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_add_ps(acc, p);
            i += LANES;
        }
        reduce(acc, |l| {
            for k in 0..n - head {
                l[k] += a[head + k] * b[head + k];
            }
        })
    }

    /// Mirrors `ops::cosine_dist` exactly: `norm(a)`, `norm(b)`,
    /// `dot(a, b)`, divide, clamp, `1 −`.
    ///
    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cosine_dist(a: &[f32], b: &[f32]) -> f32 {
        let na = dot(a, a).sqrt();
        let nb = dot(b, b).sqrt();
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }

    /// Collapse four AVX2 accumulators into four results at once: the
    /// 128-bit halves are added (`s_i = l[i] + l[i+4]`), the four
    /// `[s0..s3]` vectors are transposed, and the vertical adds
    /// `(c0+c2)+(c1+c3)` perform, per lane, exactly the
    /// `(s0+s2)+(s1+s3)` tree of [`lane_sum`] — same operands, same
    /// order, so the results are bit-identical to reducing each row
    /// alone.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce4(a0: __m256, a1: __m256, a2: __m256, a3: __m256) -> __m128 {
        let s0 = _mm_add_ps(_mm256_castps256_ps128(a0), _mm256_extractf128_ps(a0, 1));
        let s1 = _mm_add_ps(_mm256_castps256_ps128(a1), _mm256_extractf128_ps(a1, 1));
        let s2 = _mm_add_ps(_mm256_castps256_ps128(a2), _mm256_extractf128_ps(a2, 1));
        let s3 = _mm_add_ps(_mm256_castps256_ps128(a3), _mm256_extractf128_ps(a3, 1));
        // 4×4 transpose: c_j[r] = s_r[j].
        let t0 = _mm_unpacklo_ps(s0, s1);
        let t1 = _mm_unpacklo_ps(s2, s3);
        let t2 = _mm_unpackhi_ps(s0, s1);
        let t3 = _mm_unpackhi_ps(s2, s3);
        let c0 = _mm_movelh_ps(t0, t1);
        let c1 = _mm_movehl_ps(t1, t0);
        let c2 = _mm_movelh_ps(t2, t3);
        let c3 = _mm_movehl_ps(t3, t2);
        _mm_add_ps(_mm_add_ps(c0, c2), _mm_add_ps(c1, c3))
    }

    /// Fused flat scan: query held in registers; rows unrolled in
    /// quads (tail-free dims) with a transposed SIMD reduce, in pairs
    /// otherwise.
    ///
    /// # Safety
    /// AVX2 must be available; `q.len() <= stride`,
    /// `data.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        // Quad-row fast path: the per-row horizontal reduce is the
        // bottleneck once the block is cache-hot, and `reduce4` retires
        // it at ~4 ops/row instead of a store + scalar tree. Only valid
        // tail-free (`dim % 8 == 0`) — tail lanes must be folded before
        // the tree, which the pair path below handles.
        if dim.is_multiple_of(LANES) && dim > 0 {
            while r + 4 <= rows {
                let p0 = pd.add(r * stride);
                let p1 = pd.add((r + 1) * stride);
                let p2 = pd.add((r + 2) * stride);
                let p3 = pd.add((r + 3) * stride);
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                let mut i = 0;
                while i < head {
                    let vq = _mm256_loadu_ps(pq.add(i));
                    let d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(p0.add(i)));
                    let d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(p1.add(i)));
                    let d2 = _mm256_sub_ps(vq, _mm256_loadu_ps(p2.add(i)));
                    let d3 = _mm256_sub_ps(vq, _mm256_loadu_ps(p3.add(i)));
                    a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
                    a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
                    a2 = _mm256_add_ps(a2, _mm256_mul_ps(d2, d2));
                    a3 = _mm256_add_ps(a3, _mm256_mul_ps(d3, d3));
                    i += LANES;
                }
                _mm_storeu_ps(out.as_mut_ptr().add(r), reduce4(a0, a1, a2, a3));
                r += 4;
            }
        }
        while r + 2 <= rows {
            let p0 = pd.add(r * stride);
            let p1 = pd.add((r + 1) * stride);
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let vq = _mm256_loadu_ps(pq.add(i));
                let d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(p0.add(i)));
                let d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(p1.add(i)));
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
                i += LANES;
            }
            out[r] = reduce(a0, |l| {
                for k in 0..dim - head {
                    let d = q[head + k] - *p0.add(head + k);
                    l[k] += d * d;
                }
            });
            out[r + 1] = reduce(a1, |l| {
                for k in 0..dim - head {
                    let d = q[head + k] - *p1.add(head + k);
                    l[k] += d * d;
                }
            });
            r += 2;
        }
        if r < rows {
            let row = std::slice::from_raw_parts(pd.add(r * stride), dim);
            out[r] = sq_dist(q, row);
        }
    }

    /// Fused cosine scan: one pass accumulates `dot(q, row)` and
    /// `dot(row, row)` together; `norm(q)` hoisted (bit-identical to
    /// recomputing it — it is a pure function of `q`).
    ///
    /// # Safety
    /// AVX2 must be available; `q.len() <= stride`,
    /// `data.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cosine_dist_block(q: &[f32], data: &[f32], stride: usize, out: &mut [f32]) {
        let dim = q.len();
        let head = dim - dim % LANES;
        let nq = dot(q, q).sqrt();
        let pq = q.as_ptr();
        let pd = data.as_ptr();
        let rows = out.len();
        let mut r = 0;
        // Quad-row fast path (see `sq_dist_block`): both accumulators
        // of four rows reduce through the same transposed tree; the
        // sqrt/divide/clamp finish stays scalar per row, identical to
        // the single-row path below.
        if dim.is_multiple_of(LANES) && dim > 0 {
            while r + 4 <= rows {
                let p0 = pd.add(r * stride);
                let p1 = pd.add((r + 1) * stride);
                let p2 = pd.add((r + 2) * stride);
                let p3 = pd.add((r + 3) * stride);
                let mut dot0 = _mm256_setzero_ps();
                let mut dot1 = _mm256_setzero_ps();
                let mut dot2 = _mm256_setzero_ps();
                let mut dot3 = _mm256_setzero_ps();
                let mut rr0 = _mm256_setzero_ps();
                let mut rr1 = _mm256_setzero_ps();
                let mut rr2 = _mm256_setzero_ps();
                let mut rr3 = _mm256_setzero_ps();
                let mut i = 0;
                while i < head {
                    let vq = _mm256_loadu_ps(pq.add(i));
                    let v0 = _mm256_loadu_ps(p0.add(i));
                    let v1 = _mm256_loadu_ps(p1.add(i));
                    let v2 = _mm256_loadu_ps(p2.add(i));
                    let v3 = _mm256_loadu_ps(p3.add(i));
                    dot0 = _mm256_add_ps(dot0, _mm256_mul_ps(vq, v0));
                    dot1 = _mm256_add_ps(dot1, _mm256_mul_ps(vq, v1));
                    dot2 = _mm256_add_ps(dot2, _mm256_mul_ps(vq, v2));
                    dot3 = _mm256_add_ps(dot3, _mm256_mul_ps(vq, v3));
                    rr0 = _mm256_add_ps(rr0, _mm256_mul_ps(v0, v0));
                    rr1 = _mm256_add_ps(rr1, _mm256_mul_ps(v1, v1));
                    rr2 = _mm256_add_ps(rr2, _mm256_mul_ps(v2, v2));
                    rr3 = _mm256_add_ps(rr3, _mm256_mul_ps(v3, v3));
                    i += LANES;
                }
                let mut dd = [0.0f32; 4];
                let mut nn = [0.0f32; 4];
                _mm_storeu_ps(dd.as_mut_ptr(), reduce4(dot0, dot1, dot2, dot3));
                _mm_storeu_ps(nn.as_mut_ptr(), reduce4(rr0, rr1, rr2, rr3));
                for (j, (&d, &rr)) in dd.iter().zip(&nn).enumerate() {
                    let nr = rr.sqrt();
                    out[r + j] = if nq == 0.0 || nr == 0.0 {
                        1.0
                    } else {
                        1.0 - (d / (nq * nr)).clamp(-1.0, 1.0)
                    };
                }
                r += 4;
            }
        }
        for (r, o) in out.iter_mut().enumerate().skip(r) {
            let p = pd.add(r * stride);
            let mut adot = _mm256_setzero_ps();
            let mut arr = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let vq = _mm256_loadu_ps(pq.add(i));
                let vr = _mm256_loadu_ps(p.add(i));
                adot = _mm256_add_ps(adot, _mm256_mul_ps(vq, vr));
                arr = _mm256_add_ps(arr, _mm256_mul_ps(vr, vr));
                i += LANES;
            }
            let d = reduce(adot, |l| {
                for k in 0..dim - head {
                    l[k] += q[head + k] * *p.add(head + k);
                }
            });
            let nr = reduce(arr, |l| {
                for (k, lane) in l.iter_mut().enumerate().take(dim - head) {
                    let v = *p.add(head + k);
                    *lane += v * v;
                }
            })
            .sqrt();
            *o = if nq == 0.0 || nr == 0.0 {
                1.0
            } else {
                1.0 - (d / (nq * nr)).clamp(-1.0, 1.0)
            };
        }
    }

    /// Widen 8 `u8` codes to 8 `f32` lanes (exact — every `u8` is
    /// representable).
    ///
    /// # Safety
    /// AVX2 must be available; at least 8 bytes readable at `p`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_codes8(p: *const u8) -> __m256 {
        let lo = _mm_loadl_epi64(p as *const __m128i);
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(lo))
    }

    /// # Safety
    /// AVX2 must be available; `t.len() == step.len() <= stride`,
    /// `codes.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn adc_sq_block(
        t: &[f32],
        step: &[f32],
        codes: &[u8],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = t.len();
        let head = dim - dim % LANES;
        let pt = t.as_ptr();
        let ps = step.as_ptr();
        let pc = codes.as_ptr();
        for (r, o) in out.iter_mut().enumerate() {
            let row = pc.add(r * stride);
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let c = load_codes8(row.add(i));
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(pt.add(i)),
                    _mm256_mul_ps(c, _mm256_loadu_ps(ps.add(i))),
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
                i += LANES;
            }
            *o = reduce(acc, |l| {
                for k in 0..dim - head {
                    let d = t[head + k] - *row.add(head + k) as f32 * step[head + k];
                    l[k] += d * d;
                }
            });
        }
    }

    /// # Safety
    /// AVX2 must be available; `w.len() <= stride`,
    /// `codes.len() >= out.len() * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn adc_dot_block(w: &[f32], codes: &[u8], stride: usize, out: &mut [f32]) {
        let dim = w.len();
        let head = dim - dim % LANES;
        let pw = w.as_ptr();
        let pc = codes.as_ptr();
        for (r, o) in out.iter_mut().enumerate() {
            let row = pc.add(r * stride);
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i < head {
                let c = load_codes8(row.add(i));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(pw.add(i)), c));
                i += LANES;
            }
            *o = reduce(acc, |l| {
                for k in 0..dim - head {
                    l[k] += w[head + k] * *row.add(head + k) as f32;
                }
            });
        }
    }

    /// Compile-time guard: this module is only ever entered through the
    /// [`Kernel`] dispatcher.
    #[allow(dead_code)]
    const _ARM: Kernel = Kernel::Avx2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_arms() -> Vec<Kernel> {
        let mut arms = vec![Kernel::Scalar];
        if avx2_available() {
            arms.push(Kernel::Avx2);
        }
        arms
    }

    fn pseudo(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = querc_linalg::rng::Pcg32::with_stream(seed, 7);
        (0..n).map(|_| rng.normal()).collect()
    }

    #[test]
    fn dispatch_resolves_and_reports() {
        let k = active_kernel();
        assert_eq!(kernel_name(), k.name());
        assert_eq!(set_kernel_override(Some(Kernel::Scalar)), Kernel::Scalar);
        let back = set_kernel_override(None);
        assert_eq!(back, active_kernel());
    }

    #[test]
    fn row_kernels_bit_identical_across_arms() {
        for n in [0usize, 1, 5, 8, 13, 16, 31, 32, 100] {
            let a = pseudo(n as u64 + 1, n);
            let b = pseudo(n as u64 + 1000, n);
            let sq = ops::sq_dist(&a, &b);
            let cd = ops::cosine_dist(&a, &b);
            let d = ops::dot(&a, &b);
            for arm in both_arms() {
                assert_eq!(sq_dist_with(arm, &a, &b).to_bits(), sq.to_bits(), "n={n}");
                assert_eq!(
                    cosine_dist_with(arm, &a, &b).to_bits(),
                    cd.to_bits(),
                    "n={n}"
                );
                assert_eq!(dot_with(arm, &a, &b).to_bits(), d.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn block_kernels_match_row_kernels() {
        let dim = 13; // forces a 5-element scalar tail
        let stride = 16;
        let rows = 7; // odd: exercises the unpaired trailing row
        let q = pseudo(42, dim);
        let mut data = pseudo(43, rows * stride);
        // Zero the padding like VectorStore does.
        for r in 0..rows {
            for p in dim..stride {
                data[r * stride + p] = 0.0;
            }
        }
        for arm in both_arms() {
            let mut sq = vec![0.0f32; rows];
            let mut co = vec![0.0f32; rows];
            sq_dist_block_with(arm, &q, &data, stride, &mut sq);
            cosine_dist_block_with(arm, &q, &data, stride, &mut co);
            for r in 0..rows {
                let row = &data[r * stride..r * stride + dim];
                assert_eq!(sq[r].to_bits(), ops::sq_dist(&q, row).to_bits());
                assert_eq!(co[r].to_bits(), ops::cosine_dist(&q, row).to_bits());
            }
        }
    }

    #[test]
    fn adc_kernels_bit_identical_across_arms() {
        let dim = 21;
        let stride = 24;
        let rows = 5;
        let t = pseudo(7, dim);
        let step: Vec<f32> = pseudo(8, dim).iter().map(|v| v.abs() / 100.0).collect();
        let mut rng = querc_linalg::rng::Pcg32::with_stream(9, 7);
        let codes: Vec<u8> = (0..rows * stride)
            .map(|_| rng.below_usize(256) as u8)
            .collect();
        let mut want_sq = vec![0.0f32; rows];
        let mut want_dot = vec![0.0f32; rows];
        adc_sq_block_with(Kernel::Scalar, &t, &step, &codes, stride, &mut want_sq);
        adc_dot_block_with(Kernel::Scalar, &t, &codes, stride, &mut want_dot);
        for arm in both_arms() {
            let mut got_sq = vec![0.0f32; rows];
            let mut got_dot = vec![0.0f32; rows];
            adc_sq_block_with(arm, &t, &step, &codes, stride, &mut got_sq);
            adc_dot_block_with(arm, &t, &codes, stride, &mut got_dot);
            for r in 0..rows {
                assert_eq!(got_sq[r].to_bits(), want_sq[r].to_bits());
                assert_eq!(got_dot[r].to_bits(), want_dot[r].to_bits());
            }
        }
    }

    #[test]
    fn zero_vector_cosine_is_exactly_one_on_every_arm() {
        let z = vec![0.0f32; 16];
        let x = pseudo(1, 16);
        for arm in both_arms() {
            assert_eq!(cosine_dist_with(arm, &z, &x), 1.0);
            assert_eq!(cosine_dist_with(arm, &x, &z), 1.0);
            assert_eq!(cosine_dist_with(arm, &z, &z), 1.0);
        }
    }
}
