//! Workload summarization for index recommendation (paper §5.1).
//!
//! The Querc pipeline: embed every query, pick K with the elbow method,
//! run K-means, and keep the query nearest each centroid ("witnesses") as
//! the compressed workload handed to the tuning advisor.
//!
//! Two classical comparators are provided for the ablation benches:
//! K-medoids over hand-engineered syntactic features (the Chaudhuri-style
//! approach the paper argues requires per-workload distance engineering)
//! and uniform random sampling (what a tuning advisor's native compressor
//! does).

use querc_cluster::{choose_k_elbow, kmeans, KMeansConfig};
use querc_embed::Embedder;
use querc_linalg::Pcg32;
use querc_sql::features::feature_vector;
use querc_sql::Dialect;

/// How to compress the workload.
pub enum SummaryMethod<'a> {
    /// Learned embeddings + K-means + elbow (the paper's method).
    Embedding(&'a dyn Embedder),
    /// K-medoids over fixed syntactic features (classical baseline).
    SyntacticKMedoids,
    /// Uniform random sample (native-advisor strawman).
    RandomSample,
}

/// Summarization knobs.
pub struct SummaryConfig {
    /// Fix K instead of running the elbow scan.
    pub k: Option<usize>,
    /// Elbow scan bounds (used when `k` is None).
    pub k_min: usize,
    pub k_max: usize,
    /// Elbow plateau threshold (relative gain vs initial SSE).
    pub plateau: f64,
    pub seed: u64,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            k: None,
            k_min: 4,
            k_max: 40,
            plateau: 0.01,
            seed: 0x5a11,
        }
    }
}

/// Compress `sqls` to a witness subset; returns indices into `sqls`.
pub fn summarize_workload(
    sqls: &[&str],
    method: &SummaryMethod<'_>,
    cfg: &SummaryConfig,
) -> Vec<usize> {
    if sqls.is_empty() {
        return Vec::new();
    }
    let mut rng = Pcg32::with_stream(cfg.seed, 0x5a12);
    match method {
        SummaryMethod::Embedding(embedder) => {
            let points: Vec<Vec<f32>> = sqls.iter().map(|s| embedder.embed_sql(s)).collect();
            let k = effective_k(cfg, &points, &mut rng);
            let result = kmeans(
                &points,
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                &mut rng,
            );
            dedup_witnesses(result.witnesses(&points))
        }
        SummaryMethod::SyntacticKMedoids => {
            let points: Vec<Vec<f32>> = sqls
                .iter()
                .map(|s| feature_vector(s, Dialect::Generic))
                .collect();
            let k = effective_k(cfg, &points, &mut rng);
            let res = querc_cluster::kmedoids::kmedoids_euclidean(&points, k, &mut rng);
            dedup_witnesses(res.medoids)
        }
        SummaryMethod::RandomSample => {
            let k = cfg.k.unwrap_or(cfg.k_max).min(sqls.len());
            rng.sample_indices(sqls.len(), k)
        }
    }
}

fn effective_k(cfg: &SummaryConfig, points: &[Vec<f32>], rng: &mut Pcg32) -> usize {
    match cfg.k {
        Some(k) => k.min(points.len()),
        None => choose_k_elbow(
            points,
            cfg.k_min.min(points.len().max(1)),
            cfg.k_max.min(points.len()),
            cfg.plateau,
            rng,
        ),
    }
}

fn dedup_witnesses(mut w: Vec<usize>) -> Vec<usize> {
    w.sort_unstable();
    w.dedup();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use querc_embed::BagOfTokens;

    fn mixed_workload() -> Vec<String> {
        let mut sqls = Vec::new();
        for i in 0..25 {
            sqls.push(format!(
                "select c{}, sum(v) from sales_orders where d > {} group by c{}",
                i % 3,
                i,
                i % 3
            ));
            sqls.push(format!("insert into raw_events values ({i}, 'x')"));
            sqls.push(format!("select * from users where user_id = {i}"));
        }
        sqls
    }

    #[test]
    fn embedding_summary_covers_query_families() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let embedder = BagOfTokens::new(128, true);
        let cfg = SummaryConfig {
            k: Some(6),
            ..Default::default()
        };
        let witnesses = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        assert!(!witnesses.is_empty() && witnesses.len() <= 6);
        // The witnesses must span all three families.
        let kinds: std::collections::HashSet<&str> = witnesses
            .iter()
            .map(|&i| {
                if refs[i].starts_with("insert") {
                    "insert"
                } else if refs[i].contains("group by") {
                    "agg"
                } else {
                    "lookup"
                }
            })
            .collect();
        assert_eq!(kinds.len(), 3, "summary misses a family: {witnesses:?}");
    }

    #[test]
    fn syntactic_kmedoids_also_covers_families() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let cfg = SummaryConfig {
            k: Some(6),
            ..Default::default()
        };
        let witnesses = summarize_workload(&refs, &SummaryMethod::SyntacticKMedoids, &cfg);
        assert!(!witnesses.is_empty() && witnesses.len() <= 6);
    }

    #[test]
    fn random_sample_has_requested_size() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let cfg = SummaryConfig {
            k: Some(10),
            ..Default::default()
        };
        let w = summarize_workload(&refs, &SummaryMethod::RandomSample, &cfg);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|&i| i < refs.len()));
    }

    #[test]
    fn elbow_mode_picks_small_k_for_three_families() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let embedder = BagOfTokens::new(128, true);
        let cfg = SummaryConfig {
            k: None,
            k_min: 2,
            k_max: 15,
            plateau: 0.05,
            ..Default::default()
        };
        let w = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        assert!(
            (2..=15).contains(&w.len()),
            "elbow K out of range: {}",
            w.len()
        );
    }

    #[test]
    fn empty_workload() {
        let embedder = BagOfTokens::new(16, false);
        let w = summarize_workload(
            &[],
            &SummaryMethod::Embedding(&embedder),
            &SummaryConfig::default(),
        );
        assert!(w.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let sqls = mixed_workload();
        let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
        let embedder = BagOfTokens::new(64, true);
        let cfg = SummaryConfig {
            k: Some(5),
            ..Default::default()
        };
        let a = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        let b = summarize_workload(&refs, &SummaryMethod::Embedding(&embedder), &cfg);
        assert_eq!(a, b);
    }
}
