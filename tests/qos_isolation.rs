//! Integration: the tenant-isolation gate for the QoS scheduler.
//!
//! A whale tenant floods the serving plane at 10× the minnows'
//! aggregate volume while eight minnow tenants run their ordinary
//! trickle through **all six apps**. With QoS enabled the plane must
//! (a) keep every minnow whole — zero sheds, every query labeled,
//! per-tenant FIFO intact; (b) convert the whale's overload into
//! explicit `Rejected` outcomes instead of wedging a shard or starving
//! whoever hashes next to it; and (c) bound the collateral damage: the
//! worst minnow p99 with the whale present stays within 3× of the
//! whale-absent baseline (plus a small absolute slack so µs-scale
//! baselines don't make the ratio degenerate).
//!
//! The whale's admission verdicts are deterministic — its token bucket
//! has a fixed burst and zero refill, so exactly `WHALE_BURST` queries
//! are admitted and every later one is `RateLimited` — which keeps the
//! shed-count assertions exact rather than timing-dependent.

use querc::apps::{
    AuditApp, ErrorsApp, RecommendApp, ResourcesApp, RoutingApp, SummarizeApp, TrainCorpus,
};
use querc::{
    LabeledQuery, QosConfig, QuercError, RateLimit, RejectReason, ServiceDrain, TenantPolicy,
    WorkloadManager, WorkloadManagerConfig,
};
use querc_embed::{BagOfTokens, Embedder};
use querc_workloads::QueryRecord;
use std::collections::HashMap;
use std::sync::Arc;

const APPS: [&str; 6] = [
    "audit",
    "errors",
    "recommend",
    "resources",
    "routing",
    "summarize",
];

const MINNOWS: usize = 8;
/// Queries each minnow submits over the run (spread across all six apps).
const PER_MINNOW: usize = 60;
/// Whale volume: 10× the minnows' aggregate.
const WHALE_TOTAL: usize = 10 * MINNOWS * PER_MINNOW;
/// Whale queries admitted before its zero-refill bucket runs dry.
const WHALE_BURST: usize = 120;

/// Four template shapes with rotating literals — enough structure for
/// every app to label, enough repetition for the embed cache to matter.
fn sql_for(i: u64) -> String {
    match i % 4 {
        0 => format!("select revenue, region from finance_cube where q = {i} group by region"),
        1 => format!("insert into lake_events select * from staging_{}", i % 3),
        2 => format!("select v from kv_store where k = {i}"),
        _ => format!(
            "select a.*, b.* from giant_facts a join giant_facts b on a.k = b.k where a.x > {i}"
        ),
    }
}

fn training_corpus() -> TrainCorpus {
    let records: Vec<QueryRecord> = (0..120u64)
        .map(|i| {
            let (ms, err) = match i % 4 {
                0 => (400.0, None),
                1 => (30.0, None),
                2 => (5.0, None),
                _ => (2000.0, (i % 8 != 3).then_some(604)),
            };
            QueryRecord {
                sql: sql_for(i),
                user: format!("acct/u{}", i % 2),
                account: "acct".into(),
                cluster: if i % 2 == 0 {
                    "bi-cluster"
                } else {
                    "etl-cluster"
                }
                .into(),
                dialect: "generic".into(),
                runtime_ms: ms,
                mem_mb: ms / 2.0,
                error_code: err,
                timestamp: i,
            }
        })
        .collect();
    TrainCorpus::from_records(records, 0x1507)
}

fn register_all(mgr: &mut WorkloadManager, corpus: &TrainCorpus) {
    let shared: Arc<dyn Embedder> = Arc::new(BagOfTokens::new(128, true));
    mgr.register(AuditApp::new(Arc::clone(&shared)).with_trees(20), corpus)
        .unwrap();
    mgr.register(ErrorsApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(
        RecommendApp::new(Arc::clone(&shared)).with_clusters(4),
        corpus,
    )
    .unwrap();
    mgr.register(ResourcesApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(RoutingApp::new(Arc::clone(&shared)), corpus)
        .unwrap();
    mgr.register(
        SummarizeApp::new(Arc::clone(&shared)).with_config(querc::apps::summarize::SummaryConfig {
            k: Some(6),
            ..Default::default()
        }),
        corpus,
    )
    .unwrap();
}

fn minnow_name(m: usize) -> String {
    format!("minnow{m:02}")
}

/// One full run of the scenario. The minnow schedule is identical with
/// and without the whale: `PER_MINNOW` rounds, one query per minnow per
/// round, apps visited round-robin so every minnow exercises all six.
/// With the whale on, ten whale queries ride along per round —
/// interleaved, not appended, so contention happens *while* minnows are
/// in flight.
fn run_scenario(with_whale: bool) -> ServiceDrain {
    let mut mgr = WorkloadManager::new(WorkloadManagerConfig {
        shards_per_app: 2,
        batch: 16,
        queue_depth: 4096,
        qos: QosConfig {
            enabled: true,
            quantum: 4,
            ..Default::default()
        },
        ..Default::default()
    });
    let corpus = training_corpus();
    register_all(&mut mgr, &corpus);
    // Deterministic overload: the whale spends a fixed burst and then
    // every admission fails — no wall-clock in the verdict.
    mgr.set_tenant_policy(
        "whale",
        TenantPolicy {
            weight: 1,
            rate: Some(RateLimit {
                rate_per_sec: 0.0,
                burst: WHALE_BURST as f64,
            }),
        },
    );

    let whale_per_round = WHALE_TOTAL / PER_MINNOW;
    let mut seq = [0u64; MINNOWS];
    let mut whale_i = 0u64;
    for round in 0..PER_MINNOW {
        for m in 0..MINNOWS {
            let app = APPS[(round + m) % APPS.len()];
            let i = seq[m];
            seq[m] += 1;
            let mut lq = LabeledQuery::new(sql_for(i));
            lq.set("account", minnow_name(m));
            lq.set("seq", i.to_string());
            mgr.submit(app, lq).unwrap_or_else(|e| {
                panic!("minnow {m} shed in round {round}: {e}");
            });
        }
        if with_whale {
            for _ in 0..whale_per_round {
                let app = APPS[(whale_i as usize) % APPS.len()];
                let mut lq = LabeledQuery::new(sql_for(whale_i));
                lq.set("account", "whale");
                whale_i += 1;
                match mgr.submit(app, lq) {
                    Ok(()) => {}
                    Err(QuercError::Rejected { tenant, reason }) => {
                        assert_eq!(tenant, "whale", "only the whale may be shed");
                        assert_eq!(reason, RejectReason::RateLimited);
                    }
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            }
        }
    }
    mgr.drain()
}

/// Worst per-tenant p99 across the minnows, in µs.
fn worst_minnow_p99(drained: &ServiceDrain) -> u64 {
    (0..MINNOWS)
        .map(|m| drained.qos.tenants[&minnow_name(m)].latency.p99_us)
        .max()
        .unwrap()
}

fn assert_minnows_whole(drained: &ServiceDrain) {
    for m in 0..MINNOWS {
        let snap = &drained.qos.tenants[&minnow_name(m)];
        assert_eq!(snap.submitted, PER_MINNOW as u64, "minnow {m} submitted");
        assert_eq!(snap.processed, PER_MINNOW as u64, "minnow {m} processed");
        assert_eq!(snap.rejected(), 0, "minnow {m} must never be shed");
        assert_eq!(snap.pending, 0, "minnow {m} fully drained");
        assert_eq!(snap.latency.count, PER_MINNOW as u64);
    }
}

/// Every app drained: per-app counters balance and every output is
/// accounted for — a wedged shard would strand queries and fail here.
fn assert_nothing_wedged(drained: &ServiceDrain) {
    let mut outputs = 0usize;
    for tp in &drained.throughput {
        assert_eq!(
            tp.processed + tp.rejected,
            tp.submitted,
            "app {} leaked offers",
            tp.app
        );
        outputs += drained.outputs[&tp.app].len();
        assert_eq!(drained.outputs[&tp.app].len() as u64, tp.processed);
    }
    let processed: u64 = drained.throughput.iter().map(|t| t.processed).sum();
    assert_eq!(outputs as u64, processed);
}

/// Per-tenant FIFO must survive the flood: for each minnow, outputs
/// within each app appear in strictly increasing `seq` order (queries
/// hash-route by tenant, so one app's stream for one tenant is serial).
fn assert_minnow_fifo(drained: &ServiceDrain) {
    for app in APPS {
        let mut last: HashMap<&str, i64> = HashMap::new();
        for lq in &drained.outputs[app] {
            let Some(acct) = lq.get("account") else {
                continue;
            };
            if !acct.starts_with("minnow") {
                continue;
            }
            let seq: i64 = lq.get("seq").unwrap().parse().unwrap();
            let prev = last.insert(acct, seq).unwrap_or(-1);
            assert!(
                seq > prev,
                "tenant {acct} out of order in {app}: {seq} after {prev}"
            );
        }
    }
}

#[test]
fn whale_absent_baseline_serves_every_minnow() {
    let drained = run_scenario(false);
    assert_minnows_whole(&drained);
    assert_nothing_wedged(&drained);
    assert_minnow_fifo(&drained);
    assert_eq!(drained.qos.total_rejected(), 0);
    assert_eq!(drained.qos.tenants.len(), MINNOWS, "no whale in sight");
}

#[test]
fn whale_flood_is_shed_explicitly_and_minnow_p99_stays_bounded() {
    // Whale-absent baseline first: the reference p99 for the gate.
    let baseline = run_scenario(false);
    assert_minnows_whole(&baseline);
    let p99_without = worst_minnow_p99(&baseline);

    let flooded = run_scenario(true);
    assert_minnows_whole(&flooded);
    assert_nothing_wedged(&flooded);
    assert_minnow_fifo(&flooded);

    // The whale's overload is explicit: exactly its burst admitted (and
    // labeled — admitted work is never dropped), the rest Rejected.
    let whale = &flooded.qos.tenants["whale"];
    assert_eq!(whale.submitted, WHALE_TOTAL as u64);
    assert_eq!(whale.processed, WHALE_BURST as u64);
    assert_eq!(
        whale.rejected_rate_limited,
        (WHALE_TOTAL - WHALE_BURST) as u64,
        "overload surfaces as Rejected, not as backpressure"
    );
    assert_eq!(whale.pending, 0);
    assert_eq!(flooded.qos.total_rejected(), whale.rejected_rate_limited);

    // Isolation gate: worst minnow p99 with the whale ≤ 3× without it,
    // plus 10ms absolute slack so a µs-scale baseline (fast CI machine,
    // warm cache) doesn't turn the ratio into a coin flip.
    let p99_with = worst_minnow_p99(&flooded);
    assert!(
        p99_with <= 3 * p99_without + 10_000,
        "minnow p99 degraded more than 3x under the whale: \
         {p99_with}µs with vs {p99_without}µs without"
    );
}
